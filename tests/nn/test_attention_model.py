"""Attention, transformer block, and full-model tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.nn import TransformerLM, ModelConfig, KVCache
from repro.models.configs import tiny_config


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=64, seed=2))


def test_forward_shape(model):
    tokens = np.random.default_rng(0).integers(0, 64, size=(3, 10))
    logits = model(tokens)
    assert logits.shape == (3, 10, 64)


def test_forward_accepts_1d(model):
    logits = model(np.array([1, 2, 3]))
    assert logits.shape == (1, 3, 64)


def test_causality(model):
    """Changing a future token must not affect earlier logits."""
    tokens = np.random.default_rng(1).integers(0, 64, size=(1, 8))
    with no_grad():
        base = model(tokens).data
        mutated = tokens.copy()
        mutated[0, -1] = (mutated[0, -1] + 7) % 64
        changed = model(mutated).data
    np.testing.assert_allclose(base[0, :-1], changed[0, :-1], atol=1e-5)
    assert not np.allclose(base[0, -1], changed[0, -1], atol=1e-5)


def test_kv_cache_matches_full_forward(model):
    tokens = np.random.default_rng(2).integers(0, 64, size=6)
    with no_grad():
        full = model(tokens[None, :]).data[0]
    cache = KVCache(model.config.num_layers)
    outputs = []
    with no_grad():
        for i in range(len(tokens)):
            logits = model(tokens[None, i:i + 1], cache=cache)
            outputs.append(logits.data[0, -1])
    np.testing.assert_allclose(full, np.stack(outputs), atol=1e-4)


def test_cache_seq_len_tracking(model):
    cache = KVCache(model.config.num_layers)
    with no_grad():
        model(np.array([[1, 2, 3]]), cache=cache)
    assert cache.seq_len == 3
    assert cache.layer_len(model.config.num_layers - 1) == 3


def test_cache_byte_accounting():
    cache = KVCache(2)
    k = np.zeros((1, 2, 4, 8), dtype=np.float32)
    cache.append(0, k, k.copy())
    assert cache.num_bytes(bytes_per_element=2) == 2 * k.size * 2
    projected = KVCache.projected_bytes(num_layers=2, num_heads=2, head_dim=8,
                                        seq_len=4)
    assert projected == 2 * 2 * 2 * 8 * 4 * 2


def test_generate_deterministic_greedy(model):
    out1 = model.generate(np.array([1, 2]), 5, temperature=0.0)
    out2 = model.generate(np.array([1, 2]), 5, temperature=0.0)
    np.testing.assert_array_equal(out1, out2)
    assert len(out1) == 7


def test_generate_sampled_reproducible(model):
    rng = lambda: np.random.default_rng(9)
    out1 = model.generate(np.array([1]), 4, temperature=1.0, rng=rng())
    out2 = model.generate(np.array([1]), 4, temperature=1.0, rng=rng())
    np.testing.assert_array_equal(out1, out2)


def test_quantizable_surface(model):
    layers = model.quantizable_linears()
    assert len(layers) == 6 * model.config.num_layers
    names = {name.split(".")[-1] for name, _ in layers}
    assert names == {"wq", "wk", "wv", "wo", "up", "down"}


def test_save_load_roundtrip(tmp_path, model):
    path = tmp_path / "model.npz"
    model.save(path)
    clone = TransformerLM(model.config)
    clone.load(path)
    tokens = np.array([[5, 6, 7]])
    with no_grad():
        np.testing.assert_allclose(model(tokens).data, clone(tokens).data,
                                   atol=1e-6)


def test_state_dict_mismatch_raises(model):
    clone = TransformerLM(tiny_config(vocab_size=64, seed=2))
    state = model.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        clone.load_state_dict(state)


def test_weight_bytes(model):
    assert model.weight_bytes(16.0) == model.num_parameters() * 2
    assert model.weight_bytes(2.33) < model.weight_bytes(16.0) / 6
