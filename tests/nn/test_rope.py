"""Rotary embedding property tests."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.rope import RotaryEmbedding


@pytest.fixture
def rope():
    return RotaryEmbedding(head_dim=8, max_seq_len=32)


def test_rotation_preserves_norm(rope):
    x = np.random.default_rng(0).standard_normal((2, 4, 8)).astype(np.float32)
    rotated = rope(Tensor(x)).data
    np.testing.assert_allclose(np.linalg.norm(rotated, axis=-1),
                               np.linalg.norm(x, axis=-1), rtol=1e-5)


def test_position_zero_is_identity(rope):
    x = np.random.default_rng(1).standard_normal((1, 1, 8)).astype(np.float32)
    np.testing.assert_allclose(rope(Tensor(x)).data, x, atol=1e-6)


def test_relative_position_property(rope):
    """q.k after RoPE depends only on the position difference."""
    gen = np.random.default_rng(2)
    q = gen.standard_normal(8).astype(np.float32)
    k = gen.standard_normal(8).astype(np.float32)

    def score(pos_q, pos_k):
        qr = rope(Tensor(q[None, None, :]), position_offset=pos_q).data[0, 0]
        kr = rope(Tensor(k[None, None, :]), position_offset=pos_k).data[0, 0]
        return float(qr @ kr)

    assert np.isclose(score(3, 5), score(10, 12), atol=1e-4)
    assert not np.isclose(score(3, 5), score(3, 9), atol=1e-4)


def test_pair_scaling_commutes_with_rotation(rope):
    """The invariance the outlier injection relies on (DESIGN.md)."""
    gen = np.random.default_rng(3)
    x = gen.standard_normal((1, 4, 8)).astype(np.float32)
    scale = np.ones(8, dtype=np.float32)
    scale[2:4] = 7.5  # one RoPE pair scaled uniformly
    scaled_then_rotated = rope(Tensor(x * scale)).data
    rotated_then_scaled = rope(Tensor(x)).data * scale
    np.testing.assert_allclose(scaled_then_rotated, rotated_then_scaled,
                               rtol=1e-5)


def test_offset_matches_slicing(rope):
    x = np.random.default_rng(4).standard_normal((1, 6, 8)).astype(np.float32)
    full = rope(Tensor(x)).data
    tail = rope(Tensor(x[:, 4:]), position_offset=4).data
    np.testing.assert_allclose(full[:, 4:], tail, atol=1e-6)


def test_backward_is_inverse_rotation(rope):
    x = Tensor(np.random.default_rng(5).standard_normal((1, 3, 8))
               .astype(np.float32), requires_grad=True)
    rope(x).sum().backward()
    # grad = R^T @ ones; rotating the grad forward recovers ones.
    g = rope(Tensor(x.grad)).data
    np.testing.assert_allclose(g, np.ones_like(g), atol=1e-5)


def test_rejects_odd_head_dim():
    with pytest.raises(ValueError):
        RotaryEmbedding(head_dim=7, max_seq_len=8)


def test_rejects_overflow_position(rope):
    x = Tensor(np.zeros((1, 30, 8), dtype=np.float32))
    with pytest.raises(ValueError):
        rope(x, position_offset=10)
