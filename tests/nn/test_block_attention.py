"""Block-resident attention reads: chunk values, decode and prefill
parity, chunk-grid stability, memoisation."""

import numpy as np
import pytest

from repro.nn.block_attention import (block_decode_attention,
                                      block_prefill_attention)
from repro.nn.paged_kv_cache import PagedKVCache, QuantizedPagedKVCache


HEADS, HEAD_DIM = 2, 8


def build_cache(cls, num_layers=2, batch=3, block_size=4, seq=None,
                chunk_blocks=2, seed=0, **kwargs):
    """A cache with ragged rows crossing several block boundaries."""
    rng = np.random.default_rng(seed)
    cache = cls(num_layers, batch=batch, block_size=block_size,
                chunk_blocks=chunk_blocks, **kwargs)
    lens = np.array([seq or 13, 6, 10][:batch])
    width = int(lens.max())
    k = rng.standard_normal((batch, HEADS, width, HEAD_DIM)).astype(np.float32)
    v = rng.standard_normal((batch, HEADS, width, HEAD_DIM)).astype(np.float32)
    for layer in range(num_layers):
        cache.write_rows(layer, k, v, np.arange(batch), row_lengths=lens)
    return cache, rng


def concat_chunks(cache, layer, kind, rows=None):
    total = cache.layer_len(layer)
    parts = [chunk for _start, chunk in
             cache.context_blocks(layer, rows=rows, kind=kind)]
    return np.concatenate(parts, axis=2)[:, :, :total]


def reference_attention(q, k, v, kv_mask):
    """The pre-change gather-path math, op for op."""
    scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(q.shape[-1]))
    if kv_mask is not None:
        scores = scores + kv_mask
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=-1, keepdims=True)) @ v


def length_mask(cache, rows=None):
    lens = cache._row_len if rows is None else cache._row_len[rows]
    total = cache.layer_len(0)
    allow = np.arange(total)[None, :] < lens[:, None]
    return np.where(allow, 0.0, -np.inf).astype(np.float32)[:, None, None, :]


# ---------------------------------------------------------------------- #
# chunk values match the dense gather bit for bit
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
@pytest.mark.parametrize("kind", ["k", "v"])
def test_chunks_concatenate_to_gather_context(cls, kind):
    """context_blocks yields exactly the values _context gathers — the
    'same dequant values' half of the block-resident parity claim."""
    cache, _ = build_cache(cls)
    for layer in range(cache.num_layers):
        dense = cache._context(layer)[0 if kind == "k" else 1]
        np.testing.assert_array_equal(concat_chunks(cache, layer, kind),
                                      dense)


@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_kv_chunks_match_single_kind_passes(cls):
    """kind="kv" yields the same operand chunks as the two single passes."""
    cache, _ = build_cache(cls)
    total = cache.layer_len(0)
    both = list(cache.context_blocks(0, kind="kv"))
    k_joint = np.concatenate([k for _s, k, _v in both], axis=2)[:, :, :total]
    v_joint = np.concatenate([v for _s, _k, v in both], axis=2)[:, :, :total]
    np.testing.assert_array_equal(k_joint, concat_chunks(cache, 0, "k"))
    np.testing.assert_array_equal(v_joint, concat_chunks(cache, 0, "v"))


@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_context_chunk_pair_matches_gather(cls):
    cache, _ = build_cache(cls, chunk_blocks=8)  # whole context, one chunk
    k, v = cache.context_chunk_pair(0)
    want_k, want_v = cache._context(0)
    np.testing.assert_array_equal(k, want_k)
    np.testing.assert_array_equal(v, want_v)


def test_chunks_respect_row_subsets():
    cache, _ = build_cache(QuantizedPagedKVCache)
    rows = np.array([0, 2])
    dense_k, _ = cache._context(0, rows=rows)
    np.testing.assert_array_equal(concat_chunks(cache, 0, "k", rows=rows),
                                  dense_k)


# ---------------------------------------------------------------------- #
# attention output parity with the pre-change path
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_single_chunk_attention_bit_identical(cls):
    """Contexts inside one chunk window reproduce the gather path's
    output bit for bit (same values, same op order, same matmuls)."""
    cache, rng = build_cache(cls, chunk_blocks=4)  # 16-token window >= 13
    q = rng.standard_normal((3, HEADS, 1, HEAD_DIM)).astype(np.float32)
    kv_mask = length_mask(cache)
    got = block_decode_attention(q, cache, 0, kv_mask=kv_mask)
    k, v = cache._context(0)
    np.testing.assert_array_equal(got, reference_attention(q, k, v, kv_mask))


@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_multi_chunk_attention_matches_gather_reference(cls):
    """Beyond one chunk the scores/probabilities stay bit-identical and
    the streamed value accumulation agrees to accumulation rounding."""
    cache, rng = build_cache(cls, seq=29, chunk_blocks=2)
    q = rng.standard_normal((3, HEADS, 1, HEAD_DIM)).astype(np.float32)
    kv_mask = length_mask(cache)
    for layer in range(cache.num_layers):
        got = block_decode_attention(q, cache, layer, kv_mask=kv_mask)
        k, v = cache._context(layer)
        want = reference_attention(q, k, v, kv_mask)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-6)
        # The score path itself is exact: masked positions contribute
        # exact zeros, so fully-masked tail slots cannot perturb rows.
        assert np.isfinite(got).all()


def test_multi_chunk_scores_bit_identical_to_dense():
    """The per-chunk q @ kᵀ reduction equals the dense matmul exactly."""
    cache, rng = build_cache(PagedKVCache, seq=29, chunk_blocks=2)
    q = rng.standard_normal((3, HEADS, 1, HEAD_DIM)).astype(np.float32)
    total = cache.layer_len(0)
    chunks = []
    for start, k_chunk in cache.context_blocks(0, kind="k"):
        width = min(k_chunk.shape[2], total - start)
        chunks.append(q @ k_chunk[:, :, :width].transpose(0, 1, 3, 2))
    k_dense, _ = cache._context(0)
    np.testing.assert_array_equal(np.concatenate(chunks, axis=-1),
                                  q @ k_dense.transpose(0, 1, 3, 2))


def test_write_token_gather_false_returns_none():
    cache, rng = build_cache(PagedKVCache)
    k = rng.standard_normal((3, HEADS, 1, HEAD_DIM)).astype(np.float32)
    positions = cache._row_len.copy()
    assert cache.write_token(0, k, k.copy(), positions, gather=False) is None
    got_k, _ = cache._context(0)
    np.testing.assert_array_equal(
        got_k[np.arange(3), :, positions], k[:, :, 0])


# ---------------------------------------------------------------------- #
# per-step block-id memoisation (shared tables resolved once per step)
# ---------------------------------------------------------------------- #
def test_block_ids_memoised_across_layers_until_table_mutation():
    cache, rng = build_cache(PagedKVCache)
    nblk = -(-cache.layer_len(0) // cache.block_size)
    first = cache._block_ids(nblk)
    assert cache._block_ids(nblk) is first  # layer 2..N reuse layer 1's
    rows = np.array([0, 2])
    sub = cache._block_ids(nblk, rows)
    assert cache._block_ids(nblk, rows) is sub
    # Crossing a block boundary (new block allocated) must invalidate.
    k = rng.standard_normal((1, HEADS, 1, HEAD_DIM)).astype(np.float32)
    cache.write_token(0, k, k.copy(), np.array([16]),
                      rows=np.array([0]), gather=False)
    assert cache._block_ids(nblk + 1) is not first
    ids = cache._block_ids(nblk + 1)
    np.testing.assert_array_equal(ids[:, :nblk], np.asarray(first))


def test_block_ids_memo_invalidated_on_free_and_adopt():
    cache, _ = build_cache(PagedKVCache)
    nblk = -(-cache.layer_len(0) // cache.block_size)
    first = cache._block_ids(nblk)
    shared = cache.share_block(0, 0, cache.block_size)
    cache.free_rows(np.array([1]))
    assert cache._block_ids(nblk) is not first
    again = cache._block_ids(nblk)
    cache.adopt_prefix(1, [shared])
    assert cache._block_ids(nblk) is not again


# ---------------------------------------------------------------------- #
# multi-query prefill attention over the chunk grid
# ---------------------------------------------------------------------- #
def suffix_mask(cache, starts, widths, rows):
    """Per-row causal mask for suffix queries at absolute positions
    ``starts[j] + i`` (the engine's chunk-wave mask)."""
    total = cache.layer_len(0)
    offsets = np.arange(int(widths.max()))
    query_pos = starts[:, None] + offsets[None, :]
    allow = np.arange(total)[None, None, :] <= query_pos[:, :, None]
    return np.where(allow, 0.0, -np.inf).astype(np.float32)[:, None]


@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_prefill_attention_matches_dense_reference(cls):
    """Multi-query chunked prefill attention agrees with the dense
    gather reference over ragged rows incl. partial-block tails."""
    cache, rng = build_cache(cls, seq=13, chunk_blocks=2)
    lens = cache._row_len.copy()
    starts = np.zeros(3, dtype=np.int64)
    q = rng.standard_normal((3, HEADS, int(lens.max()),
                             HEAD_DIM)).astype(np.float32)
    kv_mask = suffix_mask(cache, starts, lens, np.arange(3))
    for layer in range(cache.num_layers):
        got = block_prefill_attention(q, cache, layer, kv_mask=kv_mask)
        k, v = cache._context(layer)
        want = reference_attention(q, k, v, kv_mask)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-6)


def test_prefill_attention_chunk_grid_stable():
    """The bit-exactness invariant behind chunked == one-shot prefill: a
    row's attention output must not move when *other* rows grow the
    cache-wide context (and with it the chunk grid)."""
    rng = np.random.default_rng(3)
    q = rng.standard_normal((2, HEADS, 13, HEAD_DIM)).astype(np.float32)
    outs = []
    for extra in (0, 30):  # grid: 2 windows vs 4 windows
        cache, _ = build_cache(PagedKVCache, seq=13, chunk_blocks=2, seed=0)
        if extra:
            filler = np.random.default_rng(9).standard_normal(
                (1, HEADS, extra, HEAD_DIM)).astype(np.float32)
            for layer in range(cache.num_layers):
                cache.write_rows(layer, filler, filler.copy(),
                                 np.array([2]),
                                 row_lengths=np.array([extra]))
        rows = np.array([0, 1])
        starts = np.zeros(2, dtype=np.int64)
        widths = np.array([13, 13], dtype=np.int64)
        kv_mask = suffix_mask(cache, starts, widths, rows)
        outs.append(block_prefill_attention(q, cache, 0, kv_mask=kv_mask,
                                            rows=rows))
    np.testing.assert_array_equal(outs[0], outs[1])


@pytest.mark.parametrize("cls", [PagedKVCache, QuantizedPagedKVCache])
def test_prefill_rows_gather_false_matches_gather_true(cls):
    """gather=False returns nothing but must leave the exact cache
    state (incl. quantization boundaries) the gathering call builds."""
    caches = [build_cache(cls, seed=0)[0] for _ in range(2)]
    rng = np.random.default_rng(21)
    starts = caches[0]._row_len.copy()
    widths = np.array([5, 3, 4], dtype=np.int64)
    k = rng.standard_normal((3, HEADS, 5, HEAD_DIM)).astype(np.float32)
    v = rng.standard_normal((3, HEADS, 5, HEAD_DIM)).astype(np.float32)
    gathered = caches[0].prefill_rows(0, k, v, np.arange(3), starts, widths)
    assert gathered is not None
    assert caches[1].prefill_rows(0, k, v, np.arange(3), starts, widths,
                                  gather=False) is None
    for got, want in zip(caches[1]._context(0), caches[0]._context(0)):
        np.testing.assert_array_equal(got, want)
