"""Module system tests."""

import numpy as np
import pytest

from repro.nn.module import Module, Parameter
from repro.nn import Linear


class Stack(Module):
    def __init__(self):
        self.layers = [Linear(4, 4, rng=np.random.default_rng(i))
                       for i in range(3)]
        self.head = Linear(4, 2, rng=np.random.default_rng(9))
        self.scale = Parameter(np.ones(1, dtype=np.float32))


def test_named_parameters_recurse_lists():
    stack = Stack()
    names = dict(stack.named_parameters())
    assert "layers.0.weight" in names
    assert "layers.2.weight" in names
    assert "head.weight" in names
    assert "scale" in names


def test_num_parameters():
    stack = Stack()
    assert stack.num_parameters() == 3 * 16 + 8 + 1


def test_named_modules():
    stack = Stack()
    names = [name for name, _ in stack.named_modules()]
    assert "layers.1" in names and "head" in names


def test_zero_grad():
    stack = Stack()
    for param in stack.parameters():
        param.grad = np.ones_like(param.data)
    stack.zero_grad()
    assert all(p.grad is None for p in stack.parameters())


def test_state_dict_shape_mismatch():
    stack = Stack()
    state = stack.state_dict()
    state["scale"] = np.ones(5)
    with pytest.raises(ValueError):
        stack.load_state_dict(state)


def test_forward_abstract():
    with pytest.raises(NotImplementedError):
        Module()()
