"""Preallocated KV cache: growth, bit-exactness, and write paths."""

import numpy as np
import pytest

from repro.nn.attention import causal_mask
from repro.nn.kv_cache import KVCache


class ConcatReferenceCache:
    """The seed implementation: grow-by-concatenation (ground truth)."""

    def __init__(self, num_layers):
        self._keys = [None] * num_layers
        self._values = [None] * num_layers

    def append(self, layer, k, v):
        if self._keys[layer] is None:
            self._keys[layer] = k
            self._values[layer] = v
        else:
            self._keys[layer] = np.concatenate([self._keys[layer], k], axis=2)
            self._values[layer] = np.concatenate([self._values[layer], v], axis=2)
        return self._keys[layer], self._values[layer]


def random_kv(rng, batch, heads, seq, head_dim):
    return (rng.standard_normal((batch, heads, seq, head_dim)).astype(np.float32),
            rng.standard_normal((batch, heads, seq, head_dim)).astype(np.float32))


def test_matches_concat_cache_across_growth_boundaries():
    """Bit-for-bit identical to the seed cache while doubling 4->8->16->32."""
    rng = np.random.default_rng(0)
    cache = KVCache(2, initial_capacity=4)
    reference = ConcatReferenceCache(2)
    for seq in (3, 1, 2, 5, 8, 1, 9):  # crosses every doubling boundary
        for layer in range(2):
            k, v = random_kv(rng, 2, 3, seq, 8)
            got_k, got_v = cache.append(layer, k, v)
            want_k, want_v = reference.append(layer, k, v)
            np.testing.assert_array_equal(got_k, want_k)
            np.testing.assert_array_equal(got_v, want_v)
    assert cache.seq_len == 29
    assert cache.capacity(0) == 32


def test_append_returns_zero_copy_views():
    cache = KVCache(1, initial_capacity=8)
    k = np.ones((1, 2, 3, 4), dtype=np.float32)
    got_k, got_v = cache.append(0, k, k.copy())
    assert np.shares_memory(got_k, cache._keys[0])
    assert np.shares_memory(got_v, cache._values[0])


def test_earlier_views_survive_later_appends():
    """Later writes land beyond a returned view, never inside it."""
    rng = np.random.default_rng(1)
    cache = KVCache(1, initial_capacity=16)
    k1, v1 = random_kv(rng, 1, 2, 4, 4)
    view_k, _ = cache.append(0, k1, v1)
    snapshot = view_k.copy()
    k2, v2 = random_kv(rng, 1, 2, 3, 4)
    cache.append(0, k2, v2)
    np.testing.assert_array_equal(view_k, snapshot)


def test_write_token_scatters_per_row_positions():
    rng = np.random.default_rng(2)
    cache = KVCache(1, batch=3, initial_capacity=4)
    k0, v0 = random_kv(rng, 3, 2, 4, 4)
    cache.append(0, k0, v0)
    k1, v1 = random_kv(rng, 3, 2, 1, 4)
    positions = np.array([1, 4, 2])  # row 1 extends, rows 0/2 overwrite
    got_k, _ = cache.write_token(0, k1, v1, positions)
    assert got_k.shape[2] == 5
    for row, pos in enumerate(positions):
        np.testing.assert_array_equal(got_k[row, :, pos], k1[row, :, 0])
    # Untouched slots keep their old contents.
    np.testing.assert_array_equal(got_k[0, :, 0], k0[0, :, 0])
    np.testing.assert_array_equal(got_k[2, :, 3], k0[2, :, 3])


def test_write_rows_prefills_subset_from_slot_zero():
    rng = np.random.default_rng(3)
    cache = KVCache(1, batch=4, initial_capacity=8)
    k0, v0 = random_kv(rng, 4, 2, 6, 4)
    cache.append(0, k0, v0)
    k1, v1 = random_kv(rng, 2, 2, 3, 4)
    cache.write_rows(0, k1, v1, np.array([1, 3]))
    assert cache.seq_len == 6  # length never shrinks
    np.testing.assert_array_equal(cache._keys[0][1, :, :3], k1[0])
    np.testing.assert_array_equal(cache._keys[0][3, :, :3], k1[1])
    np.testing.assert_array_equal(cache._keys[0][0, :, :6], k0[0])


def test_write_rows_requires_pinned_batch():
    cache = KVCache(1)
    k = np.zeros((1, 2, 3, 4), dtype=np.float32)
    with pytest.raises(ValueError):
        cache.write_rows(0, k, k, np.array([0]))


def test_byte_accounting_counts_used_not_allocated():
    cache = KVCache(2, initial_capacity=64)
    k = np.zeros((1, 2, 4, 8), dtype=np.float32)
    cache.append(0, k, k.copy())
    assert cache.num_bytes(bytes_per_element=2) == 2 * k.size * 2
    assert cache.allocated_bytes(bytes_per_element=2) == 2 * (1 * 2 * 64 * 8) * 2
    assert cache.allocated_bytes() >= cache.num_bytes()


def test_amortized_doubling_capacities():
    cache = KVCache(1, initial_capacity=2)
    k = np.zeros((1, 1, 1, 2), dtype=np.float32)
    seen = set()
    for _ in range(33):
        cache.append(0, k, k)
        seen.add(cache.capacity(0))
    assert seen == {2, 4, 8, 16, 32, 64}


def test_rejects_bad_initial_capacity():
    with pytest.raises(ValueError):
        KVCache(1, initial_capacity=0)


def test_causal_mask_is_memoised_and_correct():
    first = causal_mask(3, 5)
    assert first is causal_mask(3, 5)
    want = np.array([[0, 0, 0, -np.inf, -np.inf],
                     [0, 0, 0, 0, -np.inf],
                     [0, 0, 0, 0, 0]], dtype=np.float32)
    np.testing.assert_array_equal(first, want)


def test_mask_cache_is_bounded_with_lru_eviction():
    """Perplexity sweeps produce many (seq, total) shapes; the cache must
    not grow without limit, and hot shapes must survive eviction."""
    from repro.nn.attention import _MASK_CACHE, _MASK_CACHE_LIMIT

    hot = causal_mask(7, 7)
    for total in range(8, 8 + 2 * _MASK_CACHE_LIMIT):
        causal_mask(7, total)
        assert causal_mask(7, 7) is hot  # touching keeps it resident
    assert len(_MASK_CACHE) <= _MASK_CACHE_LIMIT

    # Evicted shapes are rebuilt correctly on demand.
    rebuilt = causal_mask(2, 4)
    want = np.array([[0, 0, 0, -np.inf], [0, 0, 0, 0]], dtype=np.float32)
    np.testing.assert_array_equal(rebuilt, want)
