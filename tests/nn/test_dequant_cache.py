"""Dequant-block-cache correctness: hits, invalidation, eviction, COW.

Quantized pool blocks are immutable once written, which is the whole
licence for memoising their dequantized values; these tests pin the
invalidation edges where that immutability could silently break — block
free/reuse, payload rewrite, copy-on-write divergence — plus the LRU
budget and the disabled-cache round-trip.
"""

import numpy as np

from repro.nn.paged_kv_cache import DequantBlockCache, QuantizedPagedKVCache

HEADS, HEAD_DIM, BS = 2, 8, 4


def make_cache(batch=2, num_layers=2, seq=13, dequant_cache_bytes=None,
               seed=0):
    kwargs = {}
    if dequant_cache_bytes is not None:
        kwargs["dequant_cache_bytes"] = dequant_cache_bytes
    cache = QuantizedPagedKVCache(num_layers, batch=batch, block_size=BS,
                                  chunk_blocks=2, **kwargs)
    rng = np.random.default_rng(seed)
    k = rng.standard_normal((batch, HEADS, seq, HEAD_DIM)).astype(np.float32)
    v = rng.standard_normal((batch, HEADS, seq, HEAD_DIM)).astype(np.float32)
    for layer in range(num_layers):
        cache.write_rows(layer, k, v, np.arange(batch))
    return cache, rng


def read_context(cache, layer=0, kind="k"):
    total = cache.layer_len(layer)
    parts = [c for _s, c in cache.context_blocks(layer, kind=kind)]
    return np.concatenate(parts, axis=2)[:, :, :total]


def test_second_read_hits_and_values_stay_identical():
    cache, _ = make_cache()
    first = read_context(cache)
    stats = cache.take_read_stats()
    assert stats.dequant_misses > 0
    second = read_context(cache)
    stats = cache.take_read_stats()
    assert stats.dequant_misses == 0 and stats.dequant_hits > 0
    np.testing.assert_array_equal(first, second)


def test_free_rows_invalidates_and_recycled_block_rereads_fresh():
    """Hit-then-invalidate: freeing a row drops its blocks' entries, and
    a recycled block id serves the *new* payload, never the stale memo."""
    cache, rng = make_cache()
    read_context(cache)                      # populate the memo
    freed = [int(b) for b in cache._tables[0, :cache._blocks_per_row[0]]]
    assert len(cache.dequant_cache) > 0
    cache.free_rows(np.array([0]))
    for layer in range(cache.num_layers):
        for block in freed:
            assert cache.dequant_cache.slot(layer, block) == -1
    # Re-prefill row 0 with different content; the freed ids recycle.
    seq = 13
    k2 = rng.standard_normal((1, HEADS, seq, HEAD_DIM)).astype(np.float32)
    v2 = rng.standard_normal((1, HEADS, seq, HEAD_DIM)).astype(np.float32)
    for layer in range(cache.num_layers):
        cache.write_rows(layer, k2, v2, np.array([0]))
    got = read_context(cache)
    np.testing.assert_array_equal(got, cache._context(0)[0])


def test_cow_divergence_never_serves_stale_dequant():
    """A copy-on-write block gets a fresh id whose dequant is read from
    its own payload — the donor's cached entry must not leak into it."""
    cache, _ = make_cache()
    read_context(cache)                      # donor blocks now memoised
    src = int(cache._tables[0, 0])
    dst = cache.copy_block(src)
    assert dst != src
    for layer in range(cache.num_layers):
        assert cache.dequant_cache.slot(layer, dst) == -1
    dst_vals = cache._dequant_kind(0, np.array([dst]), "k")
    src_vals = cache._dequant_kind(0, np.array([src]), "k")
    np.testing.assert_array_equal(dst_vals, src_vals)  # true copy...
    vals, misses, paired = cache.dequant_cache.lookup(
        0, np.array([dst]), "k",
        lambda ids: cache._dequant_pair(0, ids),
        lambda ids: cache._dequant_kind(0, ids, "k"))
    assert misses == 1 and paired == 1                       # ...but served by fresh dequant
    np.testing.assert_array_equal(vals, dst_vals)


def test_payload_rewrite_invalidates_entry():
    """_quantize_into (a flush into a block) must drop any memo for the
    target ids."""
    cache, rng = make_cache(batch=1, num_layers=1, seq=BS)
    # Token BS starts block 1 and flushes the buffered block 0.
    k1 = rng.standard_normal((1, HEADS, 1, HEAD_DIM)).astype(np.float32)
    cache.write_token(0, k1, k1.copy(), np.array([BS]), gather=False)
    read_context(cache)                      # memoise block 0's dequant
    block = int(cache._tables[0, 0])
    assert cache.dequant_cache.slot(0, block) >= 0
    cache._quantize_into(0, np.array([block]),
                         np.zeros((1, HEADS, BS, HEAD_DIM), np.float32),
                         np.zeros((1, HEADS, BS, HEAD_DIM), np.float32))
    assert cache.dequant_cache.slot(0, block) == -1
    np.testing.assert_array_equal(
        read_context(cache)[:, :, :BS],
        np.zeros((1, HEADS, BS, HEAD_DIM), np.float32))


def test_eviction_under_budget_keeps_results_bit_identical():
    """A budget that can hold only a couple of blocks thrashes but never
    changes values vs the uncached dequant."""
    entry = 2 * HEADS * BS * HEAD_DIM * 4
    small, _ = make_cache(seq=29, dequant_cache_bytes=2 * entry)
    uncached, _ = make_cache(seq=29, dequant_cache_bytes=0)
    assert small.dequant_cache.capacity == 2
    assert uncached.dequant_cache is None
    for _round in range(3):
        for layer in range(small.num_layers):
            for kind in ("k", "v"):
                np.testing.assert_array_equal(
                    read_context(small, layer, kind),
                    read_context(uncached, layer, kind))
    assert small.dequant_cache.evictions > 0
    assert len(small.dequant_cache) <= 2


def test_disabled_cache_round_trips_through_block_path():
    """dequant_cache_bytes=0: every read re-dequantizes, values match
    the dense gather, and the read stats count pure misses."""
    cache, _ = make_cache(dequant_cache_bytes=0)
    got = read_context(cache)
    np.testing.assert_array_equal(got, cache._context(0)[0])
    stats = cache.take_read_stats()
    assert stats.dequant_hits == 0 and stats.dequant_misses > 0


def test_lru_evicts_least_recently_used_first():
    memo = DequantBlockCache(num_layers=1, heads=1, block_size=2,
                             head_dim=2, budget_bytes=2 * (2 * 1 * 2 * 2 * 4))
    assert memo.capacity == 2

    def dequant_pair(ids):
        vals = np.ones((len(ids), 1, 2, 2), np.float32) \
            * np.asarray(ids, np.float32)[:, None, None, None]
        return vals, -vals

    def dequant_kind(ids):
        return dequant_pair(ids)[0]

    def look(ids, kind="k"):
        return memo.lookup(0, np.asarray(ids), kind, dequant_pair,
                           dequant_kind)

    look([7])
    look([9])
    look([7])    # 7 most recent
    look([11])   # evicts 9
    assert memo.slot(0, 9) == -1
    assert memo.slot(0, 7) >= 0 and memo.slot(0, 11) >= 0
    vals, misses, _paired = look([7, 11], kind="v")
    assert misses == 0
    np.testing.assert_array_equal(vals[:, 0, 0, 0], [-7.0, -11.0])
