"""Paged + FineQ-quantized KV caches: block pooling, parity, round-trips."""

import numpy as np
import pytest

from repro.core.clusters import cluster_weights, initial_schemes
from repro.core.encoding import (channel_scales, harmonize_pairs,
                                 quantize_codes)
from repro.nn.kv_cache import KVCache
from repro.nn.paged_kv_cache import (PagedKVCache, QuantizedPagedKVCache,
                                     dequantize_kv_channels,
                                     quantize_kv_block)


def random_kv(rng, batch, heads, seq, head_dim):
    return (rng.standard_normal((batch, heads, seq, head_dim)).astype(np.float32),
            rng.standard_normal((batch, heads, seq, head_dim)).astype(np.float32))


# ---------------------------------------------------------------------- #
# FP32 paged cache vs the rectangular reference
# ---------------------------------------------------------------------- #
def test_append_matches_rectangular_cache_across_block_boundaries():
    """Gathered paged context is value-identical to the rectangular cache."""
    rng = np.random.default_rng(0)
    paged = PagedKVCache(2, batch=2, block_size=4, initial_blocks=2)
    rect = KVCache(2, batch=2, initial_capacity=4)
    for seq in (3, 1, 2, 5, 8, 1, 9):  # crosses many block boundaries
        for layer in range(2):
            k, v = random_kv(rng, 2, 3, seq, 8)
            got_k, got_v = paged.append(layer, k, v)
            want_k, want_v = rect.append(layer, k, v)
            np.testing.assert_array_equal(got_k, want_k)
            np.testing.assert_array_equal(got_v, want_v)
    assert paged.seq_len == 29
    assert paged.blocks_in_use() == 2 * 8  # ceil(29/4) blocks per row


def test_write_token_matches_rectangular_cache():
    rng = np.random.default_rng(1)
    paged = PagedKVCache(1, batch=3, block_size=4)
    rect = KVCache(1, batch=3, initial_capacity=4)
    k0, v0 = random_kv(rng, 3, 2, 4, 8)
    paged.append(0, k0, v0)
    rect.append(0, k0, v0)
    positions = np.array([4, 4, 4])
    for _ in range(6):  # rows advance together across the block boundary
        k1, v1 = random_kv(rng, 3, 2, 1, 8)
        got_k, got_v = paged.write_token(0, k1, v1, positions)
        want_k, want_v = rect.write_token(0, k1, v1, positions)
        np.testing.assert_array_equal(got_k, want_k)
        np.testing.assert_array_equal(got_v, want_v)
        positions = positions + 1


def test_write_token_ragged_positions():
    """Rows at different depths write into different blocks of their own."""
    rng = np.random.default_rng(2)
    cache = PagedKVCache(1, batch=3, block_size=4)
    k0, v0 = random_kv(rng, 3, 2, 6, 8)
    cache.write_rows(0, k0[:1], v0[:1], np.array([0]))
    k1, v1 = random_kv(rng, 3, 2, 1, 8)
    positions = np.array([6, 0, 0])
    got_k, _ = cache.write_token(0, k1, v1, positions)
    assert got_k.shape[2] == 7
    np.testing.assert_array_equal(got_k[0, :, 6], k1[0, :, 0])
    np.testing.assert_array_equal(got_k[1, :, 0], k1[1, :, 0])
    np.testing.assert_array_equal(got_k[0, :, :6], k0[0])


def test_write_rows_prefills_subset():
    rng = np.random.default_rng(3)
    cache = PagedKVCache(1, batch=4, block_size=4)
    k0, v0 = random_kv(rng, 4, 2, 6, 8)
    cache.append(0, k0, v0)
    k1, v1 = random_kv(rng, 2, 2, 3, 8)
    cache.free_rows(np.array([1, 3]))
    cache.write_rows(0, k1, v1, np.array([1, 3]))
    got_k, _ = cache.write_token(0, *random_kv(rng, 4, 2, 1, 8),
                                 positions=np.array([6, 3, 6, 3]))
    np.testing.assert_array_equal(got_k[1, :, :3], k1[0])
    np.testing.assert_array_equal(got_k[3, :, :3], k1[1])
    np.testing.assert_array_equal(got_k[0, :, :6], k0[0])


# ---------------------------------------------------------------------- #
# block allocation / free / reuse
# ---------------------------------------------------------------------- #
def test_free_rows_returns_blocks_and_slots_are_reused():
    rng = np.random.default_rng(4)
    cache = PagedKVCache(1, batch=2, block_size=4, initial_blocks=4)
    k, v = random_kv(rng, 1, 2, 10, 8)  # 3 blocks
    cache.write_rows(0, k, v, np.array([0]))
    assert cache.blocks_in_use() == 3
    pool_before = cache.allocated_bytes()

    cache.free_rows(np.array([0]))
    assert cache.blocks_in_use() == 0
    assert cache.cached_tokens == 0
    assert cache.used_bytes() == 0

    # A new sequence reuses the freed blocks: the pool must not grow.
    k2, v2 = random_kv(rng, 1, 2, 12, 8)  # 3 blocks again
    cache.write_rows(0, k2, v2, np.array([0]))
    assert cache.blocks_in_use() == 3
    assert cache.allocated_bytes() == pool_before
    got_k, _ = cache.write_token(0, *random_kv(rng, 2, 2, 1, 8),
                                 positions=np.array([12, 0]))
    np.testing.assert_array_equal(got_k[0, :, :12], k2[0])


def test_pool_grows_when_free_list_runs_dry():
    rng = np.random.default_rng(5)
    cache = PagedKVCache(1, batch=1, block_size=2, initial_blocks=1)
    k, v = random_kv(rng, 1, 1, 9, 4)
    got_k, _ = cache.append(0, k, v)
    np.testing.assert_array_equal(got_k, k)
    assert cache.blocks_in_use() == 5
    assert cache.allocated_bytes() >= cache.used_bytes()


def test_memory_tracks_live_tokens_not_batch_times_max():
    """The paged win: short rows stop paying for the longest row."""
    rng = np.random.default_rng(6)
    batch, long_len, short_len = 4, 32, 4
    paged = PagedKVCache(1, batch=batch, block_size=4)
    rect = KVCache(1, batch=batch, initial_capacity=4)
    k, v = random_kv(rng, 1, 2, long_len, 8)
    paged.write_rows(0, k, v, np.array([0]))
    rect.write_rows(0, k, v, np.array([0]))
    ks, vs = random_kv(rng, batch - 1, 2, short_len, 8)
    paged.write_rows(0, ks, vs, np.arange(1, batch))
    rect.write_rows(0, ks, vs, np.arange(1, batch))
    # 8 + 3x1 blocks of 4 tokens vs a 4 x 32 rectangle.
    assert paged.blocks_in_use() == 8 + 3
    assert paged.used_bytes() < rect.used_bytes() / 2


def test_used_bytes_counts_cached_tokens():
    cache = PagedKVCache(2, batch=1, block_size=4)
    k = np.ones((1, 2, 5, 8), dtype=np.float32)
    for layer in range(2):
        cache.append(layer, k, k.copy())
    # 2 layers x K+V x 5 tokens x heads x head_dim x fp32.
    assert cache.used_bytes() == 2 * 2 * 5 * 2 * 8 * 4


def test_boundary_at_large_positions():
    """Writes at a max_seq_len-style boundary land in the last block."""
    cache = PagedKVCache(1, batch=1, block_size=16)
    k = np.ones((1, 2, 1, 4), dtype=np.float32)
    got_k, _ = cache.write_token(0, k, k.copy(), np.array([511]))
    assert got_k.shape[2] == 512
    assert cache.blocks_in_use() == 32
    np.testing.assert_array_equal(got_k[0, :, 511], k[0, :, 0])
    assert np.isfinite(got_k).all()  # unwritten slots are zero, not garbage


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        PagedKVCache(1, batch=0)
    with pytest.raises(ValueError):
        PagedKVCache(1, batch=1, block_size=0)


# ---------------------------------------------------------------------- #
# quantized paged cache
# ---------------------------------------------------------------------- #
def reference_block_reconstruction(block):
    """FineQ-encode one ``(heads, bs, hd)`` block exactly as the cache does."""
    heads, bs, head_dim = block.shape
    matrix = block.transpose(0, 2, 1).reshape(heads * head_dim, bs)
    clusters, _ = cluster_weights(matrix)
    schemes = initial_schemes(clusters)
    scales = channel_scales(clusters, schemes)
    harmonized = harmonize_pairs(clusters, schemes, scales)
    if harmonized is not schemes:
        schemes = harmonized
        scales = channel_scales(clusters, schemes)
    codes = quantize_codes(clusters, schemes, scales)
    # The cache stores scales as FP16, so reconstruct with FP16 scales.
    fp16_scales = scales.reshape(-1).astype(np.float16).astype(np.float32)
    values = codes.astype(np.float32) * fp16_scales[:, None, None]
    flat = values.reshape(heads * head_dim, -1)[:, :bs]
    return flat.reshape(heads, head_dim, bs).transpose(0, 2, 1)


def test_quantized_block_roundtrip_matches_reference():
    """A flushed block reads back exactly as the FineQ pipeline predicts."""
    rng = np.random.default_rng(7)
    bs, heads, head_dim = 16, 2, 8
    cache = QuantizedPagedKVCache(1, batch=1, block_size=bs)
    k, v = random_kv(rng, 1, heads, bs, head_dim)
    cache.write_rows(0, k, v, np.array([0]))
    # Writing the first token of block 1 flushes (quantizes) block 0.
    k1, v1 = random_kv(rng, 1, heads, 1, head_dim)
    got_k, got_v = cache.write_token(0, k1, v1, np.array([bs]))
    np.testing.assert_allclose(got_k[0, :, :bs],
                               reference_block_reconstruction(k[0]),
                               rtol=0, atol=1e-6)
    np.testing.assert_allclose(got_v[0, :, :bs],
                               reference_block_reconstruction(v[0]),
                               rtol=0, atol=1e-6)
    # The buffered (current-block) token stays bit-exact FP32.
    np.testing.assert_array_equal(got_k[0, :, bs], k1[0, :, 0])


def test_quantized_roundtrip_error_is_bounded_per_channel():
    """Reconstruction error never exceeds the channel's own magnitude."""
    rng = np.random.default_rng(8)
    block = rng.standard_normal((2, 16, 8)).astype(np.float32)
    payload, scales = quantize_kv_block(block[None])
    restored = dequantize_kv_channels(payload, scales, 16)
    matrix = block.transpose(0, 2, 1).reshape(-1, 16)
    max_abs = np.abs(matrix).max(axis=1, keepdims=True)
    assert (np.abs(restored - matrix) <= max_abs + 1e-6).all()


def test_quantized_buffer_is_exact_until_block_fills():
    """Tokens in the current block read back bit-for-bit."""
    rng = np.random.default_rng(9)
    cache = QuantizedPagedKVCache(1, batch=2, block_size=8)
    kept = []
    for position in range(8):
        k, v = random_kv(rng, 2, 2, 1, 4)
        kept.append(k)
        got_k, _ = cache.write_token(0, k, v, np.full(2, position))
        for t, want in enumerate(kept):
            np.testing.assert_array_equal(got_k[:, :, t], want[:, :, 0])
    assert cache.blocks_in_use() == 0  # nothing flushed yet


def test_quantized_used_bytes_at_least_4x_smaller_on_full_blocks():
    rng = np.random.default_rng(10)
    heads, head_dim, bs, seq = 4, 32, 16, 129  # 8 full blocks + 1 buffered
    quant = QuantizedPagedKVCache(1, batch=1, block_size=bs)
    plain = PagedKVCache(1, batch=1, block_size=bs)
    k, v = random_kv(rng, 1, heads, seq, head_dim)
    quant.write_rows(0, k, v, np.array([0]))
    plain.write_rows(0, k, v, np.array([0]))
    assert quant.cached_tokens == plain.cached_tokens == seq
    assert quant.used_bytes() * 4 <= plain.used_bytes()


def test_quantized_free_and_reuse():
    rng = np.random.default_rng(11)
    cache = QuantizedPagedKVCache(1, batch=1, block_size=4)
    k, v = random_kv(rng, 1, 2, 11, 4)  # 2 quantized blocks + 3 buffered
    cache.write_rows(0, k, v, np.array([0]))
    assert cache.blocks_in_use() == 2
    cache.free_rows(np.array([0]))
    assert cache.blocks_in_use() == 0
    assert cache.used_bytes() == 0
    k2, v2 = random_kv(rng, 1, 2, 5, 4)
    cache.write_rows(0, k2, v2, np.array([0]))
    got_k, _ = cache.write_token(0, *random_kv(rng, 1, 2, 1, 4),
                                 positions=np.array([5]))
    np.testing.assert_array_equal(got_k[0, :, 4:5], k2[0, :, 4:5])


def test_write_rows_ragged_lengths_account_true_tokens():
    """Right-padded prefills must not charge short rows for padding."""
    rng = np.random.default_rng(12)
    cache = PagedKVCache(1, batch=2, block_size=4)
    k, v = random_kv(rng, 2, 2, 10, 8)  # padded width 10; true lens 5, 10
    cache.write_rows(0, k, v, np.array([0, 1]),
                     row_lengths=np.array([5, 10]))
    assert cache.cached_tokens == 15
    assert cache.blocks_in_use() == 2 + 3  # ceil(5/4) + ceil(10/4)
    got_k, _ = cache.write_token(0, *random_kv(rng, 2, 2, 1, 8),
                                 positions=np.array([5, 10]))
    np.testing.assert_array_equal(got_k[0, :, :5], k[0, :, :5])
    np.testing.assert_array_equal(got_k[1, :, :10], k[1])


def test_quantized_ragged_prefill_keeps_overlay_aligned():
    """Regression: a padded prefill crossing a block boundary must not
    shift the short row's FP32 current-block overlay (tokens written
    after admission were surfacing at masked positions while their real
    positions read quantized padding garbage)."""
    rng = np.random.default_rng(13)
    cache = QuantizedPagedKVCache(1, batch=2, block_size=4)
    k, v = random_kv(rng, 2, 2, 10, 8)  # row 0 truly 5 tokens, row 1 ten
    cache.write_rows(0, k, v, np.array([0, 1]),
                     row_lengths=np.array([5, 10]))
    assert cache.cached_tokens == 15
    # Decode one token per row at each row's true next position.
    k1, v1 = random_kv(rng, 2, 2, 1, 8)
    got_k, _ = cache.write_token(0, k1, v1, np.array([5, 10]))
    # The freshly written tokens are visible at their true positions...
    np.testing.assert_array_equal(got_k[0, :, 5], k1[0, :, 0])
    np.testing.assert_array_equal(got_k[1, :, 10], k1[1, :, 0])
    # ...and each row's buffered (not yet quantized) tokens stay exact.
    np.testing.assert_array_equal(got_k[0, :, 4], k[0, :, 4])
    np.testing.assert_array_equal(got_k[1, :, 8:10], k[1, :, 8:10])


def test_quantized_append_requires_single_token():
    cache = QuantizedPagedKVCache(1, batch=1, block_size=4)
    k = np.ones((1, 2, 3, 4), dtype=np.float32)
    with pytest.raises(NotImplementedError):
        cache.append(0, k, k.copy())
