"""Layer unit tests."""

import numpy as np

from repro.autograd import Tensor
from repro.nn import Linear, Embedding, RMSNorm


def test_linear_forward_matches_matmul():
    layer = Linear(4, 3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((2, 4)).astype(np.float32)
    out = layer(Tensor(x))
    np.testing.assert_allclose(out.data, x @ layer.weight.data.T, atol=1e-6)


def test_linear_bias():
    layer = Linear(4, 3, bias=True, rng=np.random.default_rng(0))
    layer.bias.data[:] = [1.0, 2.0, 3.0]
    out = layer(Tensor(np.zeros((1, 4), dtype=np.float32)))
    np.testing.assert_allclose(out.data[0], [1.0, 2.0, 3.0])


def test_linear_gaussian_init_statistics():
    layer = Linear(400, 300, rng=np.random.default_rng(0))
    std = layer.weight.data.std()
    assert np.isclose(std, 1 / np.sqrt(400), rtol=0.1)
    # Gaussian: some weights beyond 3 sigma (uniform init would have none).
    assert (np.abs(layer.weight.data) > 3 * std).any()


def test_linear_repr_shows_quant_method(gaussian_weight):
    from repro.quant import get_quantizer
    layer = Linear(120, 96)
    layer.weight.data = gaussian_weight.astype(np.float32)
    dequantized, record = get_quantizer("fineq").quantize_weight(gaussian_weight)
    layer.weight.data = dequantized
    layer.quant_record = record
    assert "fineq" in repr(layer)


def test_embedding_lookup():
    table = Embedding(10, 4, rng=np.random.default_rng(0))
    out = table(np.array([[1, 2], [3, 4]]))
    assert out.shape == (2, 2, 4)
    np.testing.assert_allclose(out.data[0, 0], table.weight.data[1])


def test_rmsnorm_invariant_to_scale():
    norm = RMSNorm(8)
    x = np.random.default_rng(0).standard_normal((2, 8)).astype(np.float32)
    out1 = norm(Tensor(x)).data
    out2 = norm(Tensor(x * 10)).data
    np.testing.assert_allclose(out1, out2, atol=1e-4)
