"""Tensor autograd tests with finite-difference verification."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd.tensor import unbroadcast, concat


def numeric_grad(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = f(x)
        x[idx] = orig - eps
        down = f(x)
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check_grad(op, *shapes, seed=0, atol=2e-2):
    gen = np.random.default_rng(seed)
    arrays = [gen.standard_normal(s).astype(np.float32) for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    for i, (array, tensor) in enumerate(zip(arrays, tensors)):
        def scalar(x, i=i):
            args = [Tensor(a) for a in arrays]
            args[i] = Tensor(x.astype(np.float32))
            result = op(*args)
            return float(result.data.sum())
        expected = numeric_grad(scalar, array.astype(np.float64))
        np.testing.assert_allclose(tensor.grad, expected, atol=atol,
                                   err_msg=f"arg {i}")


def test_add_grad():
    check_grad(lambda a, b: a + b, (3, 4), (3, 4))


def test_add_broadcast_grad():
    check_grad(lambda a, b: a + b, (3, 4), (4,))
    check_grad(lambda a, b: a + b, (2, 3, 4), (1, 4))


def test_mul_grad():
    check_grad(lambda a, b: a * b, (3, 4), (3, 4))


def test_div_grad():
    check_grad(lambda a, b: a / (b * b + 1.0), (3,), (3,))


def test_pow_sqrt_grad():
    check_grad(lambda a: (a * a + 1.0).sqrt(), (5,))


def test_exp_log_grad():
    check_grad(lambda a: (a.exp() + 1.0).log(), (4,))


def test_tanh_sigmoid_silu_grad():
    check_grad(lambda a: a.tanh(), (5,))
    check_grad(lambda a: a.sigmoid(), (5,))
    check_grad(lambda a: a.silu(), (5,))


def test_relu_grad_away_from_kink():
    gen = np.random.default_rng(0)
    x = gen.standard_normal((10,)).astype(np.float32)
    x[np.abs(x) < 0.1] = 0.5
    t = Tensor(x, requires_grad=True)
    t.relu().sum().backward()
    np.testing.assert_allclose(t.grad, (x > 0).astype(np.float32))


def test_matmul_grad():
    check_grad(lambda a, b: a @ b, (3, 4), (4, 2))


def test_batched_matmul_grad():
    check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 2))


def test_reductions_grad():
    check_grad(lambda a: a.sum(axis=1), (3, 4))
    check_grad(lambda a: a.mean(axis=0, keepdims=True), (3, 4))
    check_grad(lambda a: a.max(axis=1), (3, 4))


def test_shape_ops_grad():
    check_grad(lambda a: a.reshape(6, 2), (3, 4))
    check_grad(lambda a: a.transpose(1, 0), (3, 4))
    check_grad(lambda a: a.swapaxes(0, 2), (2, 3, 4))


def test_getitem_grad():
    check_grad(lambda a: a[1:, :2], (3, 4))


def test_concat_grad():
    check_grad(lambda a, b: concat([a, b], axis=1), (2, 3), (2, 2))


def test_diamond_graph_accumulates():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * x + x * 3.0
    y.backward()
    np.testing.assert_allclose(x.grad, [2 * 2.0 + 3.0])


def test_reused_tensor_accumulates_across_backwards():
    x = Tensor(np.array([1.0]), requires_grad=True)
    (x * 2).backward()
    (x * 3).backward()
    np.testing.assert_allclose(x.grad, [5.0])


def test_no_grad_blocks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = x * 2
    assert not y.requires_grad
    with pytest.raises(RuntimeError):
        y.backward(np.ones(3))


def test_backward_requires_scalar_without_seed():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_unbroadcast_shapes():
    grad = np.ones((2, 3, 4))
    assert unbroadcast(grad, (3, 4)).shape == (3, 4)
    assert unbroadcast(grad, (1, 4)).shape == (1, 4)
    np.testing.assert_allclose(unbroadcast(grad, (1, 4)), np.full((1, 4), 6.0))


def test_detach_breaks_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    y = x.detach()
    assert not y.requires_grad
