"""Property-based gradient checks over random op chains."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor

OPS = {
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "silu": lambda t: t.silu(),
    "exp_shrunk": lambda t: (t * 0.3).exp(),
    "square": lambda t: t * t,
    "affine": lambda t: t * 1.7 + 0.3,
}


@settings(max_examples=30, deadline=None)
@given(chain=st.lists(st.sampled_from(sorted(OPS)), min_size=1, max_size=4),
       seed=st.integers(0, 10_000))
def test_random_chain_gradient_matches_finite_difference(chain, seed):
    gen = np.random.default_rng(seed)
    x_np = gen.uniform(-1.5, 1.5, size=(4,)).astype(np.float32)

    def apply_chain(tensor):
        for name in chain:
            tensor = OPS[name](tensor)
        return tensor.sum()

    x = Tensor(x_np.copy(), requires_grad=True)
    apply_chain(x).backward()

    eps = 1e-3
    numeric = np.zeros_like(x_np, dtype=np.float64)
    for i in range(x_np.size):
        bumped = x_np.astype(np.float64).copy()
        bumped[i] += eps
        up = float(apply_chain(Tensor(bumped.astype(np.float32))).data)
        bumped[i] -= 2 * eps
        down = float(apply_chain(Tensor(bumped.astype(np.float32))).data)
        numeric[i] = (up - down) / (2 * eps)
    # Tolerance relative to gradient magnitude: composed chains (e.g.
    # square^3) legitimately produce large derivatives where float32
    # forward passes limit finite-difference accuracy.
    tolerance = 5e-2 * max(1.0, float(np.abs(numeric).max()))
    np.testing.assert_allclose(x.grad, numeric, atol=tolerance)


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 5), k=st.integers(1, 5), n=st.integers(1, 5),
       seed=st.integers(0, 1000))
def test_matmul_grad_shapes_property(m, k, n, seed):
    gen = np.random.default_rng(seed)
    a = Tensor(gen.standard_normal((m, k)).astype(np.float32),
               requires_grad=True)
    b = Tensor(gen.standard_normal((k, n)).astype(np.float32),
               requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (m, k)
    assert b.grad.shape == (k, n)
    # d(sum(AB))/dA = 1 B^T exactly.
    np.testing.assert_allclose(a.grad, np.ones((m, n)) @ b.data.T, atol=1e-5)
