"""NN-level functional tests."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from tests.autograd.test_tensor import check_grad, numeric_grad


def test_softmax_rows_sum_to_one():
    x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
    probs = F.softmax(x, axis=-1).data
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-6)


def test_softmax_stable_for_large_logits():
    x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
    probs = F.softmax(x).data
    assert np.isfinite(probs).all()
    np.testing.assert_allclose(probs[0, :2], [0.5, 0.5], atol=1e-6)


def test_softmax_grad():
    check_grad(lambda a: F.softmax(a, axis=-1), (3, 5))


def test_log_softmax_matches_log_of_softmax():
    x = Tensor(np.random.default_rng(1).standard_normal((3, 6)))
    np.testing.assert_allclose(F.log_softmax(x).data,
                               np.log(F.softmax(x).data), atol=1e-6)


def test_log_softmax_grad():
    check_grad(lambda a: F.log_softmax(a, axis=-1), (3, 5))


def test_cross_entropy_value():
    logits = Tensor(np.zeros((2, 4), dtype=np.float32))
    loss = F.cross_entropy(logits, np.array([0, 3]))
    np.testing.assert_allclose(loss.item(), np.log(4.0), atol=1e-6)


def test_cross_entropy_grad_matches_numeric():
    gen = np.random.default_rng(2)
    logits_np = gen.standard_normal((5, 7)).astype(np.float32)
    targets = gen.integers(0, 7, size=5)
    logits = Tensor(logits_np.copy(), requires_grad=True)
    F.cross_entropy(logits, targets).backward()

    def scalar(x):
        return float(F.cross_entropy(Tensor(x.astype(np.float32)),
                                     targets).data)
    expected = numeric_grad(scalar, logits_np.astype(np.float64))
    np.testing.assert_allclose(logits.grad, expected, atol=2e-3)


def test_cross_entropy_validates_shapes():
    with pytest.raises(ValueError):
        F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
    with pytest.raises(ValueError):
        F.cross_entropy(Tensor(np.zeros((2, 4))), np.zeros(3, dtype=int))


def test_nll_per_token_matches_cross_entropy():
    gen = np.random.default_rng(3)
    logits = gen.standard_normal((4, 9)).astype(np.float32)
    targets = gen.integers(0, 9, size=4)
    nll = F.nll_per_token(logits, targets)
    loss = F.cross_entropy(Tensor(logits), targets)
    np.testing.assert_allclose(nll.mean(), loss.data, atol=1e-6)


def test_embedding_gather_and_scatter():
    weight = Tensor(np.arange(12.0).reshape(4, 3).astype(np.float32),
                    requires_grad=True)
    indices = np.array([[0, 2], [2, 3]])
    out = F.embedding(weight, indices)
    np.testing.assert_allclose(out.data[0, 1], weight.data[2])
    out.sum().backward()
    # Row 2 used twice, rows 0 and 3 once, row 1 never.
    np.testing.assert_allclose(weight.grad[:, 0], [1.0, 0.0, 2.0, 1.0])


def test_rms_norm_unit_scale():
    x = Tensor(np.random.default_rng(4).standard_normal((2, 8)).astype(np.float32))
    gain = Tensor(np.ones(8, dtype=np.float32))
    out = F.rms_norm(x, gain).data
    rms = np.sqrt((out ** 2).mean(axis=-1))
    np.testing.assert_allclose(rms, np.ones(2), atol=1e-3)


def test_rms_norm_grad():
    check_grad(lambda a, g: F.rms_norm(a, g), (3, 8), (8,))


def test_causal_mask_shape_and_values():
    mask = F.causal_mask(4)
    assert mask.shape == (4, 4)
    assert np.isneginf(mask[0, 1])
    assert mask[3, 3] == 0 and mask[3, 0] == 0
