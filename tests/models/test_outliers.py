"""Outlier injection tests: function preservation and statistics."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.models import (OutlierSpec, inject_outliers,
                          pretrain_column_outliers)
from repro.models.stats import (weight_stats, model_weight_stats,
                                aggregate_outlier_ratio)
from repro.models.configs import tiny_config
from repro.nn import TransformerLM


@pytest.fixture
def fresh_model():
    return TransformerLM(tiny_config(vocab_size=64, seed=3))


def test_spike_injection_preserves_function(fresh_model):
    tokens = np.random.default_rng(0).integers(0, 64, size=(2, 16))
    with no_grad():
        before = fresh_model(tokens).data.copy()
    inject_outliers(fresh_model, OutlierSpec(seed=1))
    with no_grad():
        after = fresh_model(tokens).data
    np.testing.assert_allclose(before, after, atol=1e-4)


def test_spike_injection_changes_weights(fresh_model):
    reference = {name: layer.weight.data.copy()
                 for name, layer in fresh_model.quantizable_linears()}
    inject_outliers(fresh_model, OutlierSpec(seed=1))
    changed = sum(not np.allclose(layer.weight.data, reference[name])
                  for name, layer in fresh_model.quantizable_linears())
    assert changed >= 4 * fresh_model.config.num_layers


def test_spike_report_targets_real_channels(fresh_model):
    report = inject_outliers(fresh_model, OutlierSpec(seed=2))
    entry = report["blocks.0.ffn.up"]
    up = fresh_model.blocks[0].ffn.up
    assert (entry["rows"] < up.out_features).all()
    assert (entry["scales"] >= 1.0).all()


def test_pretrain_injection_amplifies_columns(fresh_model):
    spec = OutlierSpec(seed=3, column_fraction=0.05, column_range=(8.0, 8.0))
    before = fresh_model.blocks[0].attn.wq.weight.data.copy()
    report = pretrain_column_outliers(fresh_model, spec)
    cols = report["blocks.0.attn.wq"]["columns"]
    after = fresh_model.blocks[0].attn.wq.weight.data
    np.testing.assert_allclose(after[:, cols], before[:, cols] * 8.0,
                               rtol=1e-5)


def test_pretrain_injection_covers_all_linears(fresh_model):
    report = pretrain_column_outliers(fresh_model, OutlierSpec(seed=4))
    assert set(report) == {name for name, _ in
                           fresh_model.quantizable_linears()}


def test_outlier_ratio_increases(fresh_model):
    before = aggregate_outlier_ratio(fresh_model)
    pretrain_column_outliers(fresh_model, OutlierSpec(seed=5))
    inject_outliers(fresh_model, OutlierSpec(seed=5))
    after = aggregate_outlier_ratio(fresh_model)
    assert after > before


def test_invalid_scale_range_rejected(fresh_model):
    with pytest.raises(ValueError):
        pretrain_column_outliers(
            fresh_model, OutlierSpec(column_range=(0.0, 2.0)))


def test_weight_stats_detects_planted_outliers():
    gen = np.random.default_rng(0)
    weight = gen.standard_normal((100, 60))
    weight[:, 5] *= 20.0
    stats = weight_stats(weight)
    assert stats.outlier_ratio > 0.005
    assert stats.max_abs > 10 * stats.std


def test_weight_stats_clean_gaussian_low_ratio():
    weight = np.random.default_rng(1).standard_normal((200, 200))
    assert weight_stats(weight).outlier_ratio < 0.001


def test_model_weight_stats_keys(fresh_model):
    stats = model_weight_stats(fresh_model)
    assert set(stats) == {name for name, _ in
                          fresh_model.quantizable_linears()}
