"""Zoo configuration and (artifact-gated) loading tests."""

import numpy as np
import pytest

from repro.config import artifacts_dir
from repro.models import ZOO_CONFIGS, zoo_config, tiny_config
from repro.models.configs import ZOO_TRAIN_STEPS
from repro.nn import TransformerLM


def test_zoo_configs_well_formed():
    for name, config in ZOO_CONFIGS.items():
        assert config.name == name
        assert config.d_model % config.num_heads == 0
        assert (config.d_model // config.num_heads) % 2 == 0  # RoPE pairs
        assert name in ZOO_TRAIN_STEPS


def test_zoo_sizes_ordered():
    sizes = [TransformerLM(c).num_parameters()
             for c in (zoo_config("llama-sim-3b"), zoo_config("llama-sim-7b"),
                       zoo_config("llama-sim-13b"))]
    assert sizes == sorted(sizes)


def test_unknown_zoo_name():
    with pytest.raises(KeyError):
        zoo_config("llama-sim-70b")


def test_tiny_config_fast():
    config = tiny_config()
    model = TransformerLM(config)
    assert model.num_parameters() < 150_000


@pytest.mark.skipif(
    not (artifacts_dir() / "llama-sim-3b.npz").exists(),
    reason="zoo artifacts not trained yet (run benchmarks first)")
def test_cached_zoo_model_loads():
    from repro.models import load_model
    zoo = load_model("llama-sim-3b", train_if_missing=False)
    assert zoo.meta["train"]["steps"] == ZOO_TRAIN_STEPS["llama-sim-3b"]
    logits = zoo.model(np.array([[1, 2, 3]]))
    assert np.isfinite(logits.data).all()
    # Trained well below the random-chance perplexity.
    assert zoo.meta["train"]["val_loss"] < 3.0
