"""Perplexity clamping and edge-case behaviour."""

import numpy as np

from repro.autograd.functional import nll_per_token
from repro.eval.perplexity import perplexity
from repro.models.configs import tiny_config
from repro.nn import TransformerLM


def test_perplexity_clamped_at_display_cap():
    """Catastrophic models saturate instead of overflowing (paper tables
    display values like 6.3E+6)."""
    model = TransformerLM(tiny_config(vocab_size=64, seed=0))
    # Destroy the model: huge weights produce extreme logits.
    for _, layer in model.quantizable_linears():
        layer.weight.data *= 1e4
    stream = np.random.default_rng(0).integers(0, 64, size=4000)
    value = perplexity(model, stream, seq_len=32)
    assert np.isfinite(value)
    assert value <= np.exp(30.0)


def test_nll_per_token_shapes():
    logits = np.zeros((2, 5, 8), dtype=np.float32)
    targets = np.zeros((2, 5), dtype=np.int64)
    nll = nll_per_token(logits, targets)
    assert nll.shape == (2, 5)
    np.testing.assert_allclose(nll, np.log(8.0), atol=1e-6)


def test_perplexity_max_tokens_truncates():
    model = TransformerLM(tiny_config(vocab_size=64, seed=1))
    stream = np.random.default_rng(1).integers(0, 64, size=50_000)
    short = perplexity(model, stream, seq_len=32, max_tokens=2_000)
    assert np.isfinite(short)
