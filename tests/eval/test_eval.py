"""Perplexity harness and sweep tests."""

import numpy as np
import pytest

from repro.data import WordTokenizer
from repro.eval import (cached_perplexity, perplexity, clone_model,
                        quantized_perplexity, run_method_sweep)
from repro.eval.perplexity import eval_stream
from repro.eval.tables import format_table, format_markdown, format_number
from repro.models.configs import tiny_config
from repro.nn import KVCache, PagedKVCache, QuantizedPagedKVCache, TransformerLM


def test_perplexity_of_untrained_model_near_vocab(tiny_model, tiny_stream):
    """An untrained model is near-uniform: PPL ~ vocab size."""
    untrained = TransformerLM(tiny_config(vocab_size=256, seed=77))
    ppl = perplexity(untrained, tiny_stream[:4000], seq_len=64)
    assert 100 < ppl < 600


def test_trained_model_much_better_than_chance(tiny_model, tiny_stream):
    ppl = perplexity(tiny_model, tiny_stream[:4000], seq_len=64)
    assert ppl < 40


def test_perplexity_requires_enough_tokens(tiny_model):
    with pytest.raises(ValueError):
        perplexity(tiny_model, np.arange(10), seq_len=64)


def test_cached_perplexity_fp32_matches_full_forward(tiny_model, tiny_stream):
    """Feeding tokens through an exact KV cache changes nothing."""
    stream = tiny_stream[:4 * 32 + 1]
    plain = perplexity(tiny_model, stream, seq_len=32, batch_size=2)
    layers = tiny_model.config.num_layers
    for factory in (lambda b: KVCache(layers, batch=b),
                    lambda b: PagedKVCache(layers, batch=b, block_size=8)):
        cached = cached_perplexity(tiny_model, stream, 32, factory,
                                   batch_size=2)
        np.testing.assert_allclose(cached, plain, rtol=1e-6)


def test_cached_perplexity_quantized_close_to_exact(tiny_model, tiny_stream):
    """The FineQ cache degrades perplexity only slightly on a tiny model."""
    stream = tiny_stream[:2 * 32 + 1]
    layers = tiny_model.config.num_layers
    exact = cached_perplexity(tiny_model, stream, 32,
                              lambda b: PagedKVCache(layers, batch=b),
                              batch_size=2)
    quant = cached_perplexity(
        tiny_model, stream, 32,
        lambda b: QuantizedPagedKVCache(layers, batch=b, block_size=8),
        batch_size=2)
    assert abs(quant - exact) / exact < 0.25


def test_eval_stream_disjoint_from_training(tiny_tokenizer):
    a = eval_stream(tiny_tokenizer, "wikitext-sim")
    b = eval_stream(tiny_tokenizer, "c4-sim")
    assert len(a) > 1000 and len(b) > 1000
    assert not np.array_equal(a[:100], b[:100])


def test_clone_model_independent(tiny_model):
    clone = clone_model(tiny_model)
    clone.blocks[0].ffn.up.weight.data[:] = 0.0
    assert not np.allclose(tiny_model.blocks[0].ffn.up.weight.data, 0.0)


def test_quantized_perplexity_fp16_reference(tiny_model, tiny_tokenizer):
    result, report = quantized_perplexity(
        tiny_model, tiny_tokenizer, "fp16", ("wikitext-sim",), seq_len=64,
        max_tokens=3000)
    assert report is None
    assert result.avg_bits == 16.0
    assert result.perplexity["wikitext-sim"] > 1.0


def test_method_sweep_ordering(tiny_model, tiny_tokenizer):
    """The paper's headline ordering on the tiny substrate."""
    methods = [("fp16", None), ("rtn", {"bits": 2}), ("fineq", None)]
    results = run_method_sweep(tiny_model, tiny_tokenizer, methods,
                               datasets=("wikitext-sim",), seq_len=64,
                               max_tokens=3000)
    by_method = {r.method: r.perplexity["wikitext-sim"] for r in results}
    assert by_method["fp16"] < by_method["fineq"] < by_method["rtn"]


def test_format_number_scientific_for_huge():
    assert "E+" in format_number(7.4e5)
    assert format_number(12.345) == "12.35"


def test_format_table_and_markdown():
    text = format_table(["a", "b"], [[1, 2.5], ["x", 1e6]], title="T")
    assert "T" in text and "x" in text
    md = format_markdown(["a"], [[3.14159]])
    assert md.startswith("| a |")
    assert "3.14" in md
