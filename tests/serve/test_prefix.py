"""Prefix-sharing block store: adoption, COW, eviction, and parity.

The acceptance bar for the prefix subsystem: greedy output on the FP32
paged cache stays token-identical to sequential generate *with sharing
enabled* — through block-boundary divergence, mid-block copy-on-write,
cancellation, and a preemption/restore cycle — while refcounts guarantee
that retiring a reader frees exactly its exclusive blocks and that the
LRU eviction of the store never pulls a prefix out from under a reader
mid-decode.
"""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.nn.paged_kv_cache import PagedKVCache, QuantizedPagedKVCache
from repro.serve import GenerationEngine, PrefixStore, SamplingParams

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=3))


def shared_prompts(prefix_len=40, suffix_len=5, num=6, seed=0):
    rng = np.random.default_rng(seed)
    prefix = rng.integers(0, VOCAB, size=prefix_len)
    return [np.concatenate([prefix, rng.integers(0, VOCAB, size=suffix_len)])
            for _ in range(num)]


# ---------------------------------------------------------------------- #
# parity with sharing enabled (acceptance criterion)
# ---------------------------------------------------------------------- #
def test_sharing_greedy_parity_on_paged(model):
    """Greedy output with prefix sharing is token-identical to sequential
    generate, across shared, divergent, and unrelated prompts."""
    rng = np.random.default_rng(7)
    prompts = shared_prompts() + [rng.integers(0, VOCAB, size=9)]
    engine = GenerationEngine(model, max_batch_size=3, kv_cache="paged",
                              prefix_sharing=True,
                              scheduler="prefix-affinity")
    ids = [engine.submit(p, 10) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt in zip(ids, prompts):
        want = model.generate(prompt, 10, temperature=0.0)
        np.testing.assert_array_equal(done[rid].tokens, want)
    # Sharing actually happened (prefix 40 = 2 full blocks + 8-token tail).
    assert engine.stats.shared_prompt_tokens > 0
    assert engine.stats.prefill_tokens < engine.stats.prompt_tokens


def test_sharing_parity_single_wave_cold_burst(model):
    """A cold burst of identical-prefix prompts admitted into one batch
    still shares: one representative prefills the prefix, the rest adopt
    it in the same step."""
    prompts = shared_prompts(num=4)
    engine = GenerationEngine(model, max_batch_size=4, kv_cache="paged",
                              prefix_sharing=True)
    ids = [engine.submit(p, 6) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt in zip(ids, prompts):
        want = model.generate(prompt, 6, temperature=0.0)
        np.testing.assert_array_equal(done[rid].tokens, want)
    stats = engine.stats
    # 3 of 4 prompts adopted the 40-token prefix from the first.
    assert stats.shared_prompt_tokens == 3 * 40


def test_sharing_parity_on_fineq_runs_and_shares(model):
    """The quantized cache serves the same workload (bounded accuracy, so
    only structure is asserted: budgets met, sharing engaged)."""
    prompts = shared_prompts()
    engine = GenerationEngine(model, max_batch_size=3, kv_cache="fineq",
                              prefix_sharing=True)
    ids = [engine.submit(p, 8) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt in zip(ids, prompts):
        assert len(done[rid].new_tokens) == 8
        np.testing.assert_array_equal(done[rid].tokens[:len(prompt)], prompt)
    assert engine.stats.shared_prompt_tokens > 0


def test_sharing_with_sampling_per_request_rng_stable(model):
    """Sampled requests draw identical streams whether or not their
    prompt was served from a shared prefix."""
    prompt = shared_prompts(num=1)[0]
    params = SamplingParams(max_new_tokens=10, temperature=1.2, top_k=8,
                            seed=42)
    solo = GenerationEngine(model, max_batch_size=1)
    sid = solo.submit(prompt, params=params)
    want = {c.request_id: c for c in solo.run()}[sid].tokens

    engine = GenerationEngine(model, max_batch_size=2, prefix_sharing=True)
    engine.submit(prompt, 4)                   # donor: caches the prefix
    engine.run()
    rid = engine.submit(prompt, params=params)  # adopts the cached prefix
    got = {c.request_id: c for c in engine.run()}[rid].tokens
    np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------- #
# divergence: block boundary vs mid-block COW
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_block_boundary_divergence_shares_without_copy(model, kv_cache):
    """Two prompts identical through k full blocks then divergent share
    those k blocks by reference — no COW block is consumed."""
    rng = np.random.default_rng(3)
    prefix = rng.integers(0, VOCAB, size=32)  # exactly 2 blocks of 16
    a = np.concatenate([prefix, rng.integers(0, VOCAB, size=4)])
    b = np.concatenate([prefix, rng.integers(0, VOCAB, size=4)])
    engine = GenerationEngine(model, max_batch_size=1, kv_cache=kv_cache,
                              prefix_sharing=True)
    ra = engine.submit(a, 4)
    engine.run()
    store = engine.prefix_store
    cache = engine.cache
    # The two full prefix blocks are indexed; find them via a peek.
    match = store.peek(b)
    assert match.shared_len >= 32
    assert len(match.full_ids) == 2
    rb = engine.submit(b, 4)
    done = {c.request_id: c for c in engine.run()}
    if kv_cache == "paged":
        np.testing.assert_array_equal(
            done[rb].tokens, model.generate(b, 4, temperature=0.0))
    # Shared blocks are aliased, not copied: store still holds its ref
    # and the blocks were never duplicated for the second reader.
    for block in match.full_ids:
        assert cache.block_refcount(block) >= 1


def test_midblock_divergence_cow_keeps_donor_intact(model):
    """Divergence inside a partially-filled block copy-on-writes: the
    reader gets a private copy, the donor's block is untouched, and both
    continuations stay greedy-exact."""
    rng = np.random.default_rng(4)
    common = rng.integers(0, VOCAB, size=24)       # 1 full block + 8 tail
    a = np.concatenate([common, rng.integers(0, VOCAB, size=3)])
    b = np.concatenate([common, rng.integers(0, VOCAB, size=3)])
    assert not np.array_equal(a, b)
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              prefix_sharing=True)
    ra = engine.submit(a, 8)
    engine.run()
    match = engine.prefix_store.peek(b)
    assert match.tail_id is not None
    assert match.shared_len == 24  # 16 full + 8 matched tail tokens
    tail_before_k = [engine.cache._pool_k[layer][match.tail_id].copy()
                     for layer in range(model.config.num_layers)]
    rb = engine.submit(b, 8)
    done = {c.request_id: c for c in engine.run()}
    np.testing.assert_array_equal(done[rb].tokens,
                                  model.generate(b, 8, temperature=0.0))
    # COW: the shared tail block's payload never changed.
    for layer in range(model.config.num_layers):
        np.testing.assert_array_equal(
            engine.cache._pool_k[layer][match.tail_id], tail_before_k[layer])


# ---------------------------------------------------------------------- #
# refcounts: cancel/preempt return exactly the non-shared blocks
# ---------------------------------------------------------------------- #
def test_cancel_reader_returns_exactly_exclusive_blocks(model):
    prompts = shared_prompts(prefix_len=32, suffix_len=4, num=2)
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              prefix_sharing=True)
    donor = engine.submit(prompts[0], 20)
    reader = engine.submit(prompts[1], 20)
    # Decode past the next block boundary (36 + 14 > 48) so the reader
    # owns a decode-only block no prefix capture ever referenced.
    for _ in range(14):
        engine.step()
    cache = engine.cache
    reader_row = engine._live[reader]
    owned = int(cache._blocks_per_row[reader_row])
    table = [int(b) for b in cache._tables[reader_row, :owned]]
    exclusive = [b for b in table if cache.block_refcount(b) == 1]
    shared = [b for b in table if cache.block_refcount(b) > 1]
    assert shared and exclusive  # the workload produces both kinds
    free_before = cache.free_blocks()
    assert engine.cancel(reader)
    # Exactly the exclusively-owned blocks came back to the pool.
    assert cache.free_blocks() - free_before == len(exclusive)
    for block in shared:
        assert cache.block_refcount(block) >= 1  # still resident
    # The surviving donor is unperturbed.
    done = {c.request_id: c for c in engine.run()}
    np.testing.assert_array_equal(
        done[donor].tokens, model.generate(prompts[0], 20, temperature=0.0))


def test_preemption_restores_from_surviving_prefix(model):
    """Preempt/restore parity: the victim resumes exactly, and its
    re-admission adopts the prefix that survived in the store."""
    rng = np.random.default_rng(9)
    low_prompt = np.concatenate([shared_prompts(num=1, prefix_len=32,
                                                suffix_len=0)[0],
                                 rng.integers(0, VOCAB, size=2)])
    hi_prompt = rng.integers(0, VOCAB, size=8)
    engine = GenerationEngine(model, max_batch_size=1, kv_cache="paged",
                              block_size=16, scheduler="priority",
                              prefix_sharing=True)
    low = engine.submit(low_prompt,
                        params=SamplingParams(max_new_tokens=24, priority=0))
    for _ in range(4):
        engine.step()
    shared_before = engine.stats.shared_prompt_tokens
    hi = engine.submit(hi_prompt,
                       params=SamplingParams(max_new_tokens=4, priority=9))
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions == 1
    # The restored victim adopted its own captured prompt prefix.
    assert engine.stats.shared_prompt_tokens > shared_before
    for rid, prompt, budget in ((low, low_prompt, 24), (hi, hi_prompt, 4)):
        np.testing.assert_array_equal(
            done[rid].tokens, model.generate(prompt, budget, temperature=0.0))


# ---------------------------------------------------------------------- #
# eviction under a pool budget
# ---------------------------------------------------------------------- #
def test_eviction_refused_while_reader_mid_decode(model):
    """A prefix whose blocks a live request still reads must survive
    budget pressure; it becomes evictable once the reader retires."""
    prompts = shared_prompts(prefix_len=32, suffix_len=4, num=2, seed=11)
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              prefix_sharing=True, prefix_blocks=64)
    rid = engine.submit(prompts[0], 24)
    engine.step()  # prefill + first decode: reader mid-decode
    store = engine.prefix_store
    cache = engine.cache
    pinned = store.pinned_blocks
    assert pinned > 0
    match = store.peek(prompts[1])
    assert match.shared_len >= 32
    # Squeeze the budget to zero: eviction must refuse every entry the
    # live reader still references.
    store.max_blocks = 0
    evicted = store.enforce_budget()
    assert evicted == 0
    assert store.stats.eviction_refusals > 0
    assert store.pinned_blocks == pinned
    assert store.peek(prompts[1]).shared_len >= 32  # prefix still served
    engine.run()  # reader retires -> its references drop
    assert store.enforce_budget() == pinned
    assert store.pinned_blocks == 0
    assert store.peek(prompts[1]).shared_len == 0


def test_lru_eviction_order_and_budget(model):
    """Unreferenced prefixes evict least-recently-used first, down to the
    budget, and the freed blocks return to the pool."""
    rng = np.random.default_rng(5)
    engine = GenerationEngine(model, max_batch_size=1, kv_cache="paged",
                              prefix_sharing=True)
    old = rng.integers(0, VOCAB, size=33)
    new = rng.integers(0, VOCAB, size=33)
    engine.submit(old, 2)
    engine.run()
    engine.submit(new, 2)
    engine.run()
    store = engine.prefix_store
    cache = engine.cache
    free_before = cache.free_blocks()
    before = store.pinned_blocks
    store.max_blocks = before - 1
    assert store.enforce_budget() == 1
    assert cache.free_blocks() == free_before + 1
    # The least-recently-used prefix (old) lost a block, not the new one.
    assert store.peek(new).shared_len >= 32
    assert store.peek(old).shared_len < 33


# ---------------------------------------------------------------------- #
# store-level unit checks
# ---------------------------------------------------------------------- #
def test_store_match_caps_at_prompt_minus_one():
    """A full-prompt cache hit still leaves one token to forward (the
    logits source)."""
    cache = PagedKVCache(num_layers=1, batch=2, block_size=4)
    k = np.random.default_rng(0).standard_normal((1, 2, 8, 4)).astype(np.float32)
    cache.write_rows(0, k, k, rows=np.array([0]), row_lengths=np.array([8]))
    store = PrefixStore(cache)
    tokens = np.arange(8)
    store.capture(0, tokens)
    match = store.match(tokens)  # identical prompt resubmitted
    assert match.shared_len == 4  # only the first full block; token 8-1=7 cap
    longer = np.arange(9)
    assert store.match(longer).shared_len == 8


def test_store_requires_paged_cache(model):
    from repro.nn.kv_cache import KVCache
    with pytest.raises(TypeError):
        PrefixStore(KVCache(2, batch=2))
    with pytest.raises(ValueError):
        GenerationEngine(model, kv_cache="dense", prefix_sharing=True)


def test_quantized_partial_prompt_block_stays_fp32_exact():
    """Regression for the prefill quantization discipline: the final
    partial prompt block routes through the FP32 write buffer (decode's
    rule), so the newest tokens read back bit-exact — including for
    ragged row lengths and for the suffix path."""
    rng = np.random.default_rng(2)
    cache = QuantizedPagedKVCache(num_layers=1, batch=3, block_size=8)
    k = rng.standard_normal((2, 2, 21, 4)).astype(np.float32)
    v = rng.standard_normal((2, 2, 21, 4)).astype(np.float32)
    lens = np.array([21, 11])  # partial fills of 5 and 3
    cache.write_rows(0, k, v, rows=np.array([0, 1]), row_lengths=lens)
    kc, _ = cache._context(0)
    np.testing.assert_array_equal(kc[0, :, 16:21], k[0, :, 16:21])
    np.testing.assert_array_equal(kc[1, :, 8:11], k[1, :, 8:11])
    # Suffix continuation through prefill_rows obeys the same rule.
    ks = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
    kc, _ = cache.prefill_rows(0, ks, ks, rows=np.array([1]),
                               starts=np.array([11]),
                               row_lengths=np.array([4]))
    np.testing.assert_array_equal(kc[0, :, 8:15], np.concatenate(
        [k[1, :, 8:11], ks[0]], axis=1))
