"""Pluggable admission policies: fifo, prefix-affinity, priority."""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import (FIFOScheduler, GenerationEngine,
                         PrefixAffinityScheduler, PriorityScheduler,
                         SamplingParams, Scheduler, get_scheduler)

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=3))


def test_get_scheduler_registry_and_validation():
    assert isinstance(get_scheduler("fifo"), FIFOScheduler)
    assert isinstance(get_scheduler("prefix-affinity"),
                      PrefixAffinityScheduler)
    assert isinstance(get_scheduler("priority"), PriorityScheduler)
    custom = PriorityScheduler()
    assert get_scheduler(custom) is custom
    assert isinstance(custom, Scheduler)  # protocol satisfied
    with pytest.raises(ValueError):
        get_scheduler("shortest-job-first")
    with pytest.raises(TypeError):
        get_scheduler(42)


def test_sampling_params_carry_priority():
    assert SamplingParams().priority == 0
    assert SamplingParams(priority=7).priority == 7


def first_admitted_ids(engine):
    """Request ids of the first admitted wave, in slot order."""
    engine.step()
    return [slot.request.request_id
            for slot in engine._slots if slot is not None]


def test_fifo_admits_in_arrival_order(model):
    engine = GenerationEngine(model, max_batch_size=2, scheduler="fifo")
    ids = [engine.submit(np.array([i + 1, i + 2]), 4) for i in range(4)]
    assert first_admitted_ids(engine) == ids[:2]
    done = {c.request_id: c for c in engine.run()}
    assert set(done) == set(ids)


def test_priority_admits_high_first(model):
    engine = GenerationEngine(model, max_batch_size=1, scheduler="priority")
    low = engine.submit(np.array([1, 2]),
                        params=SamplingParams(max_new_tokens=3, priority=0))
    high = engine.submit(np.array([3, 4]),
                         params=SamplingParams(max_new_tokens=3, priority=5))
    mid = engine.submit(np.array([5, 6]),
                        params=SamplingParams(max_new_tokens=3, priority=2))
    assert first_admitted_ids(engine) == [high]
    done = {c.request_id: c for c in engine.run()}
    assert set(done) == {low, high, mid}
    # Greedy outputs are unaffected by admission order.
    for rid, prompt in ((low, [1, 2]), (high, [3, 4]), (mid, [5, 6])):
        np.testing.assert_array_equal(
            done[rid].tokens,
            model.generate(np.array(prompt), 3, temperature=0.0))


def test_priority_fifo_within_a_level(model):
    engine = GenerationEngine(model, max_batch_size=1, scheduler="priority")
    first = engine.submit(np.array([1, 2]), 3)
    second = engine.submit(np.array([3, 4]), 3)
    assert first_admitted_ids(engine) == [first]
    engine.run()


def test_prefix_affinity_batches_cached_prefix_group(model):
    """With a prefix cached, affinity admits the whole matching group
    ahead of earlier-arrived strangers."""
    rng = np.random.default_rng(0)
    prefix = rng.integers(0, VOCAB, size=32)
    group = [np.concatenate([prefix, rng.integers(0, VOCAB, size=3)])
             for _ in range(2)]
    strangers = [rng.integers(0, VOCAB, size=20) for _ in range(2)]
    engine = GenerationEngine(model, max_batch_size=2,
                              scheduler="prefix-affinity",
                              prefix_sharing=True)
    seed_id = engine.submit(group[0], 2)
    engine.run()  # prefix now cached
    s0 = engine.submit(strangers[0], 3)
    g0 = engine.submit(group[0][:35], 3)
    s1 = engine.submit(strangers[1], 3)
    g1 = engine.submit(group[1], 3)
    admitted = first_admitted_ids(engine)
    assert set(admitted) == {g0, g1}  # the cached-prefix group jumped ahead
    done = {c.request_id: c for c in engine.run()}
    assert set(done) == {s0, s1, g0, g1}
    assert engine.stats.shared_prompt_tokens >= 64


def test_prefix_affinity_without_store_degrades_to_fifo(model):
    engine = GenerationEngine(model, max_batch_size=2,
                              scheduler="prefix-affinity")
    ids = [engine.submit(np.array([i + 1, i + 2]), 3) for i in range(3)]
    assert first_admitted_ids(engine) == ids[:2]
    engine.run()


def test_custom_scheduler_instance(model):
    """Any object satisfying the protocol plugs in: admit newest-first."""

    class LIFOScheduler(FIFOScheduler):
        name = "lifo"

        def select(self, queue, free_slots, view):
            return list(queue)[::-1][:free_slots]

    engine = GenerationEngine(model, max_batch_size=1,
                              scheduler=LIFOScheduler())
    a = engine.submit(np.array([1, 2]), 3)
    b = engine.submit(np.array([3, 4]), 3)
    assert first_admitted_ids(engine) == [b]
    done = {c.request_id: c for c in engine.run()}
    assert set(done) == {a, b}


def test_priority_preemption_under_block_budget(model):
    """With the pool capped, a high-priority arrival preempts the
    lowest-priority running row; the victim restores and both finish
    greedy-exact (including their token budgets)."""
    rng = np.random.default_rng(1)
    low_prompt = rng.integers(0, VOCAB, size=10)
    hi_prompt = rng.integers(0, VOCAB, size=8)
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              block_size=4, scheduler="priority",
                              prefix_sharing=True, max_pool_blocks=24)
    low = engine.submit(low_prompt,
                        params=SamplingParams(max_new_tokens=20, priority=0))
    peer = engine.submit(rng.integers(0, VOCAB, size=6),
                         params=SamplingParams(max_new_tokens=20, priority=1))
    for _ in range(3):
        engine.step()
    hi = engine.submit(hi_prompt,
                       params=SamplingParams(max_new_tokens=6, priority=5))
    done = {c.request_id: c for c in engine.run()}
    stats = engine.stats
    assert stats.preemptions >= 1
    # Per-admission accounting: every admitted token was either adopted
    # from cache or forwarded, restores included.
    assert stats.prompt_tokens == stats.shared_prompt_tokens + stats.prefill_tokens
    assert len(done[low].new_tokens) == 20
    assert len(done[hi].new_tokens) == 6
    np.testing.assert_array_equal(
        done[low].tokens, model.generate(low_prompt, 20, temperature=0.0))
    np.testing.assert_array_equal(
        done[hi].tokens, model.generate(hi_prompt, 6, temperature=0.0))


def test_no_preemption_between_equal_priorities(model):
    """Equal priority never preempts (no ping-pong): the later request
    waits for a free slot."""
    engine = GenerationEngine(model, max_batch_size=1, scheduler="priority",
                              max_pool_blocks=8)
    a = engine.submit(np.array([1, 2, 3]), 6)
    engine.step()
    b = engine.submit(np.array([4, 5]), 4)
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions == 0
    assert set(done) == {a, b}


def test_preempted_sampled_request_stream_is_seamless(model):
    """A sampled (non-greedy) request preserves its private RNG stream
    across preempt/restore: output identical to an uninterrupted run."""
    rng = np.random.default_rng(6)
    prompt = rng.integers(0, VOCAB, size=9)
    params = SamplingParams(max_new_tokens=15, temperature=1.1, top_k=6,
                            seed=99, priority=0)
    solo = GenerationEngine(model, max_batch_size=1)
    sid = solo.submit(prompt, params=params)
    want = {c.request_id: c for c in solo.run()}[sid].tokens

    engine = GenerationEngine(model, max_batch_size=1, scheduler="priority",
                              prefix_sharing=True)
    rid = engine.submit(prompt, params=params)
    for _ in range(5):
        engine.step()
    engine.submit(rng.integers(0, VOCAB, size=4),
                  params=SamplingParams(max_new_tokens=3, priority=9))
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions == 1
    np.testing.assert_array_equal(done[rid].tokens, want)
