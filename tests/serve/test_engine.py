"""Parity and behavior tests for the batched serving engine."""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import (GenerationEngine, bench_prompts, engine_throughput,
                         latency_sweep, sequential_throughput, stream_latency,
                         throughput_sweep)


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=64, seed=3))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(11)
    lengths = [3, 1, 7, 5, 2, 9, 4]
    return [rng.integers(0, 64, size=length) for length in lengths]


def sequential(model, prompts, max_new_tokens):
    return [model.generate(p, max_new_tokens, temperature=0.0)
            for p in prompts]


def test_greedy_parity_uniform_prompts(model):
    prompts = [np.array([1, 2, 3]), np.array([9, 8, 7]), np.array([4, 5, 6])]
    expected = sequential(model, prompts, 8)
    engine = GenerationEngine(model, max_batch_size=len(prompts))
    for got, want in zip(engine.generate_batch(prompts, 8), expected):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("kv_cache", ["paged", "dense"])
def test_greedy_parity_ragged_prompts(model, prompts, kv_cache):
    """Different prompt lengths in one batch must not perturb any output."""
    expected = sequential(model, prompts, 10)
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache=kv_cache)
    for got, want in zip(engine.generate_batch(prompts, 10), expected):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("batch_size", [1, 2, 3])
@pytest.mark.parametrize("kv_cache", ["paged", "dense"])
def test_greedy_parity_continuous_batching(model, prompts, batch_size,
                                           kv_cache):
    """Slot reuse (more requests than slots) preserves every output."""
    expected = sequential(model, prompts, 6)
    engine = GenerationEngine(model, max_batch_size=batch_size,
                              kv_cache=kv_cache)
    for got, want in zip(engine.generate_batch(prompts, 6), expected):
        np.testing.assert_array_equal(got, want)


def test_greedy_parity_paged_small_blocks(model, prompts):
    """Tiny blocks force mid-generation block allocation on every row."""
    expected = sequential(model, prompts, 10)
    engine = GenerationEngine(model, max_batch_size=3, block_size=2)
    for got, want in zip(engine.generate_batch(prompts, 10), expected):
        np.testing.assert_array_equal(got, want)


def test_fineq_cache_exact_within_first_block(model, prompts):
    """Sequences that never leave the FP32 write buffer decode exactly."""
    engine = GenerationEngine(model, max_batch_size=3, kv_cache="fineq",
                              block_size=64)
    expected = sequential(model, prompts, 10)
    for got, want in zip(engine.generate_batch(prompts, 10), expected):
        np.testing.assert_array_equal(got, want)


def test_fineq_ragged_admit_exact_while_rows_stay_in_buffer(model):
    """Regression: admitting ragged prompts together (right-padded past a
    short row's block boundary) must not corrupt the short row.  With all
    of a row's tokens still inside its FP32 buffer, its greedy output is
    bit-exact vs sequential generate."""
    short, long = np.array([1, 2]), np.array([3, 4, 5, 6, 7])
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="fineq",
                              block_size=4)
    got = engine.generate_batch([short, long], 2)
    want = model.generate(short, 2, temperature=0.0)
    np.testing.assert_array_equal(got[0], want)


def test_fineq_cache_serves_past_block_boundaries(model, prompts):
    """Quantized mode: full budgets served, valid tokens, correct prompts."""
    engine = GenerationEngine(model, max_batch_size=3, kv_cache="fineq",
                              block_size=4)
    ids = [engine.submit(p, 12) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt in zip(ids, prompts):
        completion = done[rid]
        assert completion.finish_reason == "length"
        assert len(completion.new_tokens) == 12
        np.testing.assert_array_equal(completion.tokens[:len(prompt)], prompt)
        assert completion.tokens.min() >= 0
        assert completion.tokens.max() < model.config.vocab_size
    assert engine.stats.kv_peak_tokens > 0
    assert engine.stats.bytes_per_cached_token > 0


def test_rejects_unknown_kv_cache_mode(model):
    with pytest.raises(ValueError):
        GenerationEngine(model, kv_cache="hbm3")


def test_parity_mixed_max_new_tokens(model):
    prompts = [np.array([1, 2]), np.array([3, 4, 5]), np.array([6])]
    budgets = [2, 9, 5]
    engine = GenerationEngine(model, max_batch_size=2)
    ids = [engine.submit(p, n) for p, n in zip(prompts, budgets)]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt, budget in zip(ids, prompts, budgets):
        want = model.generate(prompt, budget, temperature=0.0)
        np.testing.assert_array_equal(done[rid].tokens, want)
        assert done[rid].finish_reason == "length"
        assert len(done[rid].new_tokens) == budget


def test_eos_termination(model):
    prompt = np.array([1, 2])
    reference = model.generate(prompt, 8, temperature=0.0)
    eos = int(reference[-1])  # some token the greedy continuation emits
    engine = GenerationEngine(model, max_batch_size=1, eos_token=eos)
    engine.submit(prompt, 8)
    completion = engine.run()[0]
    assert completion.finish_reason == "eos"
    assert completion.tokens[-1] == eos
    # Truncated exactly at the first greedy occurrence of the eos token.
    generated = reference[len(prompt):]
    first = len(prompt) + int(np.argmax(generated == eos)) + 1
    np.testing.assert_array_equal(completion.tokens, reference[:first])


def test_temperature_sampling_reproducible(model, prompts):
    outs = []
    for _ in range(2):
        engine = GenerationEngine(model, max_batch_size=4,
                                  rng=np.random.default_rng(42))
        outs.append(engine.generate_batch(prompts, 8, temperature=1.5))
    for first, second in zip(*outs):
        np.testing.assert_array_equal(first, second)


def test_temperature_zero_rows_stay_greedy_in_mixed_batch(model):
    """Greedy requests are unaffected by sampled neighbours in the batch."""
    prompts = [np.array([1, 2, 3]), np.array([4, 5, 6])]
    engine = GenerationEngine(model, max_batch_size=2,
                              rng=np.random.default_rng(0))
    ids = [engine.submit(prompts[0], 6, temperature=0.0),
           engine.submit(prompts[1], 6, temperature=2.0)]
    done = {c.request_id: c for c in engine.run()}
    want = model.generate(prompts[0], 6, temperature=0.0)
    np.testing.assert_array_equal(done[ids[0]].tokens, want)


def test_stats_token_accounting(model, prompts):
    engine = GenerationEngine(model, max_batch_size=len(prompts))
    engine.generate_batch(prompts, 5)
    assert engine.stats.prefill_tokens == sum(len(p) for p in prompts)
    # One token per sequence comes from the prefill logits.
    assert engine.stats.decode_tokens == len(prompts) * 4
    assert 0.0 < engine.stats.occupancy <= 1.0


def test_run_with_empty_queue(model):
    assert GenerationEngine(model).run() == []


def test_rejects_bad_requests(model):
    engine = GenerationEngine(model)
    with pytest.raises(ValueError):
        engine.submit(np.array([], dtype=np.int64), 4)
    with pytest.raises(ValueError):
        engine.submit(np.array([1]), 0)
    with pytest.raises(ValueError):
        engine.submit(np.zeros(model.config.max_seq_len + 1, dtype=np.int64), 4)


def test_max_seq_len_termination():
    model = TransformerLM(tiny_config(vocab_size=32, seed=1))
    engine = GenerationEngine(model, max_batch_size=1)
    engine.submit(np.array([1, 2, 3]), 10 * model.config.max_seq_len)
    completion = engine.run()[0]
    assert completion.finish_reason == "max_seq_len"
    # Every RoPE position gets used before termination: the last decode
    # writes at max_seq_len - 1 and its sampled token is still emitted.
    assert len(completion.tokens) == model.config.max_seq_len + 1


@pytest.mark.parametrize("kv_cache", ["paged", "dense"])
def test_parity_at_max_seq_len_boundary(kv_cache):
    """The engine matches sequential generate right up to the RoPE limit."""
    model = TransformerLM(tiny_config(vocab_size=32, seed=1))
    prompt = np.array([1, 2, 3, 4])
    budget = model.config.max_seq_len - len(prompt) + 1
    want = model.generate(prompt, budget, temperature=0.0)
    engine = GenerationEngine(model, max_batch_size=1, kv_cache=kv_cache)
    engine.submit(prompt, budget)
    completion = engine.run()[0]
    np.testing.assert_array_equal(completion.tokens, want)


def test_throughput_helpers_run(model):
    prompts = bench_prompts(model.config.vocab_size, num=4, seed=2)
    report = throughput_sweep(model, prompts, max_new_tokens=4,
                              batch_sizes=(1, 2))
    assert report.baseline.decode_tokens_per_s > 0
    assert len(report.points) == 2
    assert len(report.rows()) == 3
    point = engine_throughput(model, prompts, 4, batch_size=2)
    assert point.decode_tokens == 3 * len(prompts)
    base = sequential_throughput(model, prompts, 4)
    assert base.prefill_tokens == sum(len(p) for p in prompts)


def test_stream_latency_helpers_run(model):
    prompts = bench_prompts(model.config.vocab_size, num=4, seed=2)
    point = stream_latency(model, prompts, max_new_tokens=6, batch_size=4)
    # One event per generated token: nothing is dropped or duplicated.
    assert point.num_events == 4 * 6
    assert point.mean_inter_token_s > 0
    assert point.p95_inter_token_s >= point.mean_inter_token_s * 0.5
    assert point.mean_first_token_s > 0
    report = latency_sweep(model, max_new_tokens=4, batch_sizes=(1, 2))
    assert len(report.points) == 2
    assert len(report.rows()) == 2
    payload = report.to_dict()
    assert payload["points"][0]["p95_inter_token_s"] >= 0
