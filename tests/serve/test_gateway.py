"""Durable gateway tests: queue lifecycle, restart recovery, streaming.

The recovery tests are the subsystem's reason to exist: a gateway
killed mid-stream (no graceful stop — the objects are simply abandoned,
as a crash would leave them) must, on reopening the same sqlite
journal, finish every journaled request with a token stream
byte-identical to an uninterrupted run.  Streaming tests drive the real
asyncio path (and the real HTTP/SSE socket) and assert parity with the
bare engine's ``stream()`` on every cache backend.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import (GatewayHTTPServer, GenerationEngine, QueueFullError,
                         RequestQueue, SamplingParams, ServingGateway)


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=256, seed=0))


def make_gateway(model, queue=None, **kwargs):
    engine_kwargs = {k: kwargs.pop(k) for k in
                     ("kv_cache", "max_batch_size", "prefix_sharing")
                     if k in kwargs}
    engine = GenerationEngine(model, **{"max_batch_size": 4,
                                        **engine_kwargs})
    return ServingGateway(engine, queue, **kwargs)


def pump_until_done(gateway, max_steps=10_000):
    steps = 0
    while gateway.queue.depth() > 0:
        gateway.pump()
        steps += 1
        assert steps < max_steps, "gateway failed to drain"


def reference_tokens(model, prompts, max_new_tokens, kv_cache="paged"):
    """What an uninterrupted bare engine generates (greedy)."""
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache=kv_cache)
    for prompt in prompts:
        engine.submit(prompt, max_new_tokens)
    done = {c.request_id: [int(t) for t in c.new_tokens]
            for c in engine.run()}
    return [done[rid] for rid in sorted(done)]


# --------------------------------------------------------------------- #
# the durable queue
# --------------------------------------------------------------------- #
class TestRequestQueue:
    def test_lifecycle(self):
        queue = RequestQueue()
        params = SamplingParams(max_new_tokens=4, seed=7)
        job_id = queue.submit(np.array([1, 2, 3]), params)
        job = queue.get(job_id)
        assert job.status == "queued" and not job.terminal
        assert job.params == params
        np.testing.assert_array_equal(job.prompt, [1, 2, 3])

        queue.mark_running(job_id)
        assert queue.get(job_id).status == "running"
        queue.append_tokens(job_id, [(0, 10), (1, 11)])
        queue.finish(job_id, "length")
        job = queue.get(job_id)
        assert job.terminal and job.status == "completed"
        assert job.finish_reason == "length"
        assert job.tokens == (10, 11)
        assert queue.depth() == 0
        assert queue.counts()["completed"] == 1

    def test_seed_required(self):
        queue = RequestQueue()
        with pytest.raises(ValueError, match="seed"):
            queue.submit(np.array([1]), SamplingParams(max_new_tokens=2))

    def test_append_tokens_idempotent(self):
        queue = RequestQueue()
        job_id = queue.submit(np.array([1]),
                              SamplingParams(max_new_tokens=4, seed=0))
        queue.append_tokens(job_id, [(0, 5), (1, 6)])
        # A recovered dispatch re-journals the replayed prefix: no dupes.
        queue.append_tokens(job_id, [(0, 5), (1, 6), (2, 7)])
        assert queue.tokens(job_id) == [5, 6, 7]

    def test_priority_claim_order(self):
        queue = RequestQueue()
        low = queue.submit(np.array([1]),
                           SamplingParams(max_new_tokens=2, seed=0))
        high = queue.submit(np.array([2]),
                            SamplingParams(max_new_tokens=2, seed=0,
                                           priority=5))
        assert queue.next_queued().job_id == high
        queue.mark_running(high)
        assert queue.next_queued().job_id == low

    def test_terminal_is_sticky(self):
        queue = RequestQueue()
        job_id = queue.submit(np.array([1]),
                              SamplingParams(max_new_tokens=2, seed=0))
        assert queue.cancel(job_id) is True
        assert queue.cancel(job_id) is False
        queue.finish(job_id, "length")  # late completion: no-op
        assert queue.get(job_id).status == "cancelled"
        assert queue.cancel(999) is False

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "journal.sqlite"
        queue = RequestQueue(path)
        job_id = queue.submit(np.array([3, 4]),
                              SamplingParams(max_new_tokens=4, seed=1))
        queue.mark_running(job_id)
        queue.append_tokens(job_id, [(0, 9)])
        queue.close()

        reopened = RequestQueue(path)
        assert reopened.get(job_id).status == "running"
        assert reopened.recover() == [job_id]
        job = reopened.get(job_id)
        assert job.status == "queued" and job.tokens == (9,)


# --------------------------------------------------------------------- #
# gateway pump loop: parity with the bare engine
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["dense", "paged", "fineq"])
def test_pump_matches_bare_engine(model, kv_cache):
    prompts = [np.array([1, 2, 3]), np.array([7, 8]),
               np.array([4, 5, 6, 9])]
    want = reference_tokens(model, prompts, 8, kv_cache)
    gateway = make_gateway(model, kv_cache=kv_cache)
    job_ids = [gateway.submit(p, max_new_tokens=8) for p in prompts]
    pump_until_done(gateway)
    for job_id, expected in zip(job_ids, want):
        job = gateway.queue.get(job_id)
        assert job.status == "completed"
        assert list(job.tokens) == expected


def test_priority_dispatch_order(model):
    gateway = make_gateway(model, max_batch_size=1, max_inflight=1)
    low = gateway.submit(np.array([1, 2]),
                         SamplingParams(max_new_tokens=2, seed=0))
    high = gateway.submit(np.array([3, 4]),
                          SamplingParams(max_new_tokens=2, seed=0,
                                         priority=3))
    gateway.pump()
    assert gateway.queue.get(high).status in ("running", "completed")
    assert gateway.queue.get(low).status == "queued"


# --------------------------------------------------------------------- #
# restart recovery
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_restart_mid_stream_is_byte_identical(model, tmp_path, kv_cache):
    """Kill the gateway mid-generation; the reopened journal finishes
    every request with exactly the uninterrupted run's tokens."""
    path = tmp_path / "journal.sqlite"
    prompts = [np.array([1, 2, 3]), np.array([9, 8, 7, 6]),
               np.array([5, 4])]
    max_new = 12
    want = reference_tokens(model, prompts, max_new, kv_cache)

    first = make_gateway(model, RequestQueue(path), kv_cache=kv_cache)
    job_ids = [first.submit(p, max_new_tokens=max_new) for p in prompts]
    for _ in range(4):  # part-way through generation, then "crash"
        first.pump()
    journaled = {j: first.queue.tokens(j) for j in job_ids}
    assert any(tokens for tokens in journaled.values()), \
        "crash point too early to exercise replay"
    assert all(len(t) < max_new for t in journaled.values()), \
        "crash point too late to exercise recovery"
    first.queue.close()  # abandon without any graceful shutdown

    second = make_gateway(model, RequestQueue(path), kv_cache=kv_cache)
    requeued = second.recover()
    assert set(requeued) | set(second.queue.job_ids("queued")) \
        == set(job_ids)
    pump_until_done(second)
    for job_id, expected in zip(job_ids, want):
        job = second.queue.get(job_id)
        assert job.status == "completed"
        # Byte-identical to the uninterrupted run: the journaled prefix
        # plus the regenerated remainder, no gap, no duplicate.
        assert list(job.tokens) == expected
        assert job.tokens[:len(journaled[job_id])] \
            == tuple(journaled[job_id])


def test_recovered_stream_replays_without_gaps(model, tmp_path):
    """A client attaching after restart sees index 0..n-1 exactly once."""
    path = tmp_path / "journal.sqlite"
    first = make_gateway(model, RequestQueue(path))
    job_id = first.submit(np.array([2, 3, 4]), max_new_tokens=10)
    for _ in range(3):
        first.pump()
    assert first.queue.tokens(job_id), "need journaled tokens pre-crash"
    first.queue.close()

    second = make_gateway(model, RequestQueue(path))

    async def consume():
        await second.start()
        updates = [u async for u in second.stream(job_id)]
        await second.stop()
        return updates

    updates = asyncio.run(consume())
    indices = [u.index for u in updates if u.index is not None]
    assert indices == list(range(10))
    assert updates[-1].finish_reason == "length"
    tokens = [u.token for u in updates if u.index is not None]
    assert tokens == list(second.queue.get(job_id).tokens)


# --------------------------------------------------------------------- #
# async streaming and the HTTP/SSE front door
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["dense", "paged", "fineq"])
def test_sse_stream_matches_bare_engine(model, kv_cache):
    """Tokens streamed over a real HTTP socket == engine.stream()'s."""
    prompt = [1, 2, 3, 4]
    want = reference_tokens(model, [np.array(prompt)], 8, kv_cache)[0]

    async def run():
        gateway = make_gateway(model, kv_cache=kv_cache)
        server = GatewayHTTPServer(gateway)
        await gateway.start()
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            body = json.dumps({"prompt": prompt, "max_new_tokens": 8,
                               "stream": True}).encode()
            writer.write(
                b"POST /v1/generate HTTP/1.1\r\n"
                b"Host: t\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
            await writer.drain()
            raw = await reader.read()
            writer.close()
        finally:
            await server.stop()
            await gateway.stop()
        return raw.decode()

    raw = asyncio.run(run())
    assert "200 OK" in raw and "text/event-stream" in raw
    tokens, done = [], None
    for block in raw.split("\n\n"):
        lines = [line for line in block.splitlines()
                 if line.startswith(("data:", "event:"))]
        if not lines:
            continue
        payload = json.loads([line for line in lines
                              if line.startswith("data:")][0][5:])
        if any(line == "event: done" for line in lines):
            done = payload
        else:
            tokens.append(payload["token"])
    assert tokens == want
    assert done == {"job_id": 1, "finish_reason": "length"}


def test_http_collect_status_cancel_metrics(model):
    async def request(host, port, method, path, body=None):
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body).encode() if body is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n").encode()
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status = int(raw.split(b" ", 2)[1])
        return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])

    async def run():
        gateway = make_gateway(model)
        server = GatewayHTTPServer(gateway)
        await gateway.start()
        await server.start()
        try:
            host, port = server.host, server.port
            status, record = await request(
                host, port, "POST", "/v1/generate",
                {"prompt": [1, 2, 3], "max_new_tokens": 5})
            assert status == 200
            assert record["status"] == "completed"
            assert record["finish_reason"] == "length"
            assert len(record["tokens"]) == 5

            status, got = await request(
                host, port, "GET", f"/v1/requests/{record['job_id']}")
            assert status == 200 and got == record

            status, _ = await request(host, port, "GET",
                                      "/v1/requests/777")
            assert status == 404
            status, err = await request(
                host, port, "DELETE", f"/v1/requests/{record['job_id']}")
            assert status == 409 and "completed" in err["error"]
            status, _ = await request(host, port, "POST", "/v1/generate",
                                      {"prompt": [], "max_new_tokens": 2})
            assert status == 400

            status, metrics = await request(host, port, "GET", "/metrics")
            assert status == 200
            assert metrics["queue"]["jobs_completed"] == 1
            assert metrics["engine"]["decode_tokens"] > 0
            assert metrics["latency"]["first_token_count"] == 1
        finally:
            await server.stop()
            await gateway.stop()

    asyncio.run(run())


def test_http_queue_full_is_429(model):
    async def run():
        gateway = make_gateway(model, max_queue_depth=1)
        server = GatewayHTTPServer(gateway)
        # Engine loop deliberately NOT started: the first job stays
        # queued, so the second submit must bounce.
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            body = json.dumps({"prompt": [1], "max_new_tokens": 2,
                               "stream": True}).encode()
            head = (f"POST /v1/generate HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n").encode()
            writer.write(head + body)
            await writer.drain()
            await reader.readline()  # streaming headers en route
            r2, w2 = await asyncio.open_connection(server.host, server.port)
            w2.write(head + body)
            await w2.drain()
            raw = await r2.read()
            w2.close()
            writer.close()
        finally:
            await server.stop()
        return raw

    raw = asyncio.run(run())
    assert b"429" in raw.split(b"\r\n", 1)[0]
    assert b"Retry-After" in raw
    payload = json.loads(raw.split(b"\r\n\r\n", 1)[1])
    assert payload == {"error": "queue_full", "retriable": True,
                       "detail": payload["detail"]}


# --------------------------------------------------------------------- #
# backpressure and cancellation
# --------------------------------------------------------------------- #
def test_queue_full_never_touches_engine(model):
    gateway = make_gateway(model, max_queue_depth=2)
    gateway.submit(np.array([1]), max_new_tokens=2)
    gateway.submit(np.array([2]), max_new_tokens=2)
    with pytest.raises(QueueFullError):
        gateway.submit(np.array([3]), max_new_tokens=2)
    # Retriable means nothing happened: no journal row, no engine state.
    assert gateway.queue.depth() == 2
    assert gateway.engine.cache is None
    # Depth recedes -> admission reopens.
    pump_until_done(gateway)
    assert gateway.submit(np.array([3]), max_new_tokens=2) == 3


def test_block_budget_backpressures_admission(model):
    """With a tight block pool, dispatch holds jobs in the durable queue
    instead of overcommitting the engine."""
    engine = GenerationEngine(model, max_batch_size=4, kv_cache="paged",
                              block_size=16, max_pool_blocks=4)
    gateway = ServingGateway(engine)
    job_ids = [gateway.submit(np.arange(1, 30), max_new_tokens=4)
               for _ in range(4)]
    gateway.pump()
    statuses = [gateway.queue.get(j).status for j in job_ids]
    assert statuses.count("queued") >= 1, \
        "block budget should defer at least one dispatch"
    pump_until_done(gateway)
    assert all(gateway.queue.get(j).status == "completed"
               for j in job_ids)


def test_cancel_frees_blocks_immediately(model):
    gateway = make_gateway(model, kv_cache="paged", prefix_sharing=False)
    keep = gateway.submit(np.array([1, 2, 3]), max_new_tokens=6)
    drop = gateway.submit(np.array([4, 5, 6]), max_new_tokens=64)
    gateway.pump()
    cache = gateway.engine.cache
    assert cache.cached_tokens > 0
    assert gateway.cancel(drop) is True
    pump_until_done(gateway)
    assert gateway.queue.get(drop).status == "cancelled"
    assert gateway.queue.get(keep).status == "completed"
    # Pool accounting back to baseline: every block came home.
    assert cache.cached_tokens == 0
    assert cache.blocks_in_use() == 0


def test_disconnect_cancels_and_reclaims(model):
    """Closing the last subscriber's stream cancels the job and returns
    its blocks to the pool."""

    async def run():
        gateway = make_gateway(model, kv_cache="paged",
                               prefix_sharing=False)
        await gateway.start()
        job_id = gateway.submit(np.array([1, 2, 3]), max_new_tokens=500)
        stream = gateway.stream(job_id)
        got = []
        async for update in stream:
            got.append(update)
            if len(got) == 3:
                break
        await stream.aclose()  # client disconnect
        await gateway.drain()
        await gateway.stop()
        return gateway, job_id, got

    gateway, job_id, got = asyncio.run(run())
    job = gateway.queue.get(job_id)
    assert job.status == "cancelled"
    assert job.finish_reason == "cancelled"
    # The journal keeps what was streamed before the disconnect.
    assert len(job.tokens) >= len([u for u in got if u.index is not None])
    cache = gateway.engine.cache
    assert cache.cached_tokens == 0
    assert cache.blocks_in_use() == 0


def test_second_subscriber_keeps_job_alive(model):
    """Disconnect only cancels when the *last* subscriber leaves."""

    async def run():
        gateway = make_gateway(model)
        await gateway.start()
        job_id = gateway.submit(np.array([1, 2]), max_new_tokens=8)
        first = gateway.stream(job_id)
        second = gateway.stream(job_id)
        await first.__anext__()
        await second.__anext__()
        await first.aclose()  # one of two: keep going
        tail = [u async for u in second]
        await gateway.stop()
        return gateway.queue.get(job_id), tail

    job, tail = asyncio.run(run())
    assert job.status == "completed"
    assert tail[-1].finish_reason == "length"


def test_metrics_shape(model):
    gateway = make_gateway(model)
    gateway.submit(np.array([1, 2]), max_new_tokens=3)
    pump_until_done(gateway)
    metrics = gateway.metrics()
    assert metrics["engine"] == gateway.engine.stats.to_dict()
    assert metrics["queue"]["depth"] == 0
    assert metrics["queue"]["jobs_completed"] == 1
    assert metrics["latency"]["first_token_p99_s"] >= \
        metrics["latency"]["first_token_p50_s"] >= 0.0
    json.dumps(metrics)  # scrape-able as-is
