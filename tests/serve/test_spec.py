"""Speculative decoding: output parity, rollback accounting, policies.

The acceptance invariants of the draft/verify pipeline: greedy
speculative output is bit-identical to target-only decode on every
cache backend (the drafts only change *how fast* tokens commit, never
*which* tokens), ``"exact"``-policy sampled streams are draw-for-draw
the target-only streams, rejection rollbacks return pool blocks under
refcounts (shared prefixes untouched), and cancel/preempt landing
mid-pipeline reclaim both target and draft cache state.
"""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.nn.paged_kv_cache import PagedKVCache, QuantizedPagedKVCache
from repro.serve import GenerationEngine, SamplingParams, SpeculativeConfig

VOCAB = 64
BACKENDS = ("dense", "paged", "fineq")


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=3))


@pytest.fixture(scope="module")
def draft():
    """Unrelated weights: near-zero acceptance, so every step rolls back."""
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=4))


def prompts_for(seed, lengths=(9, 17, 12)):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, VOCAB, size=length) for length in lengths]


def run_engine(model, prompts, budget, params=None, **kwargs):
    engine = GenerationEngine(model, max_batch_size=len(prompts), **kwargs)
    if params is None:
        ids = [engine.submit(p, budget) for p in prompts]
    else:
        ids = [engine.submit(p, params=params) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    return engine, [done[i].tokens for i in ids]


# ---------------------------------------------------------------------- #
# greedy parity: the draft must never change which tokens are emitted
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", BACKENDS)
@pytest.mark.parametrize("draft_kv", ["dense", "paged"])
def test_greedy_parity_low_acceptance(model, draft, kv_cache, draft_kv):
    """An unrelated draft is wrong almost every step — all-rollback
    traffic — and the emitted stream still equals target-only decode."""
    prompts = prompts_for(5)
    spec = SpeculativeConfig(draft_model=draft, k=3, draft_kv_cache=draft_kv)
    _, plain = run_engine(model, prompts, 24, kv_cache=kv_cache)
    engine, specd = run_engine(model, prompts, 24, kv_cache=kv_cache,
                               speculative=spec)
    assert engine.stats.spec_proposed > 0
    for got, want in zip(specd, plain):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("kv_cache", BACKENDS)
def test_greedy_parity_high_acceptance(model, kv_cache):
    """The model drafting for itself: on the FP32 backends every proposal
    is the target's own argmax, so acceptance is exactly 1.0 and the
    all-commit path (span writes, multi-token emission) carries the
    stream.  The quantized target reads lossy history the FP32 draft does
    not, so its acceptance merely stays positive — parity must hold
    regardless."""
    prompts = prompts_for(6)
    spec = SpeculativeConfig(draft_model=model, k=4)
    _, plain = run_engine(model, prompts, 30, kv_cache=kv_cache)
    engine, specd = run_engine(model, prompts, 30, kv_cache=kv_cache,
                               speculative=spec)
    for got, want in zip(specd, plain):
        np.testing.assert_array_equal(got, want)
    stats = engine.stats
    assert stats.spec_accepted > 0
    if kv_cache != "fineq":
        assert stats.acceptance_rate == 1.0
        # Multi-token commits shrink the step count below token count.
        assert stats.decode_steps < stats.decode_tokens


@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_greedy_parity_under_prefix_sharing(model, draft, kv_cache):
    """Rollback may land on rows whose early blocks are shared with the
    prefix store; refcounted release keeps the shared prefix intact and
    output equal to the same engine run without speculation.  (That is
    the oracle rather than ``model.generate`` because on ``fineq`` a
    prefix adopted from cache already shifts quantization boundaries —
    a pre-existing backend property the draft must simply not alter.)"""
    rng = np.random.default_rng(9)
    system = rng.integers(0, VOCAB, size=24)
    prompts = [np.concatenate([system, rng.integers(0, VOCAB, size=n)])
               for n in (5, 9, 7)]
    spec = SpeculativeConfig(draft_model=draft, k=3)
    _, plain = run_engine(model, prompts, 20, kv_cache=kv_cache,
                          block_size=8, prefix_sharing=True)
    engine, specd = run_engine(model, prompts, 20, kv_cache=kv_cache,
                               block_size=8, prefix_sharing=True,
                               speculative=spec)
    assert engine.stats.shared_prompt_tokens > 0
    for got, want in zip(specd, plain):
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------- #
# sampled streams
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", BACKENDS)
def test_sampled_exact_policy_stream_seed_regression(model, draft, kv_cache):
    """``"exact"`` policy: sampled speculative streams equal target-only
    sampled streams token for token — the emitted stream is a pure
    function of target logits and the request seed, whatever the draft
    proposes."""
    prompts = prompts_for(11)
    params = SamplingParams(max_new_tokens=18, temperature=0.9, top_k=12,
                            seed=123)
    spec = SpeculativeConfig(draft_model=draft, k=3, policy="exact")
    _, plain = run_engine(model, prompts, None, params=params,
                          kv_cache=kv_cache)
    _, specd = run_engine(model, prompts, None, params=params,
                          kv_cache=kv_cache, speculative=spec)
    for got, want in zip(specd, plain):
        np.testing.assert_array_equal(got, want)


def test_leftover_policy_reproducible_and_complete(model, draft):
    """``"leftover"`` consumes RNG on its own schedule, so streams are
    not token-identical to target-only — but the same seeds must replay
    the same streams, and every request still runs to its budget."""
    prompts = prompts_for(13)
    params = SamplingParams(max_new_tokens=16, temperature=1.0, seed=7)
    spec = SpeculativeConfig(draft_model=draft, k=3, policy="leftover")
    _, first = run_engine(model, prompts, None, params=params,
                          kv_cache="paged", speculative=spec)
    _, second = run_engine(model, prompts, None, params=params,
                           kv_cache="paged", speculative=spec)
    for got, want in zip(second, first):
        np.testing.assert_array_equal(got, want)
    for prompt, got in zip(prompts, first):
        assert len(got) == len(prompt) + 16


def test_leftover_policy_greedy_rows_stay_exact(model):
    """Greedy requests under the leftover policy still match target-only
    decode: with temperature 0 the acceptance test is the argmax match."""
    prompts = prompts_for(15)
    spec = SpeculativeConfig(draft_model=model, k=3, policy="leftover")
    _, plain = run_engine(model, prompts, 20, kv_cache="paged")
    _, specd = run_engine(model, prompts, 20, kv_cache="paged",
                          speculative=spec)
    for got, want in zip(specd, plain):
        np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------- #
# cancel / preempt mid-pipeline: pool accounting returns to baseline
# ---------------------------------------------------------------------- #
def assert_pool_drained(cache):
    assert cache.free_blocks() == cache._total_blocks
    for block in range(cache._total_blocks):
        assert cache.block_refcount(block) == 0


@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_cancel_mid_stream_reclaims_target_and_draft_blocks(model, draft,
                                                            kv_cache):
    """Cancelling between speculative steps frees the victim's blocks in
    both the target cache and the paged draft cache; when the session
    drains, every pool block is back on the free list with refcount 0."""
    prompts = prompts_for(17)
    spec = SpeculativeConfig(draft_model=draft, k=3, draft_kv_cache="paged")
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache=kv_cache, block_size=8,
                              speculative=spec)
    ids = [engine.submit(p, 30) for p in prompts]
    for _ in range(4):
        engine.step()
    assert engine.cancel(ids[1])
    done = {c.request_id: c for c in engine.run()}
    assert done[ids[1]].finish_reason == "cancelled"
    assert_pool_drained(engine.cache)
    draft_cache = engine._spec.cache
    assert isinstance(draft_cache, PagedKVCache)
    assert_pool_drained(draft_cache)
    # Cancelled mid-stream but the survivors are still exact (oracle is
    # the same backend without speculation — on fineq the quantized
    # history already diverges from FP32 ``model.generate``).
    _, plain = run_engine(model, prompts, 30, kv_cache=kv_cache,
                          block_size=8)
    for rid, want in zip(ids, plain):
        if rid == ids[1]:
            continue
        np.testing.assert_array_equal(done[rid].tokens, want)


@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_preempt_restore_mid_spec_is_exact_and_reclaims(model, draft,
                                                        kv_cache):
    """A priority arrival preempts a speculatively-decoding victim; the
    victim restores, finishes greedy-exact, and both caches drain."""
    rng = np.random.default_rng(19)
    low_prompt = rng.integers(0, VOCAB, size=10)
    spec = SpeculativeConfig(draft_model=draft, k=3, draft_kv_cache="paged")
    engine = GenerationEngine(model, max_batch_size=1, kv_cache=kv_cache,
                              block_size=8, scheduler="priority",
                              speculative=spec)
    low = engine.submit(low_prompt,
                        params=SamplingParams(max_new_tokens=20, priority=0))
    for _ in range(3):
        engine.step()
    hi = engine.submit(rng.integers(0, VOCAB, size=6),
                       params=SamplingParams(max_new_tokens=6, priority=5))
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions >= 1
    _, plain = run_engine(model, [low_prompt], 20, kv_cache=kv_cache,
                          block_size=8)
    np.testing.assert_array_equal(done[low].tokens, plain[0])
    assert len(done[hi].new_tokens) == 6
    assert_pool_drained(engine.cache)
    assert_pool_drained(engine._spec.cache)


# ---------------------------------------------------------------------- #
# truncate_rows: the rollback primitive itself
# ---------------------------------------------------------------------- #
def fill_row(cache, row, count, seed, heads=2, head_dim=4, start=0):
    """Write ``count`` decode tokens into one row of every layer."""
    rng = np.random.default_rng(seed)
    for pos in range(start, start + count):
        for layer in range(cache.num_layers):
            k = rng.standard_normal((1, heads, 1, head_dim)).astype(
                np.float32)
            v = rng.standard_normal((1, heads, 1, head_dim)).astype(
                np.float32)
            cache.write_token(layer, k, v, np.array([pos]),
                              rows=np.array([row]), gather=False)


def test_truncate_rows_releases_fp32_blocks():
    cache = PagedKVCache(num_layers=2, batch=2, block_size=4)
    fill_row(cache, 0, 11, seed=0)     # 3 blocks: 4 + 4 + 3
    assert cache._total_blocks - cache.free_blocks() == 3
    cache.truncate_rows([0], [5])       # keep 2 blocks (4 + 1)
    assert cache._row_len[0] == 5
    assert cache._blocks_per_row[0] == 2
    assert cache._total_blocks - cache.free_blocks() == 2
    cache.truncate_rows([0], [0])
    assert cache._blocks_per_row[0] == 0
    assert cache.free_blocks() == cache._total_blocks


def test_truncate_rows_honors_shared_refcounts():
    """A block another reader still references survives one row's
    rollback untouched (release drops this row's reference only)."""
    cache = PagedKVCache(num_layers=1, batch=2, block_size=4)
    fill_row(cache, 0, 8, seed=1)       # blocks [b0, b1]
    shared = int(cache._tables[0, 0])
    cache.ref_blocks([shared])          # a second reader (prefix store)
    before_k = cache._pool_k[0][shared].copy()
    cache.truncate_rows([0], [0])
    assert cache.block_refcount(shared) == 1      # still held elsewhere
    np.testing.assert_array_equal(cache._pool_k[0][shared], before_k)
    assert cache._blocks_per_row[0] == 0


def test_truncate_rows_quantized_keeps_buffered_block():
    """Rolling back inside the buffered block (the engine's regime: the
    verify never commits past a quantize boundary it did not fully
    accept) trims lengths without touching pool blocks, and later
    writes continue bitwise as if the rejected tail never happened."""
    cache = QuantizedPagedKVCache(num_layers=1, batch=1, block_size=4)
    mirror = QuantizedPagedKVCache(num_layers=1, batch=1, block_size=4)
    fill_row(cache, 0, 9, seed=2)       # 2 flushed blocks + 1 buffered
    fill_row(mirror, 0, 9, seed=2)
    blocks_before = int(cache._blocks_per_row[0])
    fill_row(cache, 0, 2, seed=3, start=9)    # speculative tail: 9, 10
    cache.truncate_rows([0], [9])             # reject it
    assert cache._row_len[0] == 9
    assert int(cache._blocks_per_row[0]) == blocks_before
    fill_row(cache, 0, 3, seed=4, start=9)    # accepted continuation
    fill_row(mirror, 0, 3, seed=4, start=9)   # never speculated
    np.testing.assert_array_equal(cache._buf_k[0][0], mirror._buf_k[0][0])
    np.testing.assert_array_equal(cache._buf_v[0][0], mirror._buf_v[0][0])
    k_got, v_got = cache._context(0)
    k_want, v_want = mirror._context(0)
    np.testing.assert_array_equal(k_got, k_want)
    np.testing.assert_array_equal(v_got, v_want)


def test_truncate_rows_quantized_snapshot_restores_buffer():
    """Direct callers rolling below a flush boundary must pass the
    snapshot taken before the writes; the buffered block is restored
    from it exactly."""
    cache = QuantizedPagedKVCache(num_layers=1, batch=1, block_size=4)
    fill_row(cache, 0, 6, seed=5)             # 1 flushed block + 2 buffered
    snap = cache.snapshot_rows([0])
    fill_row(cache, 0, 4, seed=6, start=6)    # crosses the 8-token boundary
    assert int(cache._blocks_per_row[0]) == 2  # second block flushed
    cache.truncate_rows([0], [6], snapshot=snap)
    assert cache._row_len[0] == 6
    assert int(cache._blocks_per_row[0]) == 1
    np.testing.assert_array_equal(cache._buf_k[0][0], snap[0]["buf_k"][0])
    np.testing.assert_array_equal(cache._buf_v[0][0], snap[0]["buf_v"][0])
    # The released flushed block is back on the free list.
    assert cache._total_blocks - cache.free_blocks() == 1


def test_truncate_rows_quantized_invalidates_dequant_memo(model, draft):
    """A fineq speculative session with heavy rollback never serves a
    stale dequantized block: stats stay consistent and a fresh request
    after the churn still decodes greedy-exact."""
    prompts = prompts_for(21)
    spec = SpeculativeConfig(draft_model=draft, k=3)
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache="fineq", block_size=8,
                              speculative=spec)
    for p in prompts:
        engine.submit(p, 24)
    engine.run()
    late = prompts_for(22, lengths=(14,))[0]
    rid = engine.submit(late, 16)
    done = {c.request_id: c for c in engine.run()}
    np.testing.assert_array_equal(
        done[rid].tokens,
        GenerationEngine(model, max_batch_size=1, kv_cache="fineq",
                         block_size=8).generate_batch([late], 16)[0])
    assert_pool_drained(engine.cache)


# ---------------------------------------------------------------------- #
# stats / trace surface
# ---------------------------------------------------------------------- #
def test_spec_stats_and_trace_fields(model, draft):
    prompts = prompts_for(23)
    spec = SpeculativeConfig(draft_model=model, k=3)
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache="paged", record_trace=True,
                              speculative=spec)
    for p in prompts:
        engine.submit(p, 16)
    engine.run()
    stats = engine.stats
    assert stats.spec_proposed > 0
    assert 0.0 < stats.acceptance_rate <= 1.0
    spec_steps = [t for t in engine.trace
                  if t.prefill_tokens == 0 and t.spec_proposed > 0]
    assert spec_steps
    decode_tokens = sum(t.tokens for t in engine.trace
                        if t.prefill_tokens == 0)
    assert decode_tokens == stats.decode_tokens
    for step in spec_steps:
        assert step.spec_accepted <= step.spec_proposed
        assert step.spec_verify_tokens >= step.rows
        assert step.spec_draft_tokens >= step.spec_proposed
