"""Tests for the request-centric session API: SamplingParams, step/stream,
mid-flight submission, cancellation, and per-request RNG streams."""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import (GenerationEngine, SamplingParams, TokenEvent,
                         apply_top_k_top_p)


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=64, seed=3))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(11)
    lengths = [3, 1, 7, 5, 2]
    return [rng.integers(0, 64, size=length) for length in lengths]


# ---------------------------------------------------------------------- #
# session parity (acceptance criterion)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["paged", "dense"])
def test_session_parity_with_midflight_submit_and_cancel(model, kv_cache):
    """Greedy output through submit+step is token-identical to sequential
    generate — including with a mid-flight submission and a cancelled
    neighbour row sharing the batch."""
    prompts = [np.array([1, 2, 3]), np.array([9, 8]),
               np.array([4, 5, 6, 7]), np.array([2, 2])]
    budgets = [10, 12, 8, 9]
    engine = GenerationEngine(model, max_batch_size=3, kv_cache=kv_cache)
    ids = [engine.submit(prompts[0], budgets[0]),
           engine.submit(prompts[1], budgets[1]),   # the victim
           engine.submit(prompts[2], budgets[2])]
    events = []
    steps = 0
    while engine.has_work():
        events += engine.step()
        steps += 1
        if steps == 2:
            assert engine.cancel(ids[1])
            ids.append(engine.submit(prompts[3], budgets[3]))
    done = {c.request_id: c for c in engine.take_completions()}
    for j in (0, 2, 3):
        want = model.generate(prompts[j], budgets[j], temperature=0.0)
        np.testing.assert_array_equal(done[ids[j]].tokens, want)
        assert done[ids[j]].finish_reason == "length"
    assert done[ids[1]].finish_reason == "cancelled"
    assert TokenEvent(ids[1], None, "cancelled") in events


def test_stream_events_concatenate_to_wrapper_tokens(model, prompts):
    """stream() yields exactly the tokens the wrapper path reports."""
    engine = GenerationEngine(model, max_batch_size=3)
    ids = [engine.submit(p, 7) for p in prompts]
    per_request = {rid: [] for rid in ids}
    finish = {}
    for event in engine.stream():
        assert event.token is not None
        per_request[event.request_id].append(event.token)
        if event.finish_reason is not None:
            finish[event.request_id] = event.finish_reason
    done = {c.request_id: c for c in engine.take_completions()}
    wrapper = GenerationEngine(model, max_batch_size=3) \
        .generate_batch(prompts, 7)
    for rid, want in zip(ids, wrapper):
        np.testing.assert_array_equal(done[rid].tokens, want)
        np.testing.assert_array_equal(np.asarray(per_request[rid]),
                                      done[rid].new_tokens)
        assert finish[rid] == done[rid].finish_reason == "length"


def test_submit_during_stream_iteration(model):
    engine = GenerationEngine(model, max_batch_size=2)
    first = engine.submit(np.array([1, 2, 3]), 6)
    added = None
    seen = 0
    for _event in engine.stream():
        seen += 1
        if seen == 2 and added is None:
            added = engine.submit(np.array([7, 8]), 4)
    done = {c.request_id: c for c in engine.take_completions()}
    np.testing.assert_array_equal(
        done[first].tokens, model.generate(np.array([1, 2, 3]), 6,
                                           temperature=0.0))
    np.testing.assert_array_equal(
        done[added].tokens, model.generate(np.array([7, 8]), 4,
                                           temperature=0.0))


def test_stream_on_empty_engine_yields_nothing(model):
    assert list(GenerationEngine(model).stream()) == []


@pytest.mark.parametrize("kv_cache", ["paged", "fineq", "dense"])
def test_session_read_width_tracks_live_rows(model, kv_cache):
    """Retiring the longest row trims the cache's read width, so a
    persistent session stops paying the historical high-water mark."""
    engine = GenerationEngine(model, max_batch_size=2, kv_cache=kv_cache)
    engine.submit(np.array([1, 2, 3]), 30)
    engine.run()
    assert engine.cache.seq_len == 0  # all rows retired -> fully trimmed
    short = engine.submit(np.array([4, 5]), 4)
    done = {c.request_id: c for c in engine.run()}
    assert engine.cache.seq_len <= 6  # prompt + 4 generated, not 33
    if kv_cache != "fineq":
        want = model.generate(np.array([4, 5]), 4, temperature=0.0)
        np.testing.assert_array_equal(done[short].tokens, want)


def test_generate_batch_preserves_foreign_completions(model):
    """A wrapper call must not swallow completions of earlier requests
    whose results were streamed but never taken."""
    engine = GenerationEngine(model, max_batch_size=2)
    earlier = engine.submit(np.array([1, 2, 3]), 5)
    for _event in engine.stream():
        pass  # finished, but take_completions() deliberately not called
    tokens = engine.generate_batch([np.array([4, 5])], 4)
    np.testing.assert_array_equal(
        tokens[0], model.generate(np.array([4, 5]), 4, temperature=0.0))
    leftover = {c.request_id: c for c in engine.take_completions()}
    np.testing.assert_array_equal(
        leftover[earlier].tokens,
        model.generate(np.array([1, 2, 3]), 5, temperature=0.0))


# ---------------------------------------------------------------------- #
# cancellation
# ---------------------------------------------------------------------- #
def test_cancel_returns_blocks_to_pool(model):
    engine = GenerationEngine(model, max_batch_size=2, kv_cache="paged",
                              block_size=2)
    keeper = engine.submit(np.array([1, 2, 3]), 12)
    victim = engine.submit(np.array([4, 5, 6, 7, 8]), 12)
    for _ in range(3):
        engine.step()
    cache = engine.cache
    in_use_before = cache.blocks_in_use()
    free_before = cache.free_blocks()
    assert engine.cancel(victim)
    freed = cache.free_blocks() - free_before
    assert freed > 0
    assert cache.blocks_in_use() == in_use_before - freed
    events = engine.step()
    assert events[0] == TokenEvent(victim, None, "cancelled")
    done = {c.request_id: c for c in engine.run()}
    assert done[victim].finish_reason == "cancelled"
    # The cancelled partial output still carries its prompt.
    np.testing.assert_array_equal(done[victim].tokens[:5],
                                  np.array([4, 5, 6, 7, 8]))
    # The surviving neighbour is unperturbed.
    want = model.generate(np.array([1, 2, 3]), 12, temperature=0.0)
    np.testing.assert_array_equal(done[keeper].tokens, want)


def test_cancel_queued_request(model):
    engine = GenerationEngine(model, max_batch_size=1)
    kept = engine.submit(np.array([1, 2]), 4)
    queued = engine.submit(np.array([3, 4]), 4)  # waits behind `kept`
    assert engine.cancel(queued)
    done = {c.request_id: c for c in engine.run()}
    assert done[queued].finish_reason == "cancelled"
    assert len(done[queued].tokens) == 2  # prompt only, nothing generated
    want = model.generate(np.array([1, 2]), 4, temperature=0.0)
    np.testing.assert_array_equal(done[kept].tokens, want)
    # Finished or unknown ids are not cancellable.
    assert engine.cancel(kept) is False
    assert engine.cancel(999) is False


# ---------------------------------------------------------------------- #
# stop tokens
# ---------------------------------------------------------------------- #
def test_stop_tokens_terminate_mid_generation(model):
    prompt = np.array([1, 2])
    reference = model.generate(prompt, 10, temperature=0.0)
    stop = int(reference[len(prompt) + 4])  # emitted mid-continuation
    engine = GenerationEngine(model, max_batch_size=1)
    engine.submit(prompt, params=SamplingParams(max_new_tokens=10,
                                                stop_tokens=(stop,)))
    completion = engine.run()[0]
    assert completion.finish_reason == "stop"
    assert completion.tokens[-1] == stop
    assert len(completion.new_tokens) < 10
    generated = reference[len(prompt):]
    first = int(np.argmax(generated == stop))
    np.testing.assert_array_equal(completion.tokens,
                                  reference[:len(prompt) + first + 1])


# ---------------------------------------------------------------------- #
# sampling params
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_top_k_1_matches_greedy(model, prompts, kv_cache):
    greedy = GenerationEngine(model, max_batch_size=3, kv_cache=kv_cache) \
        .generate_batch(prompts, 8)
    engine = GenerationEngine(model, max_batch_size=3, kv_cache=kv_cache)
    ids = [engine.submit(p, params=SamplingParams(max_new_tokens=8,
                                                  temperature=0.7,
                                                  top_k=1, seed=11))
           for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    for rid, want in zip(ids, greedy):
        np.testing.assert_array_equal(done[rid].tokens, want)


def test_per_request_seed_independent_of_batch_composition(model):
    """Identical request -> identical sample stream, alone or crowded."""
    prompt = np.array([5, 6, 7])
    params = SamplingParams(max_new_tokens=10, temperature=1.3,
                            top_k=8, top_p=0.9, seed=123)
    solo = GenerationEngine(model, max_batch_size=1)
    sid = solo.submit(prompt, params=params)
    solo_tokens = {c.request_id: c for c in solo.run()}[sid].tokens

    crowd = GenerationEngine(model, max_batch_size=3)
    crowd.submit(np.array([9, 1]),
                 params=SamplingParams(max_new_tokens=12, temperature=2.0,
                                       seed=7))
    rid = crowd.submit(prompt, params=params)
    crowd.submit(np.array([2, 2, 2, 2]),
                 params=SamplingParams(max_new_tokens=5, temperature=0.8,
                                       top_k=4, seed=99))
    crowd_tokens = {c.request_id: c for c in crowd.run()}[rid].tokens
    np.testing.assert_array_equal(crowd_tokens, solo_tokens)


def test_engine_seeded_requests_reproducible_across_engines(model, prompts):
    """seed=None requests draw seeds from the engine stream: two engines
    seeded alike and fed alike sample alike."""
    outs = []
    for _ in range(2):
        engine = GenerationEngine(model, max_batch_size=4,
                                  rng=np.random.default_rng(42))
        ids = [engine.submit(p, params=SamplingParams(max_new_tokens=8,
                                                      temperature=1.5,
                                                      top_p=0.95))
               for p in prompts]
        done = {c.request_id: c for c in engine.run()}
        outs.append([done[rid].tokens for rid in ids])
    for first, second in zip(*outs):
        np.testing.assert_array_equal(first, second)


def test_sampling_params_validation():
    with pytest.raises(ValueError):
        SamplingParams(max_new_tokens=0)
    with pytest.raises(ValueError):
        SamplingParams(temperature=-0.1)
    with pytest.raises(ValueError):
        SamplingParams(top_k=0)
    with pytest.raises(ValueError):
        SamplingParams(top_p=0.0)
    with pytest.raises(ValueError):
        SamplingParams(top_p=1.5)
    assert SamplingParams(stop_tokens=[3, np.int64(4)]).stop_tokens == (3, 4)
    assert SamplingParams().greedy
    assert SamplingParams(temperature=0.5, top_k=1).greedy
    assert not SamplingParams(temperature=0.5).greedy


def test_submit_validates_params_usage(model):
    engine = GenerationEngine(model)
    with pytest.raises(ValueError):
        engine.submit(np.array([1]))  # neither shorthand nor params
    with pytest.raises(ValueError):
        engine.submit(np.array([1]), 4, params=SamplingParams())  # both


def test_request_compat_fields(model):
    engine = GenerationEngine(model, max_batch_size=1)
    engine.submit(np.array([1]), 4, temperature=0.5)
    request = engine._queue[0]
    assert request.max_new_tokens == 4
    assert request.temperature == 0.5


# ---------------------------------------------------------------------- #
# top-k / top-p masking (unit level)
# ---------------------------------------------------------------------- #
def test_apply_top_k_masks_per_row():
    logits = np.array([[0.0, 1.0, 2.0, 3.0], [3.0, 2.0, 1.0, 0.0]])
    out = apply_top_k_top_p(logits, np.array([2, 1]), np.array([1.0, 1.0]))
    np.testing.assert_array_equal(out[0], [-np.inf, -np.inf, 2.0, 3.0])
    np.testing.assert_array_equal(out[1], [3.0, -np.inf, -np.inf, -np.inf])


def test_apply_top_p_keeps_minimal_nucleus():
    logits = np.log(np.array([[0.5, 0.3, 0.15, 0.05]]))
    out = apply_top_k_top_p(logits, np.array([4]), np.array([0.6]))
    assert np.isfinite(out[0, :2]).all()      # 0.5 + 0.3 reach 0.6
    assert np.isinf(out[0, 2:]).all()
    # A tiny nucleus still keeps the most likely token.
    out = apply_top_k_top_p(logits, np.array([4]), np.array([0.01]))
    assert np.isfinite(out[0, 0])
    assert np.isinf(out[0, 1:]).all()
    # Disabled filters return the input untouched.
    np.testing.assert_array_equal(
        apply_top_k_top_p(logits, np.array([4]), np.array([1.0])), logits)


def test_sampled_tokens_stay_inside_top_k(model):
    """End to end: a top-k=2 request only ever emits argmax or runner-up.

    Each continuation token is checked against a teacher-forced forward
    over its prefix: it must be one of that step's two highest logits.
    The hot temperature guarantees the filter is load-bearing, and the
    same seeded run must also be deterministic."""
    prompt = np.array([3, 1, 4])
    params = SamplingParams(max_new_tokens=12, temperature=1.5, top_k=2,
                            seed=5)
    runs = []
    for _ in range(2):
        engine = GenerationEngine(model, max_batch_size=1)
        rid = engine.submit(prompt, params=params)
        runs.append({c.request_id: c for c in engine.run()}[rid].tokens)
    np.testing.assert_array_equal(runs[0], runs[1])
    tokens = runs[0]
    for t in range(len(prompt), len(tokens)):
        logits = model(tokens[None, :t]).data[0, -1]
        top2 = set(np.argsort(logits)[-2:].tolist())
        assert int(tokens[t]) in top2


# ---------------------------------------------------------------------- #
# idle-slot sub-batch decode
# ---------------------------------------------------------------------- #
class _WidthSpy:
    """Model wrapper recording the batch width of every decode forward."""

    def __init__(self, model):
        self._model = model
        self.config = model.config
        self.decode_widths = []

    def __call__(self, tokens, **kwargs):
        if tokens.shape[1] == 1:
            self.decode_widths.append(tokens.shape[0])
        return self._model(tokens, **kwargs)


def test_decode_forwards_only_active_rows(model):
    spy = _WidthSpy(model)
    engine = GenerationEngine(spy, max_batch_size=4)
    engine.submit(np.array([1, 2, 3]), 6)
    engine.submit(np.array([4, 5]), 2)
    engine.run()
    # Two active rows while both live, one after the short request ends;
    # the two idle slots are never forwarded.
    assert spy.decode_widths == [2, 1, 1, 1, 1]
    # Occupancy still counts all four session slots as the denominator.
    stats = engine.stats
    assert stats.decode_slot_steps == 5 * 4
    assert stats.decode_tokens == 6
    assert stats.occupancy == pytest.approx(6 / 20)


@pytest.mark.parametrize("kv_cache", ["paged", "fineq", "dense"])
def test_subbatch_decode_serves_all_backends(model, prompts, kv_cache):
    """Ragged budgets leave idle slots mid-run on every backend."""
    budgets = [3, 9, 5, 7, 4]
    engine = GenerationEngine(model, max_batch_size=len(prompts),
                              kv_cache=kv_cache, block_size=4)
    ids = [engine.submit(p, n) for p, n in zip(prompts, budgets)]
    done = {c.request_id: c for c in engine.run()}
    for rid, prompt, budget in zip(ids, prompts, budgets):
        assert len(done[rid].new_tokens) == budget
        np.testing.assert_array_equal(done[rid].tokens[:len(prompt)], prompt)
        if kv_cache != "fineq":
            want = model.generate(prompt, budget, temperature=0.0)
            np.testing.assert_array_equal(done[rid].tokens, want)
