"""Chunked prefill: one-shot parity, interleaving, budget arbitration,
mid-prefill cancel/preempt, prefix sharing, and the mask-LRU bound."""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import GenerationEngine, SamplingParams, Scheduler

VOCAB = 64


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=3))


@pytest.fixture(scope="module")
def long_model():
    """Tiny dims but a RoPE table long enough for multi-chunk prompts."""
    return TransformerLM(tiny_config(vocab_size=VOCAB, seed=3,
                                     max_seq_len=512))


def run_greedy(model, prompts, budget, **kwargs):
    engine = GenerationEngine(model, max_batch_size=len(prompts), **kwargs)
    ids = [engine.submit(p, budget) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    return engine, [done[i].tokens for i in ids]


# ---------------------------------------------------------------------- #
# chunked output == one-shot output, token for token
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kv_cache", ["dense", "paged", "fineq"])
def test_chunked_matches_oneshot_ragged_batch(long_model, kv_cache):
    """Greedy outputs are identical whether prompts prefill in one shot
    or in chunks, across a ragged batch with multi-chunk prompts."""
    rng = np.random.default_rng(5)
    prompts = [rng.integers(0, VOCAB, size=n) for n in (200, 150, 9, 33)]
    _, oneshot = run_greedy(long_model, prompts, 24, kv_cache=kv_cache,
                            prefill_chunk_tokens=None)
    chunked_engine, chunked = run_greedy(long_model, prompts, 24,
                                         kv_cache=kv_cache,
                                         prefill_chunk_tokens=48)
    assert chunked_engine.stats.prefill_chunks > len(prompts)
    for got, want in zip(chunked, oneshot):
        np.testing.assert_array_equal(got, want)


def test_chunked_matches_oneshot_mid_decode_arrival(long_model):
    """The mixed-traffic acceptance shape: a long prompt lands while
    short requests are mid-decode; chunked and one-shot engines must
    produce identical streams, and chunked paged output still equals the
    sequential reference."""
    rng = np.random.default_rng(7)
    shorts = [rng.integers(0, VOCAB, size=n) for n in (9, 14, 17)]
    long_prompt = rng.integers(0, VOCAB, size=260)
    outputs = {}
    for chunk in (None, 64):
        engine = GenerationEngine(long_model, max_batch_size=4,
                                  kv_cache="paged",
                                  prefill_chunk_tokens=chunk)
        ids = [engine.submit(p, 30) for p in shorts]
        for _ in range(3):
            engine.step()
        ids.append(engine.submit(long_prompt, 30))
        done = {c.request_id: c for c in engine.run()}
        outputs[chunk] = [done[i].tokens for i in ids]
    for got, want in zip(outputs[64], outputs[None]):
        np.testing.assert_array_equal(got, want)
    for prompt, got in zip(shorts + [long_prompt], outputs[64]):
        np.testing.assert_array_equal(
            got, long_model.generate(prompt, 30, temperature=0.0))


def test_decode_streams_between_chunks(long_model):
    """While a long prompt drains chunk by chunk, decoding rows keep
    emitting tokens every step — the latency bound chunking buys."""
    rng = np.random.default_rng(9)
    engine = GenerationEngine(long_model, max_batch_size=3,
                              kv_cache="paged", prefill_chunk_tokens=32)
    short_ids = [engine.submit(rng.integers(0, VOCAB, size=8), 40)
                 for _ in range(2)]
    engine.step()
    long_id = engine.submit(rng.integers(0, VOCAB, size=200), 8)
    interleaved_steps = 0
    while engine.has_work():
        events = engine.step()
        if engine.num_prefilling:
            assert {e.request_id for e in events} <= set(short_ids)
            if any(e.request_id in short_ids for e in events):
                interleaved_steps += 1
    # 200 tokens at 32/step leave >= 5 prefilling steps, each of which
    # still advanced the decoding shorts.
    assert interleaved_steps >= 5
    assert engine.stats.prefill_chunks >= 7
    done = {c.request_id: c for c in engine.run() + engine.take_completions()}
    assert long_id in done or not engine.has_work()


# ---------------------------------------------------------------------- #
# budget arbitration and accounting
# ---------------------------------------------------------------------- #
def test_priority_order_drains_high_priority_prompt_first(long_model):
    """Under the priority policy the chunk budget feeds the
    high-priority prefill first, so its first token lands earlier."""
    rng = np.random.default_rng(11)
    first_token_step = {}
    engine = GenerationEngine(long_model, max_batch_size=2,
                              scheduler="priority",
                              prefill_chunk_tokens=64)
    low = engine.submit(rng.integers(0, VOCAB, size=150),
                        params=SamplingParams(max_new_tokens=4, priority=0))
    high = engine.submit(rng.integers(0, VOCAB, size=150),
                         params=SamplingParams(max_new_tokens=4, priority=5))
    step = 0
    while engine.has_work():
        step += 1
        for event in engine.step():
            first_token_step.setdefault(event.request_id, step)
    assert first_token_step[high] < first_token_step[low]
    assert engine.stats.prefill_tokens_deferred > 0


def test_chunk_accounting_and_invariant(long_model):
    rng = np.random.default_rng(13)
    prompts = [rng.integers(0, VOCAB, size=n) for n in (190, 40)]
    engine, _ = run_greedy(long_model, prompts, 6, kv_cache="fineq",
                           prefill_chunk_tokens=50)
    stats = engine.stats
    assert stats.prefill_chunks >= 5      # 190 alone needs 4 chunks
    assert stats.prefill_tokens_deferred > 0
    assert stats.prefill_tokens == 230
    assert stats.prompt_tokens == \
        stats.shared_prompt_tokens + stats.prefill_tokens
    assert 0.0 <= stats.prefill_dequant_hit_rate <= 1.0


def test_custom_scheduler_without_prefill_order_falls_back(long_model):
    """Pre-existing duck-typed policies (no prefill_order method) keep
    working: the engine falls back to arrival order."""

    class BareScheduler:
        name = "bare"

        def select(self, queue, free_slots, view):
            return list(queue[:free_slots])

        def preempt(self, queue, view):
            return []

        def victims_for_blocks(self, view, needed_blocks):
            return []

    assert isinstance(BareScheduler(), Scheduler)
    rng = np.random.default_rng(15)
    prompt = rng.integers(0, VOCAB, size=140)
    engine = GenerationEngine(long_model, max_batch_size=2,
                              scheduler=BareScheduler(),
                              prefill_chunk_tokens=48)
    rid = engine.submit(prompt, 6)
    done = {c.request_id: c for c in engine.run()}
    np.testing.assert_array_equal(
        done[rid].tokens, long_model.generate(prompt, 6, temperature=0.0))


def test_invalid_chunk_budget_rejected(model):
    with pytest.raises(ValueError):
        GenerationEngine(model, prefill_chunk_tokens=0)


# ---------------------------------------------------------------------- #
# mid-prefill cancel and preempt/restore
# ---------------------------------------------------------------------- #
def test_mid_prefill_cancel_frees_slot(long_model):
    rng = np.random.default_rng(17)
    engine = GenerationEngine(long_model, max_batch_size=1,
                              kv_cache="paged", prefill_chunk_tokens=32)
    victim = engine.submit(rng.integers(0, VOCAB, size=180), 8)
    engine.step()
    assert engine.num_prefilling == 1
    assert engine.cancel(victim)
    follow_prompt = rng.integers(0, VOCAB, size=12)
    follow = engine.submit(follow_prompt, 5)
    done = {c.request_id: c for c in engine.run()}
    assert done[victim].finish_reason == "cancelled"
    assert len(done[victim].new_tokens) == 0
    np.testing.assert_array_equal(
        done[follow].tokens,
        long_model.generate(follow_prompt, 5, temperature=0.0))


def test_mid_prefill_preempt_and_restore(long_model):
    """A higher-priority arrival preempts a row still writing its
    prompt; the victim restores and finishes greedy-exact."""
    rng = np.random.default_rng(19)
    low_prompt = rng.integers(0, VOCAB, size=170)
    hi_prompt = rng.integers(0, VOCAB, size=10)
    engine = GenerationEngine(long_model, max_batch_size=1,
                              scheduler="priority", prefix_sharing=True,
                              prefill_chunk_tokens=32)
    low = engine.submit(low_prompt,
                        params=SamplingParams(max_new_tokens=5, priority=0))
    for _ in range(2):
        engine.step()
    assert engine.num_prefilling == 1  # 170 tokens, 32/step: still writing
    hi = engine.submit(hi_prompt,
                       params=SamplingParams(max_new_tokens=4, priority=9))
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.preemptions >= 1
    np.testing.assert_array_equal(
        done[hi].tokens, long_model.generate(hi_prompt, 4, temperature=0.0))
    np.testing.assert_array_equal(
        done[low].tokens, long_model.generate(low_prompt, 5, temperature=0.0))


# ---------------------------------------------------------------------- #
# prefix sharing under chunked prefill
# ---------------------------------------------------------------------- #
def test_shared_prefix_waits_for_chunked_capture(long_model):
    """A same-prefix burst defers behind the representative's chunked
    prefill and then adopts the captured prefix instead of redundantly
    prefilling alongside it."""
    rng = np.random.default_rng(21)
    prefix = rng.integers(0, VOCAB, size=120)
    prompts = [np.concatenate([prefix, rng.integers(0, VOCAB, size=4)])
               for _ in range(2)]
    engine = GenerationEngine(long_model, max_batch_size=2,
                              kv_cache="paged", prefix_sharing=True,
                              prefill_chunk_tokens=40)
    ids = [engine.submit(p, 6) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    assert engine.stats.shared_prompt_tokens >= 112  # whole shared blocks
    for rid, prompt in zip(ids, prompts):
        np.testing.assert_array_equal(
            done[rid].tokens,
            long_model.generate(prompt, 6, temperature=0.0))


def test_fineq_chunked_prefill_hits_dequant_cache(long_model):
    """The acceptance criterion: chunked fineq prefill re-reads context
    through the dequant memo — later chunks (and shared-prefix suffix
    prefills) hit blocks earlier chunks already dequantized."""
    rng = np.random.default_rng(23)
    prefix = rng.integers(0, VOCAB, size=140)
    prompts = [np.concatenate([prefix, rng.integers(0, VOCAB, size=6)])
               for _ in range(3)]
    engine, _ = run_greedy(long_model, prompts, 4, kv_cache="fineq",
                           prefix_sharing=True, prefill_chunk_tokens=48)
    stats = engine.stats
    assert stats.prefill_dequant_hits > 0
    assert stats.prefill_dequant_hit_rate > 0.0


# ---------------------------------------------------------------------- #
# satellite: the causal-mask LRU stays bounded under chunk shape churn
# ---------------------------------------------------------------------- #
def test_mask_cache_stays_bounded_across_chunked_run(long_model):
    from repro.nn.attention import _MASK_CACHE, _MASK_CACHE_LIMIT

    rng = np.random.default_rng(25)
    prompts = [rng.integers(0, VOCAB, size=n) for n in (210, 97, 33, 150)]
    run_greedy(long_model, prompts, 12, kv_cache="paged",
               prefill_chunk_tokens=16)
    assert len(_MASK_CACHE) <= _MASK_CACHE_LIMIT
