"""Engine-level block-resident decode: regression against the gather
path, bounded decode scratch, and the streamed-bytes trace."""

import numpy as np
import pytest

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import GenerationEngine, StepTrace


@pytest.fixture(scope="module")
def model():
    return TransformerLM(tiny_config(vocab_size=64, seed=3))


@pytest.fixture(scope="module")
def long_model():
    """Tiny dims but a RoPE table long enough for multi-chunk contexts."""
    return TransformerLM(tiny_config(vocab_size=64, seed=3,
                                     max_seq_len=512))


def run_greedy(model, prompts, budget, **kwargs):
    engine = GenerationEngine(model, max_batch_size=len(prompts), **kwargs)
    ids = [engine.submit(p, budget) for p in prompts]
    done = {c.request_id: c for c in engine.run()}
    return engine, [done[i].tokens for i in ids]


@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_block_decode_tokens_identical_to_gather_path(model, kv_cache):
    """Regression pinned against the pre-change read path: the same
    engine with block_decode=False *is* the old gather decode (its reads
    go through the old ``_context``), and greedy output must not move."""
    rng = np.random.default_rng(5)
    prompts = [rng.integers(0, 64, size=length) for length in (9, 17, 33)]
    _, gather = run_greedy(model, prompts, 40, kv_cache=kv_cache,
                           block_decode=False)
    _, block = run_greedy(model, prompts, 40, kv_cache=kv_cache,
                          block_decode=True)
    for got, want in zip(block, gather):
        np.testing.assert_array_equal(got, want)


def test_multi_chunk_paged_parity_with_sequential_generate(long_model):
    """Greedy parity holds when contexts span several chunks (the
    streamed value accumulation regime)."""
    rng = np.random.default_rng(7)
    prompts = [rng.integers(0, 64, size=length) for length in (200, 150)]
    engine, tokens = run_greedy(long_model, prompts, 60, kv_cache="paged",
                                block_size=16)
    cache = engine.cache
    assert cache.chunk_blocks * cache.block_size < 260  # multi-chunk for sure
    for prompt, got in zip(prompts, tokens):
        want = long_model.generate(prompt, 60, temperature=0.0)
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("kv_cache", ["paged", "fineq"])
def test_no_dense_materialization_on_long_context_decode(long_model,
                                                         kv_cache):
    """The acceptance counter: beyond one chunk window, decode scratch
    stays a small constant instead of the dense gather's
    (batch, heads, total, head_dim) copies."""
    rng = np.random.default_rng(11)
    prompts = [rng.integers(0, 64, size=300) for _ in range(2)]
    engine, _ = run_greedy(long_model, prompts, 8, kv_cache=kv_cache,
                           block_size=16)
    config = long_model.config
    total = 300 + 8 - 1  # the deepest decode step's context width
    dense = 2 * len(prompts) * config.num_heads * total \
        * (config.d_model // config.num_heads) * 4
    scratch = engine.stats.decode_peak_scratch_bytes
    assert 0 < scratch < dense
    assert engine.stats.decode_bytes_not_gathered > 0
    # The gather engine records the dense copies it really made.
    gather_engine, _ = run_greedy(long_model, prompts, 8, kv_cache=kv_cache,
                                  block_size=16, block_decode=False)
    assert gather_engine.stats.decode_peak_scratch_bytes >= dense
    assert scratch < gather_engine.stats.decode_peak_scratch_bytes


def test_fineq_dequant_stats_and_streamed_trace(model):
    """The dequant memo's hit rate surfaces in EngineStats, and traces
    carry post-cache streamed bytes the hw projection consumes."""
    rng = np.random.default_rng(13)
    prompts = [rng.integers(0, 64, size=20) for _ in range(3)]
    engine, _ = run_greedy(model, prompts, 24, kv_cache="fineq",
                           record_trace=True)
    stats = engine.stats
    assert stats.dequant_cache_hits > 0
    assert 0.0 < stats.dequant_cache_hit_rate <= 1.0
    assert engine.trace
    for step in engine.trace:
        assert isinstance(step, StepTrace)
        assert 0 <= step.kv_bytes_streamed <= step.kv_bytes

    from repro.hw.workloads import project_decode_trace
    streamed = project_decode_trace(model.config, engine.trace)
    logical = project_decode_trace(
        model.config, [s[:3] for s in engine.trace])
    assert streamed.kv_dma_cycles <= logical.kv_dma_cycles
    # Traces carry decode steps and prefill-chunk steps; the chunk
    # records are flagged by prefill_tokens and cover exactly the
    # forwarded prefill work.
    assert streamed.tokens == logical.tokens \
        == stats.decode_tokens + stats.prefill_tokens
    decode_only = project_decode_trace(
        model.config, [s for s in engine.trace if s.prefill_tokens == 0])
    assert decode_only.tokens == stats.decode_tokens


def test_dequant_cache_disabled_engine_round_trips(long_model):
    """dequant_cache_bytes=0 serves identical greedy tokens (pure
    re-dequantization through the block path, no memo).  The context
    spans several chunks so the block reads genuinely run."""
    rng = np.random.default_rng(17)
    prompts = [rng.integers(0, 64, size=140) for _ in range(2)]
    off_engine, off = run_greedy(long_model, prompts, 16, kv_cache="fineq",
                                 dequant_cache_bytes=0)
    _, on = run_greedy(long_model, prompts, 16, kv_cache="fineq")
    for got, want in zip(off, on):
        np.testing.assert_array_equal(got, want)
    assert off_engine.stats.dequant_cache_hits == 0
    assert off_engine.stats.dequant_cache_misses > 0


def test_sampled_decode_unchanged_by_read_path(model):
    """Sampling draws depend only on logits + private RNG; the block
    path must leave sampled streams untouched too."""
    from repro.serve import SamplingParams
    rng = np.random.default_rng(19)
    prompt = rng.integers(0, 64, size=10)
    params = SamplingParams(max_new_tokens=20, temperature=0.9, top_k=12,
                            seed=123)
    outs = []
    for block in (False, True):
        engine = GenerationEngine(model, max_batch_size=1, kv_cache="fineq",
                                  block_decode=block)
        engine.submit(prompt, params=params)
        outs.append(engine.run()[0].tokens)
    np.testing.assert_array_equal(outs[0], outs[1])
