"""Corpus, tokenizer, and loader tests."""

import numpy as np
import pytest

from repro.data import (generate_corpus, CORPUS_NAMES, WordTokenizer,
                        BatchLoader, split_stream)
from repro.data.tokenizer import SPECIALS


def test_corpora_deterministic():
    for name in CORPUS_NAMES:
        a = generate_corpus(name, 100, seed=3)
        b = generate_corpus(name, 100, seed=3)
        assert a == b


def test_corpora_differ_by_seed():
    a = generate_corpus("wikitext-sim", 100, seed=1)
    b = generate_corpus("wikitext-sim", 100, seed=2)
    assert a != b


def test_corpora_have_distinct_styles():
    wiki = set(generate_corpus("wikitext-sim", 500, seed=0))
    c4 = set(generate_corpus("c4-sim", 500, seed=0))
    assert "subscribe" in c4 and "subscribe" not in wiki
    assert "=" in wiki  # section headings


def test_unknown_corpus_rejected():
    with pytest.raises(ValueError):
        generate_corpus("pile-sim", 10)


def test_tokenizer_specials_first():
    tok = WordTokenizer.train([["a", "b", "a"]], vocab_size=8)
    assert tuple(tok.vocab[:4]) == SPECIALS


def test_tokenizer_roundtrip_known_words():
    tok = WordTokenizer.train([["alpha", "beta", "alpha"]], vocab_size=8)
    ids = tok.encode(["alpha", "beta"])
    assert tok.decode(ids) == ["alpha", "beta"]


def test_tokenizer_unk_for_oov():
    tok = WordTokenizer.train([["alpha"]], vocab_size=5)
    ids = tok.encode(["gamma"])
    assert ids[0] == tok.unk_id


def test_tokenizer_vocab_budget():
    words = [f"w{i}" for i in range(100)]
    tok = WordTokenizer.train([words], vocab_size=20)
    assert len(tok) == 20


def test_tokenizer_coverage():
    tok = WordTokenizer.train([["a", "b"]], vocab_size=6)
    assert tok.coverage(["a", "b"]) == 1.0
    assert tok.coverage(["a", "z"]) == 0.5


def test_tokenizer_deterministic_tie_break():
    tok1 = WordTokenizer.train([["b", "a"]], vocab_size=6)
    tok2 = WordTokenizer.train([["a", "b"]], vocab_size=6)
    assert tok1.vocab == tok2.vocab


def test_split_stream():
    train, val = split_stream(np.arange(100), val_fraction=0.1)
    assert len(train) == 90 and len(val) == 10
    with pytest.raises(ValueError):
        split_stream(np.arange(3), val_fraction=0.0)


def test_loader_targets_are_shifted_inputs():
    stream = np.arange(1000)
    loader = BatchLoader(stream, batch_size=4, seq_len=16)
    inputs, targets = next(iter(loader.epoch(0)))
    assert inputs.shape == (4, 16)
    np.testing.assert_array_equal(inputs[:, 1:], targets[:, :-1])


def test_loader_epoch_deterministic():
    stream = np.arange(1000)
    loader = BatchLoader(stream, batch_size=4, seq_len=16, seed=7)
    first = [i.copy() for i, _ in loader.epoch(3)]
    second = [i.copy() for i, _ in loader.epoch(3)]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)


def test_loader_epochs_reshuffle():
    stream = np.arange(2000)
    loader = BatchLoader(stream, batch_size=4, seq_len=16, seed=7)
    first = next(iter(loader.epoch(0)))[0]
    second = next(iter(loader.epoch(1)))[0]
    assert not np.array_equal(first, second)


def test_loader_too_short_stream():
    with pytest.raises(ValueError):
        BatchLoader(np.arange(10), batch_size=1, seq_len=32)


def test_loader_forever_cycles():
    stream = np.arange(200)
    loader = BatchLoader(stream, batch_size=2, seq_len=16)
    batches = loader.forever()
    for _ in range(3 * loader.batches_per_epoch):
        inputs, _ = next(batches)
        assert inputs.shape[1] == 16
