"""Vocabulary helper tests."""

import numpy as np

from repro.data.vocab import zipf_choice, proper_noun, ADJECTIVES


def test_zipf_choice_skews_to_head():
    rng = np.random.default_rng(0)
    samples = zipf_choice(rng, ADJECTIVES, 5000)
    counts = {word: samples.count(word) for word in set(samples)}
    head = counts.get(ADJECTIVES[0], 0)
    tail = counts.get(ADJECTIVES[-1], 0)
    assert head > 3 * max(tail, 1)


def test_zipf_choice_deterministic_per_seed():
    a = zipf_choice(np.random.default_rng(7), ADJECTIVES, 50)
    b = zipf_choice(np.random.default_rng(7), ADJECTIVES, 50)
    assert a == b


def test_proper_noun_composition():
    rng = np.random.default_rng(1)
    names = {proper_noun(rng) for _ in range(50)}
    assert len(names) > 20          # combinatorial variety
    assert all(name.islower() and name.isalpha() for name in names)
