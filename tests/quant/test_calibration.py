"""Calibration machinery tests."""

import numpy as np
import pytest

from repro.quant import GPTQQuantizer, sequential_quantize
from repro.quant.calibration import (calibration_batches, collect_layer_inputs,
                                     input_hessian)
from repro.eval.harness import clone_model


def test_calibration_batches_shape():
    stream = np.arange(10_000) % 100
    batches = calibration_batches(stream, num_tokens=1024, seq_len=64)
    assert batches.shape == (16, 64)


def test_collect_layer_inputs_all_layers(tiny_model):
    batches = np.random.default_rng(0).integers(
        0, tiny_model.config.vocab_size, size=(2, 32))
    inputs = collect_layer_inputs(tiny_model, batches)
    expected = {name for name, _ in tiny_model.quantizable_linears()}
    assert set(inputs) == expected
    for name, layer in tiny_model.quantizable_linears():
        assert inputs[name].shape == (64, layer.in_features)


def test_collect_restores_forward(tiny_model):
    batches = np.zeros((1, 4), dtype=np.int64)
    collect_layer_inputs(tiny_model, batches)
    for _, layer in tiny_model.quantizable_linears():
        assert "forward" not in vars(layer)


def test_input_hessian_positive_definite():
    inputs = np.random.default_rng(0).standard_normal((64, 24))
    hessian = input_hessian(inputs)
    eigenvalues = np.linalg.eigvalsh(hessian)
    assert eigenvalues.min() > 0


def test_input_hessian_damping_scales_with_diag():
    inputs = np.random.default_rng(0).standard_normal((64, 8)) * 100
    hessian = input_hessian(inputs, damping=0.01)
    assert np.isfinite(hessian).all()


def test_sequential_quantize_covers_all_layers(tiny_model):
    work = clone_model(tiny_model)
    batches = np.random.default_rng(1).integers(
        0, work.config.vocab_size, size=(2, 32))
    report = sequential_quantize(work, GPTQQuantizer(bits=4), batches)
    expected = {name for name, _ in work.quantizable_linears()}
    assert set(report.records) == expected
    # Weights actually changed.
    changed = sum(
        not np.allclose(layer.weight.data,
                        dict(tiny_model.quantizable_linears())[name].weight.data)
        for name, layer in work.quantizable_linears())
    assert changed == len(expected)


def test_sequential_quantize_sets_records(tiny_model):
    work = clone_model(tiny_model)
    batches = np.zeros((1, 8), dtype=np.int64)
    sequential_quantize(work, GPTQQuantizer(bits=4), batches)
    for _, layer in work.quantizable_linears():
        assert layer.quant_record is not None
        assert layer.quant_record.method == "gptq"
