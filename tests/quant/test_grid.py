"""Quantization grid tests (paper Eq. 1 and asymmetric variant)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.grid import (symmetric_quantize, asymmetric_quantize,
                              symmetric_grid_size, dequantize_asymmetric,
                              asymmetric_params, quantize_with_params)


def test_symmetric_grid_sizes():
    assert symmetric_grid_size(2) == 1
    assert symmetric_grid_size(3) == 3
    assert symmetric_grid_size(8) == 127
    with pytest.raises(ValueError):
        symmetric_grid_size(1)


def test_eq1_scale_definition():
    weight = np.array([[0.27, -0.09, 0.18]])
    _, codes, scale = symmetric_quantize(weight, bits=3, axis=0)
    assert np.isclose(scale[0, 0], 0.27 / 3)
    assert codes.max() <= 3 and codes.min() >= -3


def test_symmetric_per_tensor_vs_per_row():
    weight = np.array([[1.0, 0.5], [100.0, 50.0]])
    per_tensor, _, _ = symmetric_quantize(weight, bits=2, axis=None)
    per_row, _, _ = symmetric_quantize(weight, bits=2, axis=0)
    # Per-tensor scale is blown by row 2; per-row adapts.
    err_tensor = np.abs(per_tensor - weight).sum()
    err_row = np.abs(per_row - weight).sum()
    assert err_row < err_tensor


def test_symmetric_zero_matrix_safe():
    dequantized, codes, _ = symmetric_quantize(np.zeros((3, 4)), bits=2)
    assert (dequantized == 0).all() and (codes == 0).all()


def test_asymmetric_roundtrip_of_grid_points():
    gen = np.random.default_rng(0)
    scale = 0.1
    codes = gen.integers(0, 4, size=(5, 8))
    weight = (codes - 1) * scale
    dequantized, _, _, _ = asymmetric_quantize(weight, bits=2, axis=0)
    np.testing.assert_allclose(dequantized, weight, atol=1e-7)


def test_asymmetric_codes_within_levels():
    gen = np.random.default_rng(1)
    weight = gen.standard_normal((6, 50))
    _, codes, _, _ = asymmetric_quantize(weight, bits=2, axis=0)
    assert codes.min() >= 0 and codes.max() <= 3


def test_dequantize_asymmetric_inverse():
    gen = np.random.default_rng(2)
    weight = gen.standard_normal((4, 32))
    dequantized, codes, scale, zero = asymmetric_quantize(weight, bits=4)
    np.testing.assert_allclose(
        dequantize_asymmetric(codes, scale, zero), dequantized, atol=1e-6)


def test_quantize_with_params_matches_fresh_grid():
    gen = np.random.default_rng(3)
    weight = gen.standard_normal((4, 16))
    scale, zero = asymmetric_params(weight, bits=2, axis=0)
    via_params = quantize_with_params(weight, scale, zero, bits=2)
    direct, _, _, _ = asymmetric_quantize(weight, bits=2, axis=0)
    np.testing.assert_allclose(via_params, direct, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(bits=st.integers(2, 8), seed=st.integers(0, 1000))
def test_symmetric_error_bounded_by_half_step(bits, seed):
    weight = np.random.default_rng(seed).standard_normal((3, 17))
    dequantized, _, scale = symmetric_quantize(weight, bits=bits, axis=0)
    assert (np.abs(dequantized - weight) <= scale / 2 + 1e-9).all()


@settings(max_examples=40, deadline=None)
@given(bits=st.integers(1, 8), seed=st.integers(0, 1000))
def test_asymmetric_error_bounded_by_half_step(bits, seed):
    weight = np.random.default_rng(seed).standard_normal((3, 17))
    dequantized, _, scale, _ = asymmetric_quantize(weight, bits=bits, axis=0)
    assert (np.abs(dequantized - weight) <= scale / 2 + 1e-9).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000))
def test_more_bits_never_hurt(seed):
    weight = np.random.default_rng(seed).standard_normal((4, 30))
    errors = []
    for bits in (2, 3, 4, 8):
        dequantized, _, _ = symmetric_quantize(weight, bits=bits, axis=0)
        errors.append(float(((dequantized - weight) ** 2).sum()))
    assert errors == sorted(errors, reverse=True)
