"""QuantRecord / ModelQuantReport accounting tests."""

import numpy as np

from repro.quant.base import QuantRecord, ModelQuantReport


def make_record(method="x", payload=2.0, meta=0.33, shape=(4, 6)):
    return QuantRecord(method=method, bits_payload=payload,
                       bits_metadata=meta, weight_shape=shape)


def test_avg_bits_is_sum():
    record = make_record(payload=2.0, meta=0.5)
    assert record.avg_bits == 2.5


def test_report_weighted_average():
    records = {
        "a": make_record(payload=2.0, meta=0.0, shape=(10, 10)),   # 100 w
        "b": make_record(payload=4.0, meta=0.0, shape=(30, 10)),   # 300 w
    }
    report = ModelQuantReport(method="x", records=records)
    expected = (2.0 * 100 + 4.0 * 300) / 400
    assert np.isclose(report.avg_bits, expected)


def test_report_total_bytes():
    records = {"a": make_record(payload=8.0, meta=0.0, shape=(2, 2))}
    report = ModelQuantReport(method="x", records=records)
    assert report.total_bytes() == 4  # 4 weights x 8 bits


def test_empty_report():
    report = ModelQuantReport(method="x", records={})
    assert report.avg_bits == 0.0
