"""Registry tests: every paper method is constructible by name."""

import pytest

from repro.quant import get_quantizer, available_methods, register
from repro.quant.base import Quantizer


def test_all_paper_methods_available():
    methods = available_methods()
    for name in ("uniform", "rtn", "gptq", "pb-llm", "owq", "fineq"):
        assert name in methods


def test_get_quantizer_with_kwargs():
    quantizer = get_quantizer("rtn", bits=3)
    assert quantizer.bits == 3


def test_fineq_lazily_registered():
    quantizer = get_quantizer("fineq")
    assert quantizer.name == "fineq"


def test_unknown_method_raises():
    with pytest.raises(KeyError, match="unknown quantizer"):
        get_quantizer("awq-missing")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):
        register("rtn", lambda: None)


def test_quantizer_interface(gaussian_weight):
    for name in ("uniform", "rtn", "fineq"):
        quantizer = get_quantizer(name)
        assert isinstance(quantizer, Quantizer)
        dequantized, record = quantizer.quantize_weight(gaussian_weight)
        assert dequantized.shape == gaussian_weight.shape
        assert record.avg_bits > 0
