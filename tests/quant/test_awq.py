"""AWQ baseline tests."""

import numpy as np
import pytest

from repro.quant import get_quantizer
from repro.quant.awq import AWQQuantizer


def test_awq_registered():
    assert get_quantizer("awq").name == "awq"


def test_awq_scales_protect_salient_channels():
    """Channels with large activations quantize more accurately."""
    gen = np.random.default_rng(0)
    weight = gen.standard_normal((64, 128)) * 0.05
    inputs = gen.standard_normal((256, 128))
    inputs[:, :8] *= 20.0  # activation-salient channels

    aware, _ = AWQQuantizer(bits=2, alpha=1.0).quantize_weight(
        weight, inputs=inputs)
    blind, _ = AWQQuantizer(bits=2, alpha=0.0).quantize_weight(
        weight, inputs=inputs)

    def loss(dq):
        return float((((weight - dq) @ inputs.T) ** 2).sum())

    assert loss(aware) < loss(blind)


def test_awq_without_calibration_degenerates_to_grouped_rtn():
    gen = np.random.default_rng(1)
    weight = gen.standard_normal((32, 64))
    dequantized, record = AWQQuantizer(bits=4).quantize_weight(weight)
    assert np.isfinite(dequantized).all()
    assert record.detail["alpha"] == 0.5


def test_awq_alpha_validation():
    with pytest.raises(ValueError):
        AWQQuantizer(alpha=1.5)


def test_awq_high_bits_near_lossless():
    weight = np.random.default_rng(2).standard_normal((16, 32))
    inputs = np.random.default_rng(3).standard_normal((64, 32))
    dequantized, _ = AWQQuantizer(bits=8).quantize_weight(weight,
                                                          inputs=inputs)
    rel = ((dequantized - weight) ** 2).sum() / (weight ** 2).sum()
    assert rel < 1e-3
