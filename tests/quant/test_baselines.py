"""Behavioural tests for the five baseline quantizers."""

import numpy as np
import pytest

from repro.quant import (UniformQuantizer, RTNQuantizer, GPTQQuantizer,
                         PBLLMQuantizer, OWQQuantizer)


# --------------------------------------------------------------------- #
# Uniform
# --------------------------------------------------------------------- #
def test_uniform_record(gaussian_weight):
    dequantized, record = UniformQuantizer(bits=2).quantize_weight(gaussian_weight)
    assert record.bits_payload == 2.0
    assert record.bits_metadata < 0.01
    assert dequantized.shape == gaussian_weight.shape


def test_uniform_blown_by_outlier_columns(gaussian_weight):
    """Per-tensor grids collapse the Gaussian bulk to zero."""
    dequantized, _ = UniformQuantizer(bits=2).quantize_weight(gaussian_weight)
    bulk = np.abs(gaussian_weight) < 0.2
    assert (dequantized[bulk] == 0).mean() > 0.95


def test_uniform_rejects_bits_below_2():
    with pytest.raises(ValueError):
        UniformQuantizer(bits=1)


# --------------------------------------------------------------------- #
# RTN
# --------------------------------------------------------------------- #
def test_rtn_uses_per_row_grid(gaussian_weight):
    dequantized, record = RTNQuantizer(bits=2).quantize_weight(gaussian_weight)
    assert record.bits_payload == 2.0
    # Per-row asymmetric grid: each row has at most 4 distinct values.
    for row in dequantized:
        assert len(np.unique(row)) <= 4


def test_rtn_better_than_uniform(gaussian_weight):
    uniform, _ = UniformQuantizer(bits=2).quantize_weight(gaussian_weight)
    rtn, _ = RTNQuantizer(bits=2).quantize_weight(gaussian_weight)
    err = lambda d: float(((d - gaussian_weight) ** 2).sum())
    assert err(rtn) < err(uniform)


def test_rtn_high_bits_near_lossless(gaussian_weight):
    dequantized, _ = RTNQuantizer(bits=8).quantize_weight(gaussian_weight)
    rel = (((dequantized - gaussian_weight) ** 2).sum()
           / (gaussian_weight ** 2).sum())
    assert rel < 1e-3


# --------------------------------------------------------------------- #
# GPTQ
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def calibration_inputs():
    return np.random.default_rng(11).standard_normal((512, 120))


def test_gptq_requires_calibration(gaussian_weight):
    with pytest.raises(ValueError):
        GPTQQuantizer(bits=2).quantize_weight(gaussian_weight)


def test_gptq_beats_rtn_on_task_loss(gaussian_weight, calibration_inputs):
    """GPTQ minimises ||WX - QX||; it must beat RTN on that metric."""
    gptq, _ = GPTQQuantizer(bits=2).quantize_weight(
        gaussian_weight, inputs=calibration_inputs)
    rtn, _ = RTNQuantizer(bits=2).quantize_weight(gaussian_weight)
    x = calibration_inputs.T
    gptq_loss = ((gaussian_weight @ x - gptq @ x) ** 2).sum()
    rtn_loss = ((gaussian_weight @ x - rtn @ x) ** 2).sum()
    assert gptq_loss < rtn_loss


def test_gptq_act_order_runs(gaussian_weight, calibration_inputs):
    dequantized, record = GPTQQuantizer(bits=2, act_order=True).quantize_weight(
        gaussian_weight, inputs=calibration_inputs)
    assert dequantized.shape == gaussian_weight.shape
    assert record.detail["act_order"] is True


def test_gptq_few_samples_stable(gaussian_weight):
    inputs = np.random.default_rng(0).standard_normal((8, 120))
    dequantized, _ = GPTQQuantizer(bits=2).quantize_weight(
        gaussian_weight, inputs=inputs)
    assert np.isfinite(dequantized).all()


# --------------------------------------------------------------------- #
# PB-LLM
# --------------------------------------------------------------------- #
def test_pbllm_salient_preserved_exactly(gaussian_weight):
    quantizer = PBLLMQuantizer(salient_fraction=0.1)
    dequantized, record = quantizer.quantize_weight(gaussian_weight)
    k = int(round(0.1 * gaussian_weight.size))
    flat = np.abs(gaussian_weight).reshape(-1)
    threshold = np.partition(flat, flat.size - k)[flat.size - k]
    salient = np.abs(gaussian_weight) >= threshold
    np.testing.assert_allclose(dequantized[salient], gaussian_weight[salient],
                               rtol=1e-6)
    assert np.isclose(record.detail["salient_fraction"], 0.1, atol=0.01)


def test_pbllm_binarizes_remainder(gaussian_weight):
    dequantized, _ = PBLLMQuantizer(salient_fraction=0.1).quantize_weight(
        gaussian_weight)
    # Non-salient entries per row take at most 2 magnitudes (+/- scale).
    flat = np.abs(gaussian_weight).reshape(-1)
    k = int(round(0.1 * gaussian_weight.size))
    threshold = np.partition(flat, flat.size - k)[flat.size - k]
    non_salient = np.abs(gaussian_weight) < threshold
    for i in range(gaussian_weight.shape[0]):
        row_vals = np.unique(np.abs(dequantized[i][non_salient[i]]))
        assert len(row_vals) <= 2


def test_pbllm_paper_convention_bits(gaussian_weight):
    _, record = PBLLMQuantizer().quantize_weight(gaussian_weight)
    assert np.isclose(record.detail["paper_convention_bits"], 2.7)


def test_pbllm_fraction_validation():
    with pytest.raises(ValueError):
        PBLLMQuantizer(salient_fraction=1.5)


# --------------------------------------------------------------------- #
# OWQ
# --------------------------------------------------------------------- #
def test_owq_weak_columns_exact(gaussian_weight, calibration_inputs):
    quantizer = OWQQuantizer(weak_fraction=0.05)
    dequantized, record = quantizer.quantize_weight(
        gaussian_weight, inputs=calibration_inputs)
    weak = record.detail["weak_columns"]
    assert weak == max(1, int(round(0.05 * gaussian_weight.shape[1])))
    # The planted outlier columns must be among the protected ones.
    norms = (gaussian_weight ** 2).sum(axis=0)
    planted = set(np.argsort(-norms)[:3])
    exact_cols = {j for j in range(gaussian_weight.shape[1])
                  if np.allclose(dequantized[:, j], gaussian_weight[:, j])}
    assert planted <= exact_cols


def test_owq_paper_convention_bits(gaussian_weight, calibration_inputs):
    _, record = OWQQuantizer(group_size=128).quantize_weight(
        gaussian_weight, inputs=calibration_inputs)
    assert np.isclose(record.detail["paper_convention_bits"], 2.25)


def test_owq_without_calibration_falls_back_to_norms(gaussian_weight):
    dequantized, _ = OWQQuantizer().quantize_weight(gaussian_weight)
    assert np.isfinite(dequantized).all()
