"""Integration: quantizing whole models through the base interface."""

import numpy as np
import pytest

from repro.eval.harness import clone_model
from repro.quant import get_quantizer
from repro.quant.base import ModelQuantReport


def test_quantize_model_in_place(tiny_model):
    work = clone_model(tiny_model)
    report = get_quantizer("fineq").quantize_model(work)
    assert isinstance(report, ModelQuantReport)
    assert len(report.records) == len(work.quantizable_linears())
    assert 2.3 < report.avg_bits < 2.7


def test_quantize_model_attaches_records(tiny_model):
    work = clone_model(tiny_model)
    get_quantizer("rtn", bits=2).quantize_model(work)
    for _, layer in work.quantizable_linears():
        assert layer.quant_record.method == "rtn"


def test_calibration_required_error(tiny_model):
    work = clone_model(tiny_model)
    with pytest.raises(ValueError, match="calibration"):
        get_quantizer("gptq").quantize_model(work)


def test_embeddings_and_head_untouched(tiny_model):
    work = clone_model(tiny_model)
    get_quantizer("uniform", bits=2).quantize_model(work)
    np.testing.assert_array_equal(work.embed.weight.data,
                                  tiny_model.embed.weight.data)
    np.testing.assert_array_equal(work.head.weight.data,
                                  tiny_model.head.weight.data)


def test_total_bytes_positive(tiny_model):
    work = clone_model(tiny_model)
    report = get_quantizer("fineq").quantize_model(work)
    fp16_bytes = sum(layer.weight.size * 2
                     for _, layer in work.quantizable_linears())
    assert 0 < report.total_bytes() < fp16_bytes / 4
