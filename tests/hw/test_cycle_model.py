"""Cycle-level pipeline model tests."""

import numpy as np
import pytest

from repro.hw.cycle_model import (PipelineConfig, simulate_gemm,
                                  FINEQ_BITS_PER_WEIGHT)
from repro.hw.workloads import GEMMShape


SHAPE = GEMMShape("ffn.up", m=512, k=128, n=128)


def test_fineq_bits_constant_is_paper_layout():
    assert np.isclose(FINEQ_BITS_PER_WEIGHT, 7 * 8 / 24)


def test_baseline_stages_positive():
    report = simulate_gemm(SHAPE, "baseline")
    assert report.stage_cycles["decode"] == 0
    for stage, cycles in report.stage_cycles.items():
        if stage != "decode":
            assert cycles > 0, stage


def test_fineq_dma_lighter_than_baseline():
    baseline = simulate_gemm(SHAPE, "baseline")
    fineq = simulate_gemm(SHAPE, "fineq")
    assert fineq.stage_cycles["dma_in"] < baseline.stage_cycles["dma_in"]
    assert fineq.stage_cycles["decode"] > 0


def test_fineq_matmul_cycles_between_1x_and_3x_baseline():
    baseline = simulate_gemm(SHAPE, "baseline")
    fineq = simulate_gemm(SHAPE, "fineq")
    assert (baseline.stage_cycles["matmul"]
            <= fineq.stage_cycles["matmul"]
            <= 3 * baseline.stage_cycles["matmul"])


def test_exact_code_path_matches_range():
    gen = np.random.default_rng(0)
    mags = gen.integers(0, 2, size=(SHAPE.m, SHAPE.k))  # all-2-bit codes
    report = simulate_gemm(SHAPE, "fineq", code_magnitudes=mags)
    baseline = simulate_gemm(SHAPE, "baseline")
    # All magnitudes <= 1: temporal matmul should cost ~1 cycle per row.
    assert report.stage_cycles["matmul"] == baseline.stage_cycles["matmul"]


def test_outlier_ratio_increases_matmul_cycles():
    low = simulate_gemm(SHAPE, "fineq", outlier_cluster_ratio=0.01)
    high = simulate_gemm(SHAPE, "fineq", outlier_cluster_ratio=0.5)
    assert high.stage_cycles["matmul"] > low.stage_cycles["matmul"]


def test_total_cycles_at_least_bottleneck():
    report = simulate_gemm(SHAPE, "baseline")
    assert report.total_cycles >= max(report.stage_cycles.values())


def test_unknown_design_rejected():
    with pytest.raises(ValueError):
        simulate_gemm(SHAPE, "tpu")


def test_runtime_scales_with_clock():
    report = simulate_gemm(SHAPE, "baseline")
    assert report.runtime_us(400) * 2 == pytest.approx(report.runtime_us(200))
