"""Area/power model: Table III calibration and scaling behaviour."""

import numpy as np
import pytest

from repro.hw.area_power import (AreaPowerModel, TABLE3_REFERENCE,
                                 FIG8_POWER_SPLIT)


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel()


def test_systolic_matches_table3(model):
    block = model.systolic_array(64, 64)
    assert np.isclose(block.area_mm2,
                      TABLE3_REFERENCE["systolic_array"]["area_mm2"], rtol=1e-6)
    assert np.isclose(block.power_mw,
                      TABLE3_REFERENCE["systolic_array"]["power_mw"], rtol=1e-6)


def test_fineq_array_matches_table3(model):
    block = model.fineq_pe_array(64, 64)
    assert np.isclose(block.area_mm2,
                      TABLE3_REFERENCE["fineq_pe_array"]["area_mm2"], rtol=1e-6)
    assert np.isclose(block.power_mw,
                      TABLE3_REFERENCE["fineq_pe_array"]["power_mw"], rtol=1e-6)


def test_decoder_matches_table3(model):
    block = model.decoder_bank(64)
    assert np.isclose(block.area_mm2,
                      TABLE3_REFERENCE["fineq_decoder"]["area_mm2"], rtol=1e-6)
    assert np.isclose(block.power_mw,
                      TABLE3_REFERENCE["fineq_decoder"]["power_mw"], rtol=1e-6)


def test_paper_area_reduction(model):
    """The paper's headline: 61.2% systolic-array area reduction."""
    assert np.isclose(model.area_reduction(), 0.612, atol=0.005)


def test_paper_power_reduction(model):
    """The paper reports a 62.9% power reduction."""
    assert np.isclose(model.power_reduction(), 0.629, atol=0.01)


def test_fig8_power_split(model):
    split = model.fineq_power_breakdown()
    for key, value in FIG8_POWER_SPLIT.items():
        assert np.isclose(split[key], value, atol=1e-6)
    assert np.isclose(sum(split.values()), 1.0)


def test_area_scales_with_array_size(model):
    small = model.fineq_pe_array(32, 32)
    large = model.fineq_pe_array(128, 128)
    assert large.area_mm2 > 4 * small.area_mm2 * 0.9
    assert large.power_mw > small.power_mw


def test_clock_scaling():
    slow = AreaPowerModel(clock_mhz=200).systolic_array()
    fast = AreaPowerModel(clock_mhz=400).systolic_array()
    assert np.isclose(slow.power_mw * 2, fast.power_mw)
    assert np.isclose(slow.area_mm2, fast.area_mm2)  # area is clock-free
