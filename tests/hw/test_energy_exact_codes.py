"""Exact-code energy path: joins repro.hw.codes onto the GEMM trace."""

import numpy as np

from repro.hw import EnergyModel, model_code_magnitudes, model_gemms
from repro.hw.energy import energy_efficiency


def test_exact_codes_join_trace_names(tiny_model):
    mags = model_code_magnitudes(tiny_model)
    names = {g.name for g in model_gemms(tiny_model.config, 16)}
    assert names <= set(mags)


def test_efficiency_with_exact_codes_in_band(tiny_model):
    mags = model_code_magnitudes(tiny_model)
    value = energy_efficiency(tiny_model.config, 32, code_magnitudes=mags)
    assert 1.0 < value < 4.0


def test_exact_path_changes_cycle_count(tiny_model):
    model = EnergyModel()
    mags = model_code_magnitudes(tiny_model)
    exact = model.model_energy(tiny_model.config, 32, "fineq",
                               code_magnitudes=mags)
    estimate = model.model_energy(tiny_model.config, 32, "fineq")
    assert exact.cycles != estimate.cycles or np.isclose(
        exact.total_uj, estimate.total_uj, rtol=0.2)
