"""Energy model tests: Fig. 9 band and component sanity."""

import numpy as np

from repro.hw.energy import EnergyModel, energy_efficiency
from repro.hw.workloads import GEMMShape
from repro.models.configs import ZOO_CONFIGS


def test_components_positive():
    model = EnergyModel()
    shape = GEMMShape("x", 512, 128, 128)
    for design in ("baseline", "fineq"):
        energy = model.gemm_energy(shape, design)
        assert energy.core_uj > 0
        assert energy.dram_uj > 0
        assert energy.sram_uj > 0
        assert energy.macs == shape.macs


def test_fineq_dram_energy_lower():
    model = EnergyModel()
    shape = GEMMShape("x", 512, 128, 128)
    baseline = model.gemm_energy(shape, "baseline")
    fineq = model.gemm_energy(shape, "fineq")
    assert fineq.dram_uj < baseline.dram_uj


def test_efficiency_in_paper_band():
    """Mean normalised efficiency across the zoo lands near 1.79x."""
    values = []
    for config in ZOO_CONFIGS.values():
        for seq in (32, 64, 128, 256):
            values.append(energy_efficiency(config, seq))
    mean = float(np.mean(values))
    assert 1.5 < mean < 2.1
    assert all(v > 1.0 for v in values)


def test_efficiency_uses_exact_codes_when_given():
    config = next(iter(ZOO_CONFIGS.values()))
    gen = np.random.default_rng(0)
    mags = {}
    from repro.hw.workloads import model_gemms
    for shape in model_gemms(config, 32):
        mags[shape.name] = gen.integers(0, 2, size=(shape.m, shape.k))
    with_codes = energy_efficiency(config, 32, code_magnitudes=mags)
    without = energy_efficiency(config, 32)
    # All-low-magnitude codes make the temporal array faster -> at least
    # as efficient as the expectation-based estimate.
    assert with_codes >= without * 0.99


def test_model_energy_aggregates_gemms():
    model = EnergyModel()
    config = next(iter(ZOO_CONFIGS.values()))
    total = model.model_energy(config, 64, "baseline")
    single = model.gemm_energy(GEMMShape("wq", config.d_model,
                                         config.d_model, 64), "baseline")
    assert total.total_uj > single.total_uj
    assert total.macs > single.macs
