"""Temporal-coding PE array: exactness and cycle accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import TemporalCodingArray, temporal_matmul


def test_paper_fig7_example():
    """The walking example of Fig. 7: weights (1,1,2,2) over the inputs."""
    weights = np.array([[1, 1, 2, 2]])
    activations = np.array([[8, 7], [4, 9], [9, 1], [5, 3]])
    result = temporal_matmul(weights, activations)
    # Paper: after cycle 1 partials are (21, 25) offsets...; final row
    # equals the exact product (35, 29) pattern for their full input.
    assert np.array_equal(result.output, weights @ activations)
    assert result.cycles == 2  # max magnitude 2 -> two cycles


def test_fig7_full_example():
    """Full 1x4 @ 4x4 matrix from Fig. 7 bottom: result (35, 29, 26, 37)."""
    weights = np.array([[1, 1, 2, 2]])
    activations = np.array([[8, 7, 12, 10], [4, 9, 12, 1],
                            [9, 1, 5, 3], [5, 3, 8, 1]]).T
    # Use the paper's X orientation: columns are outputs.
    activations = np.array([[8, 4, 9, 5], [7, 9, 1, 3],
                            [12, 12, 5, 8], [10, 1, 3, 1]]).T
    expected = weights @ activations
    result = temporal_matmul(weights, activations)
    assert np.array_equal(result.output, expected)


def test_negative_weights_exact():
    weights = np.array([[-3, 2, 0, -1], [1, -2, 3, 0]])
    activations = np.random.default_rng(0).standard_normal((4, 5))
    result = temporal_matmul(weights, activations)
    np.testing.assert_allclose(result.output, weights @ activations,
                               atol=1e-12)


def test_early_termination_cycles():
    all_ones = temporal_matmul(np.ones((4, 8), dtype=int), np.ones((8, 2)))
    assert all_ones.cycles == 4          # 1 cycle per row
    with_three = temporal_matmul(np.full((4, 8), 3, dtype=int), np.ones((8, 2)))
    assert with_three.cycles == 12       # 3 cycles per row


def test_zero_row_still_costs_a_cycle():
    result = temporal_matmul(np.zeros((2, 4), dtype=int), np.ones((4, 2)))
    assert result.cycles == 2


def test_rejects_magnitude_overflow():
    with pytest.raises(ValueError):
        temporal_matmul(np.array([[4]]), np.ones((1, 1)))


def test_rejects_shape_mismatch():
    with pytest.raises(ValueError):
        temporal_matmul(np.ones((2, 3), dtype=int), np.ones((4, 2)))


@settings(max_examples=30, deadline=None)
@given(m=st.integers(1, 6), k=st.integers(1, 130), n=st.integers(1, 5),
       seed=st.integers(0, 1000))
def test_tiled_array_matches_exact_matmul(m, k, n, seed):
    gen = np.random.default_rng(seed)
    weights = gen.integers(-3, 4, size=(m, k))
    activations = gen.standard_normal((k, n))
    result = TemporalCodingArray(64, 64).run(weights, activations)
    np.testing.assert_allclose(result.output, weights @ activations,
                               atol=1e-9)


def test_compute_cycles_matches_run():
    gen = np.random.default_rng(7)
    weights = gen.integers(-3, 4, size=(9, 130))
    activations = gen.standard_normal((130, 3))
    array = TemporalCodingArray(64, 64)
    run_cycles = array.run(weights, activations).cycles
    assert array.compute_cycles(np.abs(weights)) == run_cycles


def test_cycles_bounded_one_to_three_per_row_chunk():
    gen = np.random.default_rng(8)
    weights = gen.integers(-3, 4, size=(10, 64))
    cycles = TemporalCodingArray(64, 64).compute_cycles(np.abs(weights))
    assert 10 <= cycles <= 30
