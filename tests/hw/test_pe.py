"""Cycle-accurate PE / ACC toy-model tests."""

import numpy as np

from repro.hw.pe import ProcessingElement, AccumulatorUnit
from repro.hw.temporal import TemporalEncoder


def test_pe_select_behaviour():
    pe = ProcessingElement(activation=2.5)
    assert pe.step(1) == 2.5
    assert pe.step(0) == 0.0
    pe.load(-1.5)
    assert pe.step(1) == -1.5


def test_acc_sign_and_accumulate():
    acc = AccumulatorUnit()
    assert acc.step(np.array([1.0, 2.0]), sign=+1) == 3.0
    assert acc.step(np.array([1.0, 1.0]), sign=-1) == 1.0
    acc.reset()
    assert acc.value == 0.0


def test_pe_row_with_temporal_encoder_computes_dot_product():
    """One PE row + encoder + ACC reproduces w * x for scalar weight."""
    weight_mag, weight_sign = 3, -1
    activation = 1.25
    pe = ProcessingElement(activation)
    encoder = TemporalEncoder(weight_mag)
    acc = AccumulatorUnit()
    for _ in range(3):
        bit = encoder.step()
        acc.step(np.array([pe.step(bit)]), sign=weight_sign)
    assert acc.value == weight_sign * weight_mag * activation
