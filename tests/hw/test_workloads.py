"""GEMM workload extraction and decode-trace projection tests."""

from repro.hw.workloads import (DecodeProjection, GEMMShape, block_gemms,
                                decode_step_cycles, model_gemms,
                                project_decode_trace, total_macs,
                                total_weight_count)
from repro.models.configs import ZOO_CONFIGS, tiny_config, zoo_config


def test_block_has_six_gemms():
    config = zoo_config("llama-sim-7b")
    gemms = block_gemms(config, seq_len=32)
    assert len(gemms) == 6
    names = {g.name for g in gemms}
    assert names == {"attn.wq", "attn.wk", "attn.wv", "attn.wo",
                     "ffn.up", "ffn.down"}


def test_model_gemm_count_scales_with_layers():
    config = zoo_config("llama-sim-7b")
    gemms = model_gemms(config, seq_len=32)
    assert len(gemms) == 6 * config.num_layers


def test_gemm_shapes_match_architecture():
    config = zoo_config("llama-sim-7b")
    by_name = {g.name: g for g in model_gemms(config, 16)}
    up = by_name["blocks.0.ffn.up"]
    assert (up.m, up.k, up.n) == (config.d_ff, config.d_model, 16)
    down = by_name["blocks.0.ffn.down"]
    assert (down.m, down.k, down.n) == (config.d_model, config.d_ff, 16)


def test_macs_scale_with_seq():
    config = zoo_config("llama-sim-3b")
    assert total_macs(config, 64) == 2 * total_macs(config, 32)


def test_weight_count_matches_quantizable_surface():
    config = zoo_config("llama-sim-3b")
    from repro.nn import TransformerLM
    model = TransformerLM(config)
    surface = sum(layer.weight.size
                  for _, layer in model.quantizable_linears())
    assert total_weight_count(config) == surface


def test_gemm_shape_properties():
    shape = GEMMShape("x", 4, 5, 6)
    assert shape.macs == 120
    assert shape.weight_count == 20


# ---------------------------------------------------------------------- #
# serving decode traces -> accelerator projection
# ---------------------------------------------------------------------- #
def test_decode_step_cycles_monotone_in_batch():
    config = zoo_config("llama-sim-7b")
    small = decode_step_cycles(config, 1, "fineq")
    big = decode_step_cycles(config, 64, "fineq")
    assert 0 < small <= big


def test_projection_accumulates_trace():
    config = zoo_config("llama-sim-3b")
    trace = [(4, 4, 4096), (4, 4, 4096), (2, 2, 2048)]
    projection = project_decode_trace(config, trace, design="fineq")
    assert projection.steps == 3
    assert projection.tokens == 10
    per_step4 = decode_step_cycles(config, 4, "fineq")
    per_step2 = decode_step_cycles(config, 2, "fineq")
    assert projection.compute_cycles == 2 * per_step4 + per_step2
    assert projection.kv_dma_cycles == -(-(2 * 4096 + 2048) // 128)
    assert projection.tokens_per_s > 0
    assert projection.seconds > 0
    as_dict = projection.to_dict()
    assert as_dict["total_cycles"] == projection.total_cycles


def test_quantized_kv_bytes_project_to_fewer_dma_cycles():
    """The FineQ cache's ~4.7x smaller KV footprint directly shrinks the
    projected DMA time — the serving-side payoff of the 2.33-bit format."""
    config = zoo_config("llama-sim-3b")
    fp32_trace = [(8, 8, 8 * 4096)] * 16
    quant_trace = [(8, 8, 8 * 4096 // 4)] * 16
    fp32 = project_decode_trace(config, fp32_trace, design="baseline")
    quant = project_decode_trace(config, quant_trace, design="fineq")
    assert quant.kv_dma_cycles * 4 <= fp32.kv_dma_cycles + 4


def test_projection_from_engine_trace():
    """End to end: a traced engine session projects onto both designs."""
    import numpy as np

    from repro.nn import TransformerLM
    from repro.serve import GenerationEngine

    model = TransformerLM(tiny_config(vocab_size=64, seed=0))
    engine = GenerationEngine(model, max_batch_size=4, record_trace=True)
    for i in range(4):
        engine.submit(np.arange(1 + i, 6 + i), 6)
    engine.run()
    # The trace carries decode steps plus prefill-chunk steps (flagged
    # by prefill_tokens), covering every token the session forwarded.
    decode_steps = [t for t in engine.trace if t.prefill_tokens == 0]
    chunk_steps = [t for t in engine.trace if t.prefill_tokens > 0]
    assert len(decode_steps) == engine.stats.decode_steps
    assert sum(t.tokens for t in decode_steps) == engine.stats.decode_tokens
    assert sum(t.tokens for t in chunk_steps) == engine.stats.prefill_tokens
    baseline = project_decode_trace(model.config, engine.trace, "baseline")
    fineq = project_decode_trace(model.config, engine.trace, "fineq")
    assert isinstance(baseline, DecodeProjection)
    assert baseline.tokens == fineq.tokens \
        == engine.stats.decode_tokens + engine.stats.prefill_tokens
    assert fineq.tokens_per_s > 0 and baseline.tokens_per_s > 0


def test_untraced_engine_keeps_no_trace():
    import numpy as np

    from repro.nn import TransformerLM
    from repro.serve import GenerationEngine

    model = TransformerLM(tiny_config(vocab_size=64, seed=0))
    engine = GenerationEngine(model, max_batch_size=2)
    engine.submit(np.array([1, 2, 3]), 4)
    engine.run()
    assert engine.trace == []
