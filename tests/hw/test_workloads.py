"""GEMM workload extraction tests."""

from repro.hw.workloads import (GEMMShape, block_gemms, model_gemms,
                                total_macs, total_weight_count)
from repro.models.configs import ZOO_CONFIGS, zoo_config


def test_block_has_six_gemms():
    config = zoo_config("llama-sim-7b")
    gemms = block_gemms(config, seq_len=32)
    assert len(gemms) == 6
    names = {g.name for g in gemms}
    assert names == {"attn.wq", "attn.wk", "attn.wv", "attn.wo",
                     "ffn.up", "ffn.down"}


def test_model_gemm_count_scales_with_layers():
    config = zoo_config("llama-sim-7b")
    gemms = model_gemms(config, seq_len=32)
    assert len(gemms) == 6 * config.num_layers


def test_gemm_shapes_match_architecture():
    config = zoo_config("llama-sim-7b")
    by_name = {g.name: g for g in model_gemms(config, 16)}
    up = by_name["blocks.0.ffn.up"]
    assert (up.m, up.k, up.n) == (config.d_ff, config.d_model, 16)
    down = by_name["blocks.0.ffn.down"]
    assert (down.m, down.k, down.n) == (config.d_model, config.d_ff, 16)


def test_macs_scale_with_seq():
    config = zoo_config("llama-sim-3b")
    assert total_macs(config, 64) == 2 * total_macs(config, 32)


def test_weight_count_matches_quantizable_surface():
    config = zoo_config("llama-sim-3b")
    from repro.nn import TransformerLM
    model = TransformerLM(config)
    surface = sum(layer.weight.size
                  for _, layer in model.quantizable_linears())
    assert total_weight_count(config) == surface


def test_gemm_shape_properties():
    shape = GEMMShape("x", 4, 5, 6)
    assert shape.macs == 120
    assert shape.weight_count == 20
