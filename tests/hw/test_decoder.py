"""Decoder tests: packed-stream decode equals the software unpacker."""

import numpy as np
import pytest

from repro.core import FineQQuantizer, pack_matrix
from repro.hw import FineQStreamDecoder, TemporalCodingArray


@pytest.fixture(scope="module")
def packed_and_artifacts():
    weight = np.random.default_rng(3).standard_normal((32, 48))
    quantizer = FineQQuantizer(channel_axis="output")
    dequantized, artifacts = quantizer.quantize_with_artifacts(weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], weight.shape)
    return packed, artifacts, dequantized


def test_decode_matches_quantizer_codes(packed_and_artifacts):
    packed, artifacts, _ = packed_and_artifacts
    result = FineQStreamDecoder().decode(packed)
    assert np.array_equal(result.codes, artifacts["codes"])
    assert np.array_equal(result.schemes, artifacts["schemes"])


def test_decode_then_temporal_matmul_equals_dequantized_matmul(
        packed_and_artifacts):
    """Integration: memory format -> decoder -> PE array == software."""
    packed, artifacts, dequantized = packed_and_artifacts
    result = FineQStreamDecoder().decode(packed)
    activations = np.random.default_rng(4).standard_normal((48, 5))
    codes_flat = result.codes.reshape(result.codes.shape[0], -1)[:, :48]
    hw_out = TemporalCodingArray().run(codes_flat, activations).output
    hw_scaled = hw_out * packed.scales.astype(np.float64)[:, None]
    sw_out = dequantized.astype(np.float64) @ activations
    np.testing.assert_allclose(hw_scaled, sw_out, rtol=2e-3, atol=1e-3)


def test_decode_cycles_throughput(packed_and_artifacts):
    packed, artifacts, _ = packed_and_artifacts
    decoder = FineQStreamDecoder(num_decoders=64)
    cycles = decoder.decode_cycles(packed)
    total_clusters = packed.payload.shape[0] * packed.payload.shape[1] // 7 * 8
    assert cycles == -(-total_clusters // 64)


def test_decoder_bank_size_validation():
    with pytest.raises(ValueError):
        FineQStreamDecoder(num_decoders=0)
