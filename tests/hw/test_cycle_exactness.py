"""Property: the cycle estimate brackets the exact code-based count."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.cycle_model import simulate_gemm
from repro.hw.workloads import GEMMShape


@settings(max_examples=20, deadline=None)
@given(m=st.integers(8, 128), k=st.integers(8, 200), seed=st.integers(0, 500))
def test_exact_cycles_within_1x_to_3x_baseline(m, k, seed):
    shape = GEMMShape("g", m=m, k=k, n=32)
    gen = np.random.default_rng(seed)
    mags = gen.integers(0, 4, size=(m, k))
    fineq = simulate_gemm(shape, "fineq", code_magnitudes=mags)
    baseline = simulate_gemm(shape, "baseline")
    assert (baseline.stage_cycles["matmul"]
            <= fineq.stage_cycles["matmul"]
            <= 3 * baseline.stage_cycles["matmul"])


@settings(max_examples=20, deadline=None)
@given(ratio=st.floats(0.0, 1.0))
def test_estimate_monotone_in_outlier_ratio(ratio):
    shape = GEMMShape("g", m=64, k=64, n=64)
    low = simulate_gemm(shape, "fineq", outlier_cluster_ratio=0.0)
    mid = simulate_gemm(shape, "fineq", outlier_cluster_ratio=ratio)
    high = simulate_gemm(shape, "fineq", outlier_cluster_ratio=1.0)
    assert (low.stage_cycles["matmul"]
            <= mid.stage_cycles["matmul"]
            <= high.stage_cycles["matmul"])
