"""Baseline systolic array tests."""

import numpy as np
import pytest

from repro.hw.systolic import BaselineSystolicArray


def test_exact_result():
    gen = np.random.default_rng(0)
    w = gen.standard_normal((10, 130))
    x = gen.standard_normal((130, 7))
    result = BaselineSystolicArray().run(w, x)
    np.testing.assert_allclose(result.output, w @ x)


def test_cycle_formula():
    array = BaselineSystolicArray(64, 64)
    # 130 input channels -> 3 K-tiles; 7 outputs -> 1 N-tile.
    assert array.compute_cycles(m=10, k=130, n=7) == 10 * 3 * 1
    assert array.compute_cycles(m=10, k=64, n=65) == 10 * 1 * 2


def test_mac_count():
    result = BaselineSystolicArray().run(np.ones((4, 8)), np.ones((8, 3)))
    assert result.macs == 4 * 8 * 3


def test_shape_mismatch():
    with pytest.raises(ValueError):
        BaselineSystolicArray().run(np.ones((2, 3)), np.ones((4, 5)))
