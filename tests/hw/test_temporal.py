"""Temporal encoder unit tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.temporal import (TemporalEncoder, encode_magnitudes,
                               decode_bitstream, MAX_MAGNITUDE)


def test_paper_examples():
    # Value 2 -> '11', value 1 -> '01' read as (cycle1, cycle2).
    bits = encode_magnitudes(np.array([2, 1]))
    assert bits.T.tolist() == [[1, 1], [1, 0]]


def test_roundtrip_fixed():
    mags = np.array([0, 1, 2, 3, 3, 0])
    assert decode_bitstream(encode_magnitudes(mags)).tolist() == mags.tolist()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, MAX_MAGNITUDE), min_size=1, max_size=64))
def test_roundtrip_property(mags):
    mags = np.asarray(mags)
    assert np.array_equal(decode_bitstream(encode_magnitudes(mags)), mags)


def test_early_termination_length():
    assert encode_magnitudes(np.array([1, 1, 0])).shape[0] == 1
    assert encode_magnitudes(np.array([3, 0])).shape[0] == 3
    assert encode_magnitudes(np.array([0, 0])).shape[0] == 0


def test_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode_magnitudes(np.array([4]))
    with pytest.raises(ValueError):
        encode_magnitudes(np.array([-1]))


def test_encoder_state_machine():
    encoder = TemporalEncoder(2)
    assert [encoder.step(), encoder.step(), encoder.step()] == [1, 1, 0]
    assert encoder.exhausted


def test_encoder_stop_signal():
    encoder = TemporalEncoder(3)
    assert encoder.step() == 1
    encoder.stop()
    assert encoder.step() == 0


def test_encoder_rejects_bad_value():
    with pytest.raises(ValueError):
        TemporalEncoder(5)
