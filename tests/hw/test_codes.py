"""Exact code-magnitude extraction tests."""

import numpy as np

from repro.core import FineQQuantizer
from repro.hw.codes import layer_code_magnitudes, model_code_magnitudes


def test_orientation_matches_weight(gaussian_weight):
    mags = layer_code_magnitudes(gaussian_weight)
    assert mags.shape == gaussian_weight.shape
    assert mags.min() >= 0 and mags.max() <= 3


def test_magnitudes_consistent_with_dequantized(gaussian_weight):
    quantizer = FineQQuantizer()
    dequantized, artifacts = quantizer.quantize_with_artifacts(gaussian_weight)
    mags = layer_code_magnitudes(gaussian_weight, quantizer)
    scales = artifacts["scales"]  # per input-channel (column) scales
    reconstructed = mags * scales[None, :] * np.sign(dequantized)
    # |dequantized| == |code| * channel_scale.
    np.testing.assert_allclose(np.abs(dequantized),
                               mags * scales[None, :], atol=1e-9)


def test_model_code_magnitudes_cover_surface(tiny_model):
    mags = model_code_magnitudes(tiny_model)
    for name, layer in tiny_model.quantizable_linears():
        assert mags[name].shape == layer.weight.data.shape


def test_output_axis_orientation(gaussian_weight):
    quantizer = FineQQuantizer(channel_axis="output")
    mags = layer_code_magnitudes(gaussian_weight, quantizer)
    assert mags.shape == gaussian_weight.shape
