"""Shared fixtures: tiny trained models and synthetic data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_corpus, WordTokenizer, split_stream
from repro.models import OutlierSpec, pretrain_column_outliers, inject_outliers
from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.train import Trainer, TrainConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_tokenizer() -> WordTokenizer:
    corpora = [generate_corpus(name, 2500, seed=0)
               for name in ("wikitext-sim", "c4-sim")]
    return WordTokenizer.train(corpora, 256)


@pytest.fixture(scope="session")
def tiny_stream(tiny_tokenizer) -> np.ndarray:
    parts = [tiny_tokenizer.encode(generate_corpus(name, 2500, seed=0))
             for name in ("wikitext-sim", "c4-sim")]
    return np.concatenate(parts)


@pytest.fixture(scope="session")
def tiny_model(tiny_stream) -> TransformerLM:
    """A small trained model with injected LLM-like outliers.

    Session-scoped: trained once (~10 s) and shared.  Tests must not
    mutate it — quantization tests clone first.
    """
    config = tiny_config(vocab_size=256, seed=5)
    model = TransformerLM(config)
    spec = OutlierSpec(seed=5)
    pretrain_column_outliers(model, spec)
    train, val = split_stream(tiny_stream, 0.05)
    trainer = Trainer(model, train,
                      TrainConfig(steps=150, batch_size=16, seq_len=64,
                                  lr=3e-3, weight_decay=0.02, seed=5))
    trainer.train()
    inject_outliers(model, spec)
    return model


@pytest.fixture(scope="session")
def gaussian_weight() -> np.ndarray:
    """A representative weight matrix: Gaussian bulk + column outliers."""
    gen = np.random.default_rng(99)
    weight = gen.standard_normal((96, 120)) * 0.05
    cols = gen.choice(120, 3, replace=False)
    weight[:, cols] *= 9.0
    return weight
