"""Unit tests for scheme selection, scales, and pair harmonization."""

import numpy as np

from repro.core.clusters import cluster_weights, initial_schemes
from repro.core.encoding import (channel_scales, harmonize_pairs,
                                 quantize_codes, round_half_away,
                                 scheme_reconstruction_error)


def test_round_half_away():
    values = np.array([0.5, -0.5, 1.5, -1.5, 0.49, 2.0])
    assert round_half_away(values).tolist() == [1, -1, 2, -2, 0, 2]


def test_channel_scale_outlier_channel_uses_3bit_grid():
    clusters = np.array([[[0.27, 0.03, 0.11]]])
    schemes = initial_schemes(clusters)
    scale = channel_scales(clusters, schemes)
    assert np.isclose(scale[0, 0, 0], 0.27 / 3)


def test_channel_scale_normal_channel_uses_2bit_grid():
    clusters = np.array([[[0.10, 0.12, 0.11]]])
    schemes = initial_schemes(clusters)
    scale = channel_scales(clusters, schemes)
    assert np.isclose(scale[0, 0, 0], 0.12)


def test_channel_scale_zero_channel_safe():
    clusters = np.zeros((1, 2, 3))
    schemes = np.zeros((1, 2), dtype=np.int64)
    scale = channel_scales(clusters, schemes)
    assert scale[0, 0, 0] == 1.0


def test_quantize_codes_respects_widths():
    clusters = np.array([[[0.27, 0.03, 0.11]]])
    schemes = initial_schemes(clusters)          # '10' -> widths (3, 0, 3)
    scales = channel_scales(clusters, schemes)
    codes = quantize_codes(clusters, schemes, scales)
    assert codes[0, 0].tolist() == [3, 0, 1]


def test_quantize_codes_clips_2bit_to_unit():
    clusters = np.array([[[0.9, 0.5, 0.4]]])     # normal cluster
    schemes = np.zeros((1, 1), dtype=np.int64)
    scales = np.full((1, 1, 1), 0.3)
    codes = quantize_codes(clusters, schemes, scales)
    assert codes.max() == 1                      # clipped to {-1, 0, 1}


def test_harmonize_agreeing_pair_untouched():
    clusters = np.array([[[0.1, 0.1, 0.1], [0.2, 0.2, 0.2]]])
    schemes = np.zeros((1, 2), dtype=np.int64)
    scales = channel_scales(clusters, schemes)
    assert harmonize_pairs(clusters, schemes, scales).tolist() == [[0, 0]]


def test_harmonize_resolves_disagreement_to_single_scheme():
    weights = np.array([[0.17, 0.12, 0.01, 0.01, 0.24, 0.03]])
    clusters, _ = cluster_weights(weights)
    schemes = initial_schemes(clusters)
    assert schemes[0, 0] != schemes[0, 1]        # '11' vs '01'
    scales = channel_scales(clusters, schemes)
    harmonized = harmonize_pairs(clusters, schemes, scales)
    assert harmonized[0, 0] == harmonized[0, 1]


def test_harmonize_picks_error_minimiser():
    weights = np.array([[0.17, 0.12, 0.01, 0.01, 0.24, 0.03]])
    clusters, _ = cluster_weights(weights)
    schemes = initial_schemes(clusters)
    scales = channel_scales(clusters, schemes)
    harmonized = harmonize_pairs(clusters, schemes, scales)
    errors = scheme_reconstruction_error(clusters, scales)
    pair_error = errors[:, 0, 0] + errors[:, 0, 1]
    assert harmonized[0, 0] == int(pair_error.argmin())


def test_harmonize_odd_trailing_cluster_kept():
    weights = np.random.default_rng(0).standard_normal((2, 9))
    clusters, _ = cluster_weights(weights)
    schemes = initial_schemes(clusters)
    scales = channel_scales(clusters, schemes)
    harmonized = harmonize_pairs(clusters, schemes, scales)
    # First two clusters are paired; the third keeps its own scheme.
    assert (harmonized[:, 2] == schemes[:, 2]).all()
    assert (harmonized[:, 0] == harmonized[:, 1]).all()


def test_reconstruction_error_shape():
    clusters = np.random.default_rng(0).standard_normal((4, 5, 3))
    scales = np.ones((4, 1, 1))
    errors = scheme_reconstruction_error(clusters, scales)
    assert errors.shape == (4, 4, 5)
    assert (errors >= 0).all()
