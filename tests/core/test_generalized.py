"""Generalised FineQ (ablation variant) tests."""

import numpy as np
import pytest

from repro.core import FineQQuantizer
from repro.core.generalized import GeneralizedFineQ


def rel_error(dequantized, weight):
    return float(((dequantized - weight) ** 2).sum() / (weight ** 2).sum())


def test_paper_point_close_to_reference(gaussian_weight):
    """At cluster 3 / 4x / 3b, the generalised path tracks FineQ closely."""
    reference, ref_record = FineQQuantizer().quantize_weight(gaussian_weight)
    general, gen_record = GeneralizedFineQ().quantize_weight(gaussian_weight)
    assert abs(rel_error(general, gaussian_weight)
               - rel_error(reference, gaussian_weight)) < 0.05
    assert abs(gen_record.avg_bits - ref_record.avg_bits) < 0.2


def test_fp16_protection_never_worse(gaussian_weight):
    three_bit, _ = GeneralizedFineQ(protect_bits=3).quantize_weight(
        gaussian_weight)
    fp16, _ = GeneralizedFineQ(protect_bits=16).quantize_weight(
        gaussian_weight)
    assert rel_error(fp16, gaussian_weight) <= rel_error(
        three_bit, gaussian_weight) + 1e-9


def test_fp16_protection_costs_many_bits(gaussian_weight):
    _, rec3 = GeneralizedFineQ(protect_bits=3).quantize_weight(gaussian_weight)
    _, rec16 = GeneralizedFineQ(protect_bits=16).quantize_weight(gaussian_weight)
    assert rec16.avg_bits > rec3.avg_bits + 1.0


def test_smaller_clusters_cost_more_index_bits(gaussian_weight):
    _, rec2 = GeneralizedFineQ(cluster_size=2).quantize_weight(gaussian_weight)
    _, rec3 = GeneralizedFineQ(cluster_size=3).quantize_weight(gaussian_weight)
    _, rec6 = GeneralizedFineQ(cluster_size=6).quantize_weight(gaussian_weight)
    assert rec2.avg_bits > rec3.avg_bits
    assert rec6.avg_bits <= rec3.avg_bits + 1e-9


def test_threshold_controls_outlier_rate(gaussian_weight):
    _, strict = GeneralizedFineQ(outlier_ratio=2.0).quantize_weight(
        gaussian_weight)
    _, lax = GeneralizedFineQ(outlier_ratio=8.0).quantize_weight(
        gaussian_weight)
    assert (strict.detail["outlier_cluster_ratio"]
            > lax.detail["outlier_cluster_ratio"])


def test_harmonize_flag_changes_allocation(gaussian_weight):
    _, on = GeneralizedFineQ(harmonize=True).quantize_weight(gaussian_weight)
    _, off = GeneralizedFineQ(harmonize=False).quantize_weight(gaussian_weight)
    assert on.detail["harmonize"] != off.detail["harmonize"]


def test_validation():
    with pytest.raises(ValueError):
        GeneralizedFineQ(cluster_size=1)
    with pytest.raises(ValueError):
        GeneralizedFineQ(protect_bits=5)
    with pytest.raises(ValueError):
        GeneralizedFineQ(channel_axis="both")


def test_shape_preserved_odd_sizes():
    weight = np.random.default_rng(0).standard_normal((7, 11))
    for size in (2, 3, 6):
        dequantized, _ = GeneralizedFineQ(cluster_size=size).quantize_weight(
            weight)
        assert dequantized.shape == weight.shape
