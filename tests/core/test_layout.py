"""Serving-memory layout tests."""

import numpy as np

from repro.core.layout import serving_memory_layout, _parameter_count
from repro.models.configs import zoo_config, tiny_config
from repro.nn import TransformerLM


def test_fractions_sum_to_one():
    layout = serving_memory_layout(zoo_config("llama-sim-13b"),
                                   batch=2, seq_len=128)
    assert np.isclose(sum(layout.fractions.values()), 1.0)


def test_parameter_count_matches_model():
    config = tiny_config()
    model = TransformerLM(config)
    assert _parameter_count(config) == model.num_parameters()


def test_model_and_config_paths_agree():
    config = tiny_config()
    model = TransformerLM(config)
    from_model = serving_memory_layout(model, batch=1, seq_len=32)
    from_config = serving_memory_layout(config, batch=1, seq_len=32)
    assert from_model.weight_bytes == from_config.weight_bytes
    assert from_model.kv_cache_bytes == from_config.kv_cache_bytes


def test_fineq_bits_shrink_weight_pool():
    config = zoo_config("llama-sim-13b")
    fp16 = serving_memory_layout(config, batch=2, seq_len=128,
                                 weight_bits=16.0)
    fineq = serving_memory_layout(config, batch=2, seq_len=128,
                                  weight_bits=7 * 8 / 24)
    assert fineq.weight_bytes < fp16.weight_bytes / 6
    assert fineq.kv_cache_bytes == fp16.kv_cache_bytes
    assert fineq.fractions["weights"] < fp16.fractions["weights"]


def test_kv_scales_with_batch_and_seq():
    config = zoo_config("llama-sim-7b")
    small = serving_memory_layout(config, batch=1, seq_len=64)
    large = serving_memory_layout(config, batch=2, seq_len=128)
    assert large.kv_cache_bytes == 4 * small.kv_cache_bytes
