"""FineQ quantizer end-to-end tests, including the paper's Fig. 4."""

import numpy as np
import pytest

from repro.core import FineQQuantizer

FIG4_WEIGHTS = np.array([
    [0.10, 0.12, 0.11, 0.12, 0.13, 0.04],
    [0.27, 0.03, 0.11, 0.19, 0.01, 0.16],
    [0.04, 0.02, 0.04, 0.04, 0.04, 0.03],
    [0.17, 0.12, 0.01, 0.01, 0.24, 0.03],
])


@pytest.fixture
def fig4_artifacts():
    quantizer = FineQQuantizer(channel_axis="output")  # rows are channels
    return quantizer.quantize_with_artifacts(FIG4_WEIGHTS)


def test_paper_fig4_schemes(fig4_artifacts):
    _, artifacts = fig4_artifacts
    # Paper step 5 encoding column: 00, 10, 00, 11.
    assert artifacts["schemes"].tolist() == [[0, 0], [2, 2], [0, 0], [3, 3]]


def test_paper_fig4_scales(fig4_artifacts):
    _, artifacts = fig4_artifacts
    np.testing.assert_allclose(artifacts["scales"],
                               [0.13, 0.09, 0.04, 0.08], atol=1e-9)


def test_paper_fig4_codes(fig4_artifacts):
    _, artifacts = fig4_artifacts
    codes = artifacts["codes"].reshape(4, 6).tolist()
    # Matches the paper's step-4 matrix except the figure's (3,3) entry,
    # which is inconsistent with its own '11' encoding (see DESIGN.md).
    assert codes[0] == [1, 1, 1, 1, 1, 0]
    assert codes[1] == [3, 0, 1, 2, 0, 2]
    assert codes[2] == [1, 1, 1, 1, 1, 1]
    assert codes[3] == [2, 2, 0, 0, 3, 0]


def test_avg_bits_close_to_paper(gaussian_weight):
    _, record = FineQQuantizer().quantize_weight(gaussian_weight)
    # 2.33 payload+index; scales amortise over channels.
    assert 2.3 < record.avg_bits < 2.6
    assert np.isclose(record.bits_payload, 2.0, atol=0.11)


def test_dequantized_shape_and_dtype(gaussian_weight):
    dequantized, _ = FineQQuantizer().quantize_weight(gaussian_weight)
    assert dequantized.shape == gaussian_weight.shape
    assert dequantized.dtype == np.float32


def test_input_axis_absorbs_column_outliers(gaussian_weight):
    """Per-input-channel scales must isolate the planted outlier columns."""
    input_axis, _ = FineQQuantizer(channel_axis="input").quantize_weight(
        gaussian_weight)
    output_axis, _ = FineQQuantizer(channel_axis="output").quantize_weight(
        gaussian_weight)
    def rel_err(dq):
        return float(((dq - gaussian_weight) ** 2).sum()
                     / (gaussian_weight ** 2).sum())
    assert rel_err(input_axis) < rel_err(output_axis)


def test_outlier_ratio_threshold_configurable(gaussian_weight):
    strict, _ = FineQQuantizer(outlier_ratio=2.0).quantize_weight(gaussian_weight)
    lax_q = FineQQuantizer(outlier_ratio=100.0)
    _, artifacts = lax_q.quantize_with_artifacts(gaussian_weight)
    # With an absurdly high threshold almost nothing is an outlier cluster.
    assert (artifacts["schemes"] > 0).mean() < 0.05


def test_rejects_non_paper_cluster_size():
    with pytest.raises(ValueError):
        FineQQuantizer(cluster_size=4)


def test_rejects_bad_axis():
    with pytest.raises(ValueError):
        FineQQuantizer(channel_axis="diagonal")


def test_idempotent_on_already_quantized(gaussian_weight):
    """Quantizing a dequantized matrix again must be (near-)lossless."""
    quantizer = FineQQuantizer()
    first, _ = quantizer.quantize_weight(gaussian_weight)
    second, _ = quantizer.quantize_weight(first)
    err = float(((second - first) ** 2).sum() / (first ** 2).sum())
    assert err < 0.02


def test_zero_matrix():
    dequantized, record = FineQQuantizer().quantize_weight(np.zeros((6, 9)))
    assert (dequantized == 0).all()
    assert record.avg_bits > 0
