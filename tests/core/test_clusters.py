"""Unit tests for cluster partitioning and outlier detection."""

import numpy as np
import pytest

from repro.core.clusters import (CLUSTER_SIZE, cluster_weights,
                                 detect_outlier_clusters, initial_schemes,
                                 SCHEME_WIDTHS, qmax_for_widths)


def test_cluster_shape_exact_multiple():
    clusters, pad = cluster_weights(np.arange(12.0).reshape(2, 6))
    assert clusters.shape == (2, 2, 3)
    assert pad == 0


def test_cluster_padding():
    clusters, pad = cluster_weights(np.ones((2, 7)))
    assert clusters.shape == (2, 3, 3)
    assert pad == 2
    assert np.all(clusters[:, -1, 1:] == 0.0)


def test_cluster_rejects_1d():
    with pytest.raises(ValueError):
        cluster_weights(np.ones(6))


def test_outlier_rule_fires_above_4x():
    clusters = np.array([[[0.27, 0.03, 0.11], [0.10, 0.12, 0.11]]])
    outlier = detect_outlier_clusters(clusters)
    assert outlier.tolist() == [[True, False]]


def test_outlier_rule_on_magnitudes():
    clusters = np.array([[[-0.27, 0.03, 0.11]]])
    assert detect_outlier_clusters(clusters)[0, 0]


def test_outlier_rule_zero_min_fires():
    clusters = np.array([[[0.2, 0.0, 0.1]]])
    assert detect_outlier_clusters(clusters)[0, 0]


def test_all_zero_cluster_not_outlier():
    clusters = np.zeros((1, 1, 3))
    assert not detect_outlier_clusters(clusters)[0, 0]


def test_initial_schemes_zero_smallest():
    clusters = np.array([[[0.27, 0.03, 0.11],   # smallest at pos 1 -> '10'
                          [0.17, 0.12, 0.01],   # smallest at pos 2 -> '11'
                          [0.01, 0.24, 0.03],   # smallest at pos 0 -> '01'
                          [0.10, 0.12, 0.11]]]) # normal -> '00'
    schemes = initial_schemes(clusters)
    assert schemes.tolist() == [[2, 3, 1, 0]]


def test_scheme_widths_all_6_bits():
    for widths in SCHEME_WIDTHS:
        assert widths.sum() == 6


def test_qmax_lookup():
    assert qmax_for_widths(np.array([0, 2, 3])).tolist() == [0, 1, 3]
