"""Packed-format round-trip tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FineQQuantizer, pack_matrix, unpack_matrix
from repro.core.packing import (GROUP_BYTES, CLUSTERS_PER_GROUP, _DECODE_LUT,
                                decode_payload, decode_payload_bitwise)


def _pack_roundtrip(weight: np.ndarray):
    quantizer = FineQQuantizer(channel_axis="output")
    dequantized, artifacts = quantizer.quantize_with_artifacts(weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], weight.shape)
    codes, schemes, unpacked = unpack_matrix(packed)
    return artifacts, packed, codes, schemes, unpacked, dequantized


def test_roundtrip_codes_exact(gaussian_weight):
    artifacts, _, codes, schemes, _, _ = _pack_roundtrip(gaussian_weight)
    assert np.array_equal(codes, artifacts["codes"])
    assert np.array_equal(schemes, artifacts["schemes"])


def test_roundtrip_dequantized_fp16_scale_tolerance(gaussian_weight):
    _, _, _, _, unpacked, dequantized = _pack_roundtrip(gaussian_weight)
    # Scales are stored FP16, so reconstruction matches to FP16 precision.
    np.testing.assert_allclose(unpacked, dequantized, rtol=2e-3, atol=2e-3)


def test_group_layout_seven_bytes_per_24_weights():
    weight = np.random.default_rng(0).standard_normal((4, 24))
    _, packed, *_ = _pack_roundtrip(weight)
    # 24 weights = 8 clusters = 1 group of GROUP_BYTES.
    assert packed.payload.shape == (4, GROUP_BYTES)
    assert packed.total_bytes == 4 * GROUP_BYTES + 2 * 4


def test_bits_per_weight_approaches_paper_for_wide_rows():
    weight = np.random.default_rng(1).standard_normal((8, 768))
    _, packed, *_ = _pack_roundtrip(weight)
    # 7 bytes / 24 weights = 2.333 bits + FP16 scale amortised.
    assert 2.33 < packed.bits_per_weight < 2.45


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(1, 7), cols=st.integers(1, 40),
       seed=st.integers(0, 10_000))
def test_roundtrip_property(rows, cols, seed):
    weight = np.random.default_rng(seed).standard_normal((rows, cols))
    artifacts, _, codes, schemes, _, _ = _pack_roundtrip(weight)
    assert np.array_equal(codes, artifacts["codes"])
    assert np.array_equal(schemes, artifacts["schemes"])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), scale=st.floats(1e-3, 1e3))
def test_roundtrip_scale_invariance(seed, scale):
    weight = np.random.default_rng(seed).standard_normal((3, 21)) * scale
    artifacts, _, codes, _, _, _ = _pack_roundtrip(weight)
    assert np.array_equal(codes, artifacts["codes"])


def test_unpack_restores_original_shape():
    weight = np.random.default_rng(2).standard_normal((5, 17))
    _, packed, _, _, unpacked, _ = _pack_roundtrip(weight)
    assert unpacked.shape == weight.shape


def test_payload_groups_are_multiple_of_group_bytes(gaussian_weight):
    _, packed, *_ = _pack_roundtrip(gaussian_weight)
    assert packed.payload.shape[1] % GROUP_BYTES == 0
    groups = packed.payload.shape[1] // GROUP_BYTES
    assert groups * CLUSTERS_PER_GROUP >= packed.num_clusters


def test_decode_lut_covers_every_scheme_and_pattern():
    assert _DECODE_LUT.shape == (4, 64, 3)
    # Magnitudes stay on the per-scheme grids: +-1 normal, +-3 outlier.
    assert np.abs(_DECODE_LUT[0]).max() == 1
    assert np.abs(_DECODE_LUT[1:]).max() == 3
    # Zeroed positions are structurally zero for the outlier schemes.
    for scheme, zero_pos in ((1, 0), (2, 1), (3, 2)):
        assert (_DECODE_LUT[scheme, :, zero_pos] == 0).all()


def test_lut_decode_equals_bitwise_reference(gaussian_weight):
    _, packed, *_ = _pack_roundtrip(gaussian_weight)
    codes, schemes = decode_payload(packed.payload)
    ref_codes, ref_schemes = decode_payload_bitwise(packed.payload)
    assert np.array_equal(codes, ref_codes)
    assert np.array_equal(schemes, ref_schemes)


@settings(max_examples=30, deadline=None)
@given(rows=st.integers(1, 6), cols=st.integers(1, 64),
       seed=st.integers(0, 10_000))
def test_lut_decode_equals_bitwise_reference_property(rows, cols, seed):
    weight = np.random.default_rng(seed).standard_normal((rows, cols))
    _, packed, *_ = _pack_roundtrip(weight)
    codes, schemes = decode_payload(packed.payload)
    ref_codes, ref_schemes = decode_payload_bitwise(packed.payload)
    assert np.array_equal(codes, ref_codes)
    assert np.array_equal(schemes, ref_schemes)
