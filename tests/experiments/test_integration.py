"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import FineQQuantizer, pack_matrix
from repro.eval import clone_model
from repro.hw import FineQStreamDecoder, TemporalCodingArray
from repro.quant import get_quantizer


def test_quantized_layer_forward_matches_hw_datapath(tiny_model):
    """Software quantized Linear == packed bytes -> decoder -> PE array."""
    work = clone_model(tiny_model)
    name, layer = work.quantizable_linears()[0]
    quantizer = FineQQuantizer(channel_axis="output")
    dequantized, artifacts = quantizer.quantize_with_artifacts(
        layer.weight.data)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], layer.weight.data.shape)
    decoded = FineQStreamDecoder().decode(packed)

    x = np.random.default_rng(0).standard_normal(
        (layer.in_features, 4))
    codes_2d = decoded.codes.reshape(decoded.codes.shape[0], -1)
    codes_2d = codes_2d[:, :layer.in_features]
    hw = TemporalCodingArray().run(codes_2d, x).output
    hw_scaled = hw * packed.scales.astype(np.float64)[:, None]
    sw = dequantized.astype(np.float64) @ x
    np.testing.assert_allclose(hw_scaled, sw, rtol=2e-3, atol=1e-3)


def test_all_methods_produce_finite_models(tiny_model, tiny_tokenizer):
    """Every registered method quantizes the model to finite outputs."""
    from repro.eval.harness import default_calibration_batches
    from repro.quant import sequential_quantize
    tokens = np.random.default_rng(1).integers(
        0, tiny_model.config.vocab_size, size=(2, 16))
    for method in ("uniform", "rtn", "pb-llm", "fineq"):
        work = clone_model(tiny_model)
        get_quantizer(method).quantize_model(work)
        with no_grad():
            assert np.isfinite(work(tokens).data).all(), method
    calibration = default_calibration_batches(tiny_model, tiny_tokenizer,
                                              num_tokens=512)
    for method in ("gptq", "owq"):
        work = clone_model(tiny_model)
        sequential_quantize(work, get_quantizer(method), calibration)
        with no_grad():
            assert np.isfinite(work(tokens).data).all(), method


def test_fineq_quantized_model_still_generates(tiny_model, tiny_tokenizer):
    work = clone_model(tiny_model)
    get_quantizer("fineq").quantize_model(work)
    out = work.generate(np.array([5, 6, 7]), 8, temperature=0.0)
    assert len(out) == 11
    assert (out < tiny_model.config.vocab_size).all()


def test_avg_bits_ordering_across_methods(tiny_model):
    """Bit budgets line up with the paper's Table I column."""
    budgets = {}
    for method in ("uniform", "rtn", "owq", "fineq", "pb-llm"):
        work = clone_model(tiny_model)
        quantizer = get_quantizer(method)
        if quantizer.needs_calibration:
            report = None
            for _, layer in work.quantizable_linears():
                _, record = quantizer.quantize_weight(layer.weight.data)
                report = record
            budgets[method] = report.avg_bits
        else:
            budgets[method] = quantizer.quantize_model(work).avg_bits
    # Per-tensor uniform is the leanest; mixed-precision methods pay for
    # their metadata/protection in the expected order.  (RTN's per-row
    # scale overhead is amplified on these narrow test matrices, so it is
    # only compared against uniform.)
    assert budgets["uniform"] < budgets["rtn"]
    assert budgets["owq"] < budgets["fineq"] < budgets["pb-llm"]
