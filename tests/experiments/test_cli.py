"""CLI smoke tests."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "llama-sim-7b" in out
    assert "fineq" in out


def test_parser_defaults():
    args = build_parser().parse_args(["quantize"])
    assert args.model == "llama-sim-7b"
    assert args.method == "fineq"


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])
