"""Fast tests for the analytic (hardware-side) experiment modules."""

import numpy as np

from repro.experiments import table3, fig8, fig9, fig2b


def test_table3_matches_paper():
    result = table3.run()
    paper = result.meta["paper"]
    row = result.row_by("Architecture", "FineQ PE Array")
    assert np.isclose(row[2], paper["fineq_pe_array"]["area_mm2"], atol=1e-3)
    assert np.isclose(result.meta["area_reduction"],
                      result.meta["paper_area_reduction"], atol=0.01)


def test_table3_scales_to_other_arrays():
    small = table3.run(rows=32, cols=32)
    big = table3.run(rows=64, cols=64)
    assert (small.row_by("Architecture", "Systolic Array")[2]
            < big.row_by("Architecture", "Systolic Array")[2])


def test_fig8_split_sums_to_one():
    result = fig8.run()
    assert np.isclose(sum(result.meta["split"].values()), 1.0)


def test_fig9_rows_cover_zoo():
    result = fig9.run(seq_lengths=(32, 64))
    assert len(result.rows) == 3
    assert result.meta["overall_mean"] > 1.0


def test_fig2b_paper_band():
    result = fig2b.run()
    fp16 = result.row_by("Weights", "FP16")
    assert 55 <= fp16[4] <= 75


def test_experiment_result_helpers():
    result = table3.run()
    assert "Systolic" in result.to_text()
    assert result.to_markdown().startswith("|")
    assert len(result.column("Architecture")) == 3
