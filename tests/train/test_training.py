"""Optimizer, schedule, and trainer tests."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.train import Adam, CosineSchedule, clip_grad_norm, Trainer, TrainConfig
from repro.nn import TransformerLM
from repro.models.configs import tiny_config


def test_adam_minimises_quadratic():
    param = Parameter(np.array([5.0, -3.0], dtype=np.float32))
    optimizer = Adam([param], lr=0.1)
    for _ in range(200):
        optimizer.zero_grad()
        param.grad = 2 * param.data  # d/dx x^2
        optimizer.step()
    np.testing.assert_allclose(param.data, [0.0, 0.0], atol=1e-2)


def test_adam_decoupled_weight_decay_shrinks_params():
    param = Parameter(np.array([10.0], dtype=np.float32))
    optimizer = Adam([param], lr=0.1, weight_decay=0.5)
    param.grad = np.zeros(1, dtype=np.float32)
    before = float(param.data[0])
    optimizer.step()
    # With zero gradient, decoupled decay still shrinks the weight.
    assert float(param.data[0]) < before


def test_adam_skips_gradless_params():
    param = Parameter(np.ones(2, dtype=np.float32))
    Adam([param]).step()
    np.testing.assert_allclose(param.data, np.ones(2))


def test_cosine_schedule_shape():
    schedule = CosineSchedule(base_lr=1.0, warmup_steps=10, total_steps=100,
                              min_lr=0.1)
    assert schedule.lr_at(0) == pytest.approx(0.1, abs=0.05)
    assert schedule.lr_at(9) == pytest.approx(1.0)
    assert schedule.lr_at(100) == pytest.approx(0.1)
    assert schedule.lr_at(55) < schedule.lr_at(20)


def test_cosine_schedule_validates():
    with pytest.raises(ValueError):
        CosineSchedule(1.0, 0, 0)


def test_clip_grad_norm():
    params = [Parameter(np.zeros(3, dtype=np.float32)) for _ in range(2)]
    params[0].grad = np.array([3.0, 0.0, 0.0], dtype=np.float32)
    params[1].grad = np.array([0.0, 4.0, 0.0], dtype=np.float32)
    norm = clip_grad_norm(params, max_norm=1.0)
    assert norm == pytest.approx(5.0)
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    assert total == pytest.approx(1.0, abs=1e-5)


def test_trainer_reduces_loss(tiny_stream):
    model = TransformerLM(tiny_config(vocab_size=256, seed=11))
    config = TrainConfig(steps=60, batch_size=8, seq_len=32, lr=3e-3,
                         log_every=10)
    trainer = Trainer(model, tiny_stream, config)
    summary = trainer.train()
    first_loss = trainer.history[0]["loss"]
    assert summary["final_loss"] < first_loss * 0.7


def test_trainer_eval(tiny_stream):
    model = TransformerLM(tiny_config(vocab_size=256, seed=12))
    config = TrainConfig(steps=5, batch_size=4, seq_len=32)
    trainer = Trainer(model, tiny_stream, config, val_stream=tiny_stream[:2000])
    summary = trainer.train()
    assert "val_loss" in summary and np.isfinite(summary["val_loss"])
