"""Fig. 3(b): weight-outlier statistics and PPL vs uniform bit-width.

Two claims from the paper's Observation II:

* ~99.7 % of weights are "normal"; outliers (~0.3 %) concentrate in
  specific channels;
* symmetric uniform quantization loses little accuracy from 16 down to
  3 bits but collapses at 2 bits.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import quantized_perplexity
from repro.experiments.common import ExperimentResult
from repro.models.stats import model_weight_stats, aggregate_outlier_ratio
from repro.models.zoo import load_model

BIT_WIDTHS = (8, 4, 3, 2)


def run(model_name: str = "llama-sim-7b", seq_len: int = 256,
        fast: bool = False) -> ExperimentResult:
    """Regenerate the weight-statistics figure."""
    zoo_model = load_model(model_name)
    model, tokenizer = zoo_model.model, zoo_model.tokenizer

    stats = model_weight_stats(model)
    outlier_ratio = aggregate_outlier_ratio(model)
    concentration = float(np.mean(
        [s.channel_concentration for s in stats.values()]))

    rows = [["outlier ratio (%)", round(100 * outlier_ratio, 2), 0.3],
            ["top-5% channel concentration (%)",
             round(100 * concentration, 1), "high"]]

    bit_widths = (3, 2) if fast else BIT_WIDTHS
    max_tokens = 8_000 if fast else 16_000
    ppl_fp16, _ = quantized_perplexity(model, tokenizer, "fp16",
                                       ("wikitext-sim",), seq_len,
                                       max_tokens=max_tokens)
    rows.append(["uniform 16b PPL", ppl_fp16.perplexity["wikitext-sim"], "-"])
    for bits in bit_widths:
        # Per-channel symmetric grid (the paper's Eq. 1 configuration).
        result, _ = quantized_perplexity(
            model, tokenizer, "uniform", ("wikitext-sim",), seq_len,
            method_kwargs={"bits": bits, "per_channel": True},
            max_tokens=max_tokens)
        rows.append([f"uniform {bits}b PPL",
                     result.perplexity["wikitext-sim"], "-"])

    return ExperimentResult(
        name="fig3b",
        title=f"Fig. 3(b): weight distribution and uniform-quantization "
              f"sensitivity ({model_name})",
        headers=["Quantity", "Measured", "Paper"],
        rows=rows,
        meta={"per_layer": {k: vars(v) for k, v in stats.items()},
              "outlier_ratio": outlier_ratio,
              "channel_concentration": concentration},
    )
