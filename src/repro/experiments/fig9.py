"""Fig. 9: normalised energy efficiency over the baseline accelerator.

The paper sweeps sequence lengths per model under the same on-chip buffer
size and reports FineQ's energy efficiency normalised to the MAC systolic
baseline: 1.760 / 1.815 / 1.787 per model, "up to 1.79x average".  Our
sequence axis is scaled 8x with the models (DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.hw.energy import EnergyModel, energy_efficiency
from repro.models.configs import ZOO_CONFIGS

PAPER_MEANS = {"llama-sim-3b": 1.760, "llama-sim-7b": 1.815,
               "llama-sim-13b": 1.787}
SEQ_LENGTHS = (32, 64, 128, 256)


def run(seq_lengths: tuple[int, ...] = SEQ_LENGTHS,
        energy_model: EnergyModel | None = None,
        fast: bool = False) -> ExperimentResult:
    """Energy-efficiency sweep across the model zoo."""
    energy_model = energy_model or EnergyModel()
    headers = ["Model"] + [f"seq {s}" for s in seq_lengths] + ["Mean", "Paper"]
    rows = []
    all_values = []
    for name, config in ZOO_CONFIGS.items():
        values = [energy_efficiency(config, s, energy_model)
                  for s in seq_lengths]
        all_values.extend(values)
        rows.append([name] + [round(v, 3) for v in values]
                    + [round(float(np.mean(values)), 3), PAPER_MEANS[name]])
    result = ExperimentResult(
        name="fig9",
        title="Fig. 9: normalised energy efficiency vs baseline accelerator",
        headers=headers,
        rows=rows,
        meta={"overall_mean": float(np.mean(all_values)),
              "paper_overall": 1.79,
              "seq_lengths": list(seq_lengths)},
    )
    return result
