"""Design-space ablations for the choices DESIGN.md calls out.

Sweeps, on the 7B stand-in:

* cluster size {2, 3, 6} — the paper's granularity argument;
* outlier threshold {2x, 4x, 8x} — the detection rule;
* outlier protection {3-bit, FP16} — the paper's Observation II
  (3 bits suffice; FP16 wastes memory);
* pair harmonization on/off — accuracy cost of the aligned index format.
"""

from __future__ import annotations

from repro.core.generalized import GeneralizedFineQ
from repro.eval.harness import clone_model
from repro.eval.perplexity import dataset_perplexity
from repro.experiments.common import ExperimentResult
from repro.models.zoo import load_model


VARIANTS: list[tuple[str, dict]] = [
    ("cluster=2", {"cluster_size": 2}),
    ("cluster=3 (paper)", {"cluster_size": 3}),
    ("cluster=6", {"cluster_size": 6}),
    ("threshold=2x", {"outlier_ratio": 2.0}),
    ("threshold=4x (paper)", {"outlier_ratio": 4.0}),
    ("threshold=8x", {"outlier_ratio": 8.0}),
    ("protect=fp16", {"protect_bits": 16}),
    ("protect=3b (paper)", {"protect_bits": 3}),
    ("no harmonization", {"harmonize": False}),
]


def run(model_name: str = "llama-sim-7b", seq_len: int = 256,
        fast: bool = False) -> ExperimentResult:
    """Sweep GeneralizedFineQ variants; report bits and perplexity."""
    zoo_model = load_model(model_name)
    variants = VARIANTS[:4] if fast else VARIANTS
    max_tokens = 6_000 if fast else 12_000
    rows = []
    for label, kwargs in variants:
        work = clone_model(zoo_model.model)
        quantizer = GeneralizedFineQ(**kwargs)
        report = quantizer.quantize_model(work)
        ppl = dataset_perplexity(work, zoo_model.tokenizer, "wikitext-sim",
                                 seq_len, max_tokens=max_tokens)
        rows.append([label, round(report.avg_bits, 3), ppl])
    return ExperimentResult(
        name="ablations",
        title=f"FineQ design-space ablations ({model_name}, wikitext-sim)",
        headers=["Variant", "Avg bits", "Wiki PPL (sim)"],
        rows=rows,
        meta={"model": model_name, "seq_len": seq_len},
    )
