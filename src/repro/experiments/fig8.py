"""Fig. 8: power breakdown of the FineQ PE array."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.area_power import AreaPowerModel, FIG8_POWER_SPLIT


def run(rows: int = 64, cols: int = 64, fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig. 8 power pie from the component model."""
    split = AreaPowerModel().fineq_power_breakdown(rows, cols)
    labels = {"acc": "ACC", "pe_array": "PE Array",
              "temporal_encoder": "Temporal Encoder"}
    result = ExperimentResult(
        name="fig8",
        title="Fig. 8: FineQ PE-array power breakdown",
        headers=["Component", "Power share (%)", "Paper (%)"],
        rows=[[labels[key], round(100 * split[key], 1),
               round(100 * FIG8_POWER_SPLIT[key], 1)]
              for key in ("acc", "pe_array", "temporal_encoder")],
        meta={"split": split, "paper": FIG8_POWER_SPLIT},
    )
    return result
