"""Table III: area and power breakdown of accelerator core modules."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.hw.area_power import AreaPowerModel, TABLE3_REFERENCE


def run(rows: int = 64, cols: int = 64, num_decoders: int = 64,
        fast: bool = False) -> ExperimentResult:
    """Regenerate Table III from the component model.

    ``fast`` is accepted for interface uniformity (the model is analytic,
    so there is no slow path).
    """
    model = AreaPowerModel()
    systolic = model.systolic_array(rows, cols)
    decoder = model.decoder_bank(num_decoders)
    fineq = model.fineq_pe_array(rows, cols)

    result = ExperimentResult(
        name="table3",
        title="Table III: area and power of accelerator core modules "
              f"({rows}x{cols} PEs, 45 nm, 400 MHz)",
        headers=["Architecture", "Setup", "Area (mm^2)", "Power (mW)"],
        rows=[
            ["Systolic Array", f"{rows}x{cols} PEs",
             round(systolic.area_mm2, 3), round(systolic.power_mw, 3)],
            ["FineQ Decoder", str(num_decoders),
             round(decoder.area_mm2, 3), round(decoder.power_mw, 3)],
            ["FineQ PE Array", f"{rows}x{cols} PEs",
             round(fineq.area_mm2, 3), round(fineq.power_mw, 3)],
        ],
        meta={
            "paper": TABLE3_REFERENCE,
            "area_reduction": model.area_reduction(rows, cols),
            "power_reduction": model.power_reduction(rows, cols),
            "paper_area_reduction": 0.612,
            "paper_power_reduction": 0.629,
        },
    )
    return result
