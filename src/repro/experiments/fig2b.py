"""Fig. 2(b): serving-memory layout (weights / KV cache / others).

The paper reports ~65 % weights, ~30 % KV cache, ~5 % others when
serving LLaMA-2-13B in FP16 on a 40 GB A100.  We reproduce the split for
the scaled 13B stand-in at a serving configuration with the equivalent
context-to-model ratio, then show the same accounting with FineQ's
2.33-bit weights — the memory headroom motivating the paper.
"""

from __future__ import annotations

from repro.core.layout import serving_memory_layout
from repro.experiments.common import ExperimentResult
from repro.models.configs import zoo_config

PAPER_SPLIT = {"weights": 0.65, "kv_cache": 0.30, "others": 0.05}

#: Serving configuration: batched decoding with a long context, scaled to
#: the simulation models (batch x seq chosen to match the paper's
#: context-to-model-size ratio, i.e. KV cache ~ half the weight pool).
SERVING_BATCH = 2
SERVING_SEQ = 224
#: Live activation buffers per token (serving engines keep fewer copies
#: than the training default of 4).
ACTIVATION_COPIES = 2.5


def run(model_name: str = "llama-sim-13b", batch: int = SERVING_BATCH,
        seq_len: int = SERVING_SEQ, fast: bool = False) -> ExperimentResult:
    """Regenerate the serving-memory pie for FP16 and FineQ weights."""
    config = zoo_config(model_name)
    rows = []
    layouts = {}
    for label, bits in (("FP16", 16.0), ("FineQ (2.33b)", 7.0 * 8 / 24)):
        layout = serving_memory_layout(config, batch=batch, seq_len=seq_len,
                                       weight_bits=bits,
                                       activation_copies=ACTIVATION_COPIES)
        layouts[label] = layout
        fractions = layout.fractions
        rows.append([
            label,
            round(layout.weight_bytes / 2**20, 2),
            round(layout.kv_cache_bytes / 2**20, 2),
            round(layout.other_bytes / 2**20, 2),
            round(100 * fractions["weights"], 1),
            round(100 * fractions["kv_cache"], 1),
            round(100 * fractions["others"], 1),
        ])
    return ExperimentResult(
        name="fig2b",
        title=f"Fig. 2(b): serving memory layout ({model_name}, "
              f"batch={batch}, seq={seq_len})",
        headers=["Weights", "W (MiB)", "KV (MiB)", "Other (MiB)",
                 "W %", "KV %", "Other %"],
        rows=rows,
        meta={"paper_split": PAPER_SPLIT, "batch": batch,
              "seq_len": seq_len,
              "fp16_total_mib": layouts["FP16"].total_bytes / 2**20},
    )
