"""Generate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Run as a module (uses the cached zoo; first run trains it):

    python -m repro.experiments.report [output-path]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import (table1, table2, table3, fig1, fig2b, fig3b,
                               fig8, fig9, ablations)

HEADER = """\
# EXPERIMENTS — paper vs. measured

Regenerated with `python -m repro.experiments.report` (also covered, with
assertions, by `pytest benchmarks/ --benchmark-only`).  All accuracy
numbers come from the simulation substrate described in DESIGN.md:
scaled LLaMA-style models trained on synthetic corpora with injected
channel outliers; "Paper" columns quote the original tables for
side-by-side shape comparison — absolute values are not expected to
match across substrates, orderings and factors are.

## Summary of shape agreement

| Artifact | Paper claim | Reproduced? |
|---|---|---|
| Fig. 1 | single-precision PPL explodes at 2 bits; FineQ stays near FP16 | yes — RTN/GPTQ cliff between 3 and 2 bits; FineQ within ~1.5x of FP16 |
| Table I | FineQ best low-bit method at ~2.33 bits; Uniform/RTN catastrophic; GPTQ-2b bad; OWQ/PB-LLM mid | largely — orderings FineQ < GPTQ < OWQ-like methods < RTN < Uniform hold; see deviations |
| Table II | FineQ robust across sequence lengths | yes — FineQ beats single-precision baselines at every length |
| Table III | PE-array area -61.2 %, power -62.9 % | yes — exact (model calibrated to these numbers, then validated structurally) |
| Fig. 8 | ACC 71.8 % / PE 25.9 % / encoder 2.3 % of array power | yes — exact |
| Fig. 9 | energy efficiency up to 1.79x average | yes — zoo mean ~1.8x, per-model means 1.65-1.97x |
| Fig. 2b | serving memory ~65 % weights / ~30 % KV / ~5 % other | yes — 66/29/5 at the scaled serving point |
| Fig. 3b | ~0.3 % outliers, channel-concentrated; uniform quantization fine to 3 bits, collapses at 2 | yes — sub-percent outlier ratio, concentration 3x the uniform share, 3b->2b cliff |

### Known deviations (scaled-substrate artifacts)

* **PB-LLM is too strong here**: binarizing 90 % of the weights is far
  less damaging to a small templated-text model than to a real LLM, and
  the 10 % FP16 salient weights cover all injected outliers.  In the
  paper PB-LLM trails OWQ; here it lands near FP16.
* **GPTQ-2b is bad but not catastrophic**: with 128-512-column Hessians
  and ample calibration, GPTQ's error compensation works much better
  than at LLaMA scale (where the paper measures 256-5090 PPL).
* **OWQ vs FineQ**: FineQ leads OWQ by 4-8x on the 3B/7B stand-ins; on
  the 13B stand-in (trained longest, so weight decay has partially
  washed out the injected outliers) every calibration/mixed method lands
  within ~1.2x of FineQ and OWQ edges it slightly — the paper reports a
  consistent ~2x FineQ lead.  The aggregate ordering (FineQ well ahead
  of OWQ on average) reproduces.

"""


def build_report() -> str:
    sections = [HEADER]

    def add(title: str, result, note: str = ""):
        sections.append(f"## {title}\n\n")
        if note:
            sections.append(note + "\n\n")
        sections.append(result.to_markdown())
        sections.append("\n\n")

    add("Fig. 1 — perplexity vs bit-width (7B stand-in, C4-sim)", fig1.run())
    add("Table I — perplexity across models and methods", table1.run(),
        note="Sequence length 256 (scaled stand-in for the paper's 2048).")
    add("Table II — sequence-length sensitivity (7B stand-in)", table2.run(),
        note="Sim lengths {32, 128, 256} map to the paper's {32, 256, 1024}.")
    add("Table III — accelerator area/power @ 45 nm, 400 MHz", table3.run())
    add("Fig. 8 — FineQ PE-array power breakdown", fig8.run())
    add("Fig. 9 — normalised energy efficiency", fig9.run())
    add("Fig. 2(b) — serving memory layout", fig2b.run())
    add("Fig. 3(b) — weight statistics and uniform-quantization cliff",
        fig3b.run())
    add("Design-space ablations (not in paper; design choices quantified)",
        ablations.run())
    return "".join(sections)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    out = Path(argv[0]) if argv else Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    out.write_text(build_report())
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
