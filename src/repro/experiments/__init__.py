"""One module per paper table/figure (see DESIGN.md experiment index).

Every module exposes ``run(fast=...)`` returning an
:class:`~repro.experiments.common.ExperimentResult`; the benchmarks in
``benchmarks/`` regenerate each artifact and assert the paper's
qualitative shape.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
