"""Table I: perplexity of quantized models on WikiText2/C4 stand-ins.

Methods and budgets follow the paper's setup: FP16 reference, RTN (2b),
Uniform (2b), GPTQ (2b), PB-LLM (10 % salient, ~2.7b), OWQ (g=128,
~2.25b), FineQ (~2.33b).  Sequence length is the scaled stand-in for the
paper's 2048 (DESIGN.md).
"""

from __future__ import annotations

from repro.data.tokenizer import WordTokenizer
from repro.eval.harness import run_method_sweep
from repro.experiments.common import ExperimentResult
from repro.models.zoo import load_model
from repro.nn.model import TransformerLM

METHODS: list[tuple[str, dict | None]] = [
    ("fp16", None),
    ("rtn", {"bits": 2}),
    ("uniform", {"bits": 2}),
    ("gptq", {"bits": 2}),
    ("pb-llm", None),
    ("owq", None),
    ("fineq", None),
]

#: Paper Table I values (Wiki, C4) per model for side-by-side reporting.
PAPER_TABLE1 = {
    "llama-sim-3b": {"fp16": (7.35, 9.58), "rtn": (1.6e5, 1.6e5),
                     "uniform": (6.3e6, 6.5e6), "gptq": (1675.56, 5090.50),
                     "pb-llm": (60.38, 123.04), "owq": (34.51, 75.78),
                     "fineq": (13.69, 19.04)},
    "llama-sim-7b": {"fp16": (6.61, 8.81), "rtn": (4.3e4, 7.4e5),
                     "uniform": (5.8e6, 5.8e6), "gptq": (256.17, 863.87),
                     "pb-llm": (28.59, 58.57), "owq": (22.95, 39.45),
                     "fineq": (10.94, 14.95)},
    "llama-sim-13b": {"fp16": (5.97, 8.19), "rtn": (6.3e4, 6.0e4),
                      "uniform": (2.6e5, 2.1e5), "gptq": (248.59, 506.32),
                      "pb-llm": (131.54, 208.34), "owq": (15.19, 26.03),
                      "fineq": (13.16, 18.55)},
}

DATASETS = ("wikitext-sim", "c4-sim")


def run_for_model(model: TransformerLM, tokenizer: WordTokenizer,
                  model_name: str, seq_len: int = 256,
                  max_tokens: int | None = 16_000) -> list[list]:
    """Sweep all Table I methods on one model; returns table rows."""
    results = run_method_sweep(model, tokenizer, METHODS,
                               datasets=DATASETS, seq_len=seq_len,
                               max_tokens=max_tokens)
    rows = []
    for result in results:
        paper = PAPER_TABLE1.get(model_name, {}).get(result.method)
        rows.append([
            model_name, result.method, round(result.avg_bits, 2),
            result.perplexity["wikitext-sim"], result.perplexity["c4-sim"],
            paper[0] if paper else "-", paper[1] if paper else "-",
        ])
    return rows


def run(models: tuple[str, ...] = ("llama-sim-3b", "llama-sim-7b",
                                   "llama-sim-13b"),
        seq_len: int = 256, fast: bool = False) -> ExperimentResult:
    """Regenerate Table I over the cached model zoo."""
    if fast:
        models = models[:1]
    rows = []
    for name in models:
        zoo_model = load_model(name)
        rows.extend(run_for_model(zoo_model.model, zoo_model.tokenizer,
                                  name, seq_len=seq_len,
                                  max_tokens=8_000 if fast else 16_000))
    return ExperimentResult(
        name="table1",
        title=f"Table I: perplexity at seq_len={seq_len} "
              "(scaled stand-in for the paper's 2048)",
        headers=["Model", "Method", "Avg bits", "Wiki (sim)", "C4 (sim)",
                 "Paper Wiki", "Paper C4"],
        rows=rows,
        meta={"seq_len": seq_len, "datasets": list(DATASETS)},
    )
