"""Fig. 1: perplexity vs bit-width on the LLaMA-2-7B / C4 stand-in.

RTN and GPTQ are swept over {16, 8, 4, 3, 2} bits; PB-LLM (2.7b),
OWQ (2.25b) and FineQ (2.33b) contribute their fixed-budget points.
The paper's qualitative shape: all single-precision methods track FP16
down to 4-3 bits, then explode at 2 bits, while FineQ stays within a
small factor of FP16.
"""

from __future__ import annotations

from repro.eval.harness import quantized_perplexity, default_calibration_batches
from repro.experiments.common import ExperimentResult
from repro.models.zoo import load_model

BIT_WIDTHS = (8, 4, 3, 2)
DATASET = ("c4-sim",)

#: Paper Fig. 1 reference points (C4 perplexity, LLaMA-2-7B).
PAPER_FIG1 = {
    ("fp16", 16): 8.80, ("rtn", 2): 7.4e5, ("gptq", 2): 863.87,
    ("pb-llm", 2.7): 58.57, ("owq", 2.25): 39.45, ("fineq", 2.33): 14.95,
}


def run(model_name: str = "llama-sim-7b", seq_len: int = 256,
        fast: bool = False) -> ExperimentResult:
    """Regenerate the Fig. 1 bit-width sweep."""
    zoo_model = load_model(model_name)
    model, tokenizer = zoo_model.model, zoo_model.tokenizer
    max_tokens = 8_000 if fast else 16_000
    bit_widths = (4, 2) if fast else BIT_WIDTHS
    calibration = default_calibration_batches(model, tokenizer)

    rows = []

    def add(method: str, bits_label: float, kwargs: dict | None):
        result, _ = quantized_perplexity(
            model, tokenizer, method, DATASET, seq_len,
            method_kwargs=kwargs, calibration=calibration,
            max_tokens=max_tokens)
        paper = PAPER_FIG1.get((method, bits_label), "-")
        rows.append([method, bits_label, round(result.avg_bits, 2),
                     result.perplexity["c4-sim"], paper])

    add("fp16", 16, None)
    for bits in bit_widths:
        add("rtn", bits, {"bits": bits})
        add("gptq", bits, {"bits": bits})
    if not fast:
        add("pb-llm", 2.7, None)
        add("owq", 2.25, None)
    add("fineq", 2.33, None)

    return ExperimentResult(
        name="fig1",
        title=f"Fig. 1: perplexity vs bit-width ({model_name}, c4-sim)",
        headers=["Method", "Nominal bits", "Avg bits", "PPL (sim)",
                 "Paper PPL"],
        rows=rows,
        meta={"model": model_name, "seq_len": seq_len},
    )
