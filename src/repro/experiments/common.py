"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.tables import format_table, format_markdown


@dataclass
class ExperimentResult:
    """Tabular output of one experiment plus free-form metadata."""

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def to_text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def to_markdown(self) -> str:
        return format_markdown(self.headers, self.rows)

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by(self, header: str, value) -> list:
        index = self.headers.index(header)
        for row in self.rows:
            if row[index] == value:
                return row
        raise KeyError(f"no row with {header}={value!r}")
