"""Table II: perplexity across sequence lengths (LLaMA-2-7B stand-in).

The paper sweeps {32, 256, 1024} at 2048-token training context; our
models use a scaled context, so the sweep is {32, 128, 256} (DESIGN.md).
"""

from __future__ import annotations

from repro.eval.harness import run_method_sweep
from repro.experiments.common import ExperimentResult
from repro.experiments.table1 import METHODS, DATASETS
from repro.models.zoo import load_model

SEQ_LENGTHS = (32, 128, 256)

#: Paper Table II (Wiki, C4) per method per paper-seq {32, 256, 1024}.
PAPER_TABLE2 = {
    "fp16": [(39.19, 22.14), (10.90, 11.21), (7.35, 9.19)],
    "rtn": [(4.2e4, 3.5e4), (5.3e4, 5.5e4), (5.0e4, 6.8e4)],
    "uniform": [(4.3e6, 5.3e6), (5.0e6, 5.4e6), (5.4e6, 5.3e6)],
    "gptq": [(2.0e5, 1.7e5), (1.5e5, 1432.38), (2.3e5, 1289.9)],
    "pb-llm": [(286.13, 271.18), (52.60, 73.19), (32.41, 58.97)],
    "owq": [(5.4e4, 6.3e4), (71.58, 81.01), (29.53, 44.74)],
    "fineq": [(64.47, 26.68), (20.89, 18.46), (12.52, 15.77)],
}


def run(model_name: str = "llama-sim-7b",
        seq_lengths: tuple[int, ...] = SEQ_LENGTHS,
        fast: bool = False) -> ExperimentResult:
    """Regenerate Table II on the 7B stand-in."""
    zoo_model = load_model(model_name)
    if fast:
        seq_lengths = seq_lengths[:2]
    rows = []
    for seq_index, seq_len in enumerate(seq_lengths):
        results = run_method_sweep(zoo_model.model, zoo_model.tokenizer,
                                   METHODS, datasets=DATASETS,
                                   seq_len=seq_len,
                                   max_tokens=8_000 if fast else 16_000)
        for result in results:
            paper = PAPER_TABLE2.get(result.method)
            paper_pair = paper[seq_index] if (paper and seq_index < len(paper)) else None
            rows.append([
                seq_len, result.method, round(result.avg_bits, 2),
                result.perplexity["wikitext-sim"],
                result.perplexity["c4-sim"],
                paper_pair[0] if paper_pair else "-",
                paper_pair[1] if paper_pair else "-",
            ])
    return ExperimentResult(
        name="table2",
        title=f"Table II: sequence-length sensitivity ({model_name})",
        headers=["SeqLen", "Method", "Avg bits", "Wiki (sim)", "C4 (sim)",
                 "Paper Wiki", "Paper C4"],
        rows=rows,
        meta={"model": model_name, "seq_lengths": list(seq_lengths),
              "paper_seq_lengths": [32, 256, 1024]},
    )
