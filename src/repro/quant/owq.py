"""OWQ: outlier-aware weight quantization (paper baseline 5).

Lee et al. (2024): a small set of *weak columns* (input channels whose
quantization damage, weighted by the activation Hessian diagonal, is
largest) is kept in FP16; every other weight is quantized on an
asymmetric grid with group size 128 along the input dimension.  With
g=128 the paper quotes 2.25 average bits (2-bit payload + 0.25 bits of
per-group scale/zero overhead); weak-column storage is itemised in
``detail`` as in the original paper's accounting.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord


class OWQQuantizer(Quantizer):
    """Mixed-precision: FP16 weak columns + 2-bit grouped base grid."""

    name = "owq"
    needs_calibration = True

    def __init__(self, bits: int = 2, group_size: int = 128,
                 weak_fraction: float = 0.01):
        self.bits = bits
        self.group_size = group_size
        self.weak_fraction = weak_fraction

    def _column_sensitivity(self, weight: np.ndarray,
                            inputs: np.ndarray | None) -> np.ndarray:
        """OWQ's ranking: Hessian diagonal x squared column norm.

        Lee et al. rank input channels by the Hessian-weighted
        perturbation they would suffer; for a min/max grid the damage a
        column inflicts (and absorbs) scales with its squared norm, so
        ``H_jj * ||W_j||^2`` ranks the channel-aligned weight outliers
        first — the behaviour OWQ exhibits on real LLMs.
        """
        w = np.asarray(weight, dtype=np.float64)
        damage = (w ** 2).sum(axis=0)
        if inputs is not None:
            x = np.asarray(inputs, dtype=np.float64)
            hdiag = 2.0 * (x * x).mean(axis=0)
            damage = damage * hdiag
        return damage

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        w = np.asarray(weight, dtype=np.float64)
        in_features = w.shape[1]
        num_weak = max(1, int(round(self.weak_fraction * in_features)))
        sensitivity = self._column_sensitivity(w, inputs)
        weak_columns = np.argsort(-sensitivity)[:num_weak]

        base = w.copy()
        base[:, weak_columns] = 0.0  # excluded from grid fitting
        dequantized = _grouped_asymmetric(base, self.bits, self.group_size)
        dequantized[:, weak_columns] = w[:, weak_columns]  # FP16 passthrough

        weak_ratio = num_weak / in_features
        groups_per_row = int(np.ceil(in_features / self.group_size))
        record = QuantRecord(
            method=self.name,
            bits_payload=float(self.bits),
            # FP16 scale + zero per group of `group_size` weights.
            bits_metadata=32.0 * groups_per_row / in_features,
            weight_shape=weight.shape,
            detail={"group_size": self.group_size,
                    "weak_columns": int(num_weak),
                    "weak_ratio": float(weak_ratio),
                    "weak_fp16_bits_per_weight": 16.0 * weak_ratio,
                    "paper_convention_bits": self.bits + 32.0 / self.group_size},
        )
        return dequantized.astype(np.float32), record


def _grouped_asymmetric(weight: np.ndarray, bits: int, group_size: int
                        ) -> np.ndarray:
    """Asymmetric min/max quantization per (row, input-group) block."""
    w = np.asarray(weight, dtype=np.float64)
    out_features, in_features = w.shape
    levels = 2 ** bits - 1
    result = np.empty_like(w)
    for start in range(0, in_features, group_size):
        block = w[:, start:start + group_size]
        w_min = block.min(axis=1, keepdims=True)
        w_max = block.max(axis=1, keepdims=True)
        span = w_max - w_min
        scale = np.where(span > 0, span / levels, 1.0)
        zero = np.round(-w_min / scale)
        codes = np.clip(np.round(block / scale) + zero, 0, levels)
        result[:, start:start + group_size] = (codes - zero) * scale
    return result
