"""Name -> quantizer factory registry.

The registry decouples experiment configuration (method names and kwargs)
from the implementing classes; :mod:`repro.core` registers FineQ here so
all seven of the paper's methods are reachable through one interface.
"""

from __future__ import annotations

from typing import Callable

from repro.quant.base import Quantizer
from repro.quant.uniform import UniformQuantizer
from repro.quant.rtn import RTNQuantizer
from repro.quant.gptq import GPTQQuantizer
from repro.quant.pbllm import PBLLMQuantizer
from repro.quant.owq import OWQQuantizer
from repro.quant.awq import AWQQuantizer

_REGISTRY: dict[str, Callable[..., Quantizer]] = {}


def register(name: str, factory: Callable[..., Quantizer]) -> None:
    """Register a quantizer factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"quantizer {name!r} already registered")
    _REGISTRY[name] = factory


def get_quantizer(name: str, **kwargs) -> Quantizer:
    """Instantiate a quantizer by registry name."""
    _ensure_core_registered()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown quantizer {name!r}; "
                       f"available: {available_methods()}") from None
    return factory(**kwargs)


def available_methods() -> list[str]:
    _ensure_core_registered()
    return sorted(_REGISTRY)


def _ensure_core_registered() -> None:
    """Import repro.core lazily so it can self-register without cycles."""
    if "fineq" not in _REGISTRY:
        import repro.core  # noqa: F401  (registers "fineq" on import)


register("uniform", UniformQuantizer)
register("rtn", RTNQuantizer)
register("gptq", GPTQQuantizer)
register("pb-llm", PBLLMQuantizer)
register("owq", OWQQuantizer)
register("awq", AWQQuantizer)
