"""RTN: round-to-nearest on a per-row asymmetric grid (paper baseline 2).

"Rounds all weights to the nearest quantized value on a fully uniform,
asymmetric per-row grid" (paper Sec. V-A).  Per-row min/max adapts to
channel-level variance, but within-row spikes still stretch the grid so
at 2 bits the bulk of each affected row collapses onto one or two levels.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord
from repro.quant.grid import asymmetric_quantize


class RTNQuantizer(Quantizer):
    """Per-output-channel asymmetric round-to-nearest."""

    name = "rtn"

    def __init__(self, bits: int = 2):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.bits = bits

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        dequantized, codes, _scale, _zero = asymmetric_quantize(
            weight, self.bits, axis=0)
        record = QuantRecord(
            method=self.name,
            bits_payload=float(self.bits),
            # FP16 scale + zero point per row.
            bits_metadata=32.0 / weight.shape[1],
            weight_shape=weight.shape,
            detail={"bits": self.bits,
                    "levels_used": int(len(np.unique(codes)))},
        )
        return dequantized, record
