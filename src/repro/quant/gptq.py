"""GPTQ: Hessian-aware one-shot quantization (paper baseline 3).

Implements the column-wise optimal-brain-quantization update of Frantar
et al. (2022): columns are quantized in order; after each column the
remaining (not yet quantized) columns are corrected using the inverse
Hessian of the layer inputs, so later columns absorb the rounding error.
The per-row grid itself is the same asymmetric min/max grid as RTN.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord
from repro.quant.calibration import input_hessian
from repro.quant.grid import asymmetric_params, quantize_with_params


class GPTQQuantizer(Quantizer):
    """GPTQ with Cholesky-based error compensation."""

    name = "gptq"
    needs_calibration = True

    def __init__(self, bits: int = 2, damping: float = 0.01,
                 act_order: bool = False):
        self.bits = bits
        self.damping = damping
        self.act_order = act_order

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        if inputs is None:
            raise ValueError("GPTQ requires calibration inputs")
        w = np.asarray(weight, dtype=np.float64).copy()
        out_features, in_features = w.shape
        hessian = input_hessian(inputs, damping=self.damping)

        # Activation ordering: quantize the most sensitive columns first,
        # while the most error-absorbing capacity remains.
        if self.act_order:
            order = np.argsort(-np.diag(hessian))
        else:
            order = np.arange(in_features)
        inverse_order = np.argsort(order)
        w = w[:, order]
        hessian = hessian[np.ix_(order, order)]

        # Grid parameters are fixed from the original weights (per row).
        scale, zero = asymmetric_params(w, self.bits, axis=0)

        hinv = _stable_cholesky_inverse(hessian)
        quantized = np.zeros_like(w)
        for col in range(in_features):
            column = w[:, col]
            q = quantize_with_params(column[:, None], scale, zero,
                                     self.bits)[:, 0]
            quantized[:, col] = q
            diag = hinv[col, col]
            err = (column - q) / diag
            if col + 1 < in_features:
                w[:, col + 1:] -= np.outer(err, hinv[col, col + 1:])

        quantized = quantized[:, inverse_order]
        record = QuantRecord(
            method=self.name,
            bits_payload=float(self.bits),
            bits_metadata=32.0 / in_features,  # FP16 scale+zero per row
            weight_shape=weight.shape,
            detail={"bits": self.bits, "act_order": self.act_order,
                    "damping": self.damping},
        )
        return quantized.astype(np.float32), record


def _stable_cholesky_inverse(hessian: np.ndarray) -> np.ndarray:
    """Upper-Cholesky factor of ``H^-1`` (the form GPTQ's update uses).

    Falls back to progressively stronger damping if the matrix is not
    positive definite (possible with few calibration samples).
    """
    damping = 0.0
    eye = np.eye(hessian.shape[0])
    mean_diag = float(np.mean(np.diag(hessian))) or 1.0
    for attempt in range(6):
        try:
            inv = np.linalg.inv(hessian + damping * eye)
            # Upper factor U with H^-1 = U^T U (as in the reference GPTQ).
            return np.linalg.cholesky(inv).T
        except np.linalg.LinAlgError:
            damping = mean_diag * (10.0 ** (attempt - 3))
    raise np.linalg.LinAlgError("could not stabilise GPTQ Hessian")
