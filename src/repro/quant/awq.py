"""AWQ: activation-aware weight quantization (Lin et al., 2024).

Discussed in the paper's related work as a single-precision method that
"protects the salient weights by observing the distribution of activation
values".  Before quantizing, every input column is scaled by
``s_j = (mean |x_j|)^alpha`` (normalised); the quantization grid then
spends its resolution on the activation-salient channels, and the scales
are folded back at dequantization.  Like GPTQ, it degrades sharply at
2 bits — AWQ protects *channels*, not the intra-channel outliers FineQ
targets.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord
from repro.quant.owq import _grouped_asymmetric


class AWQQuantizer(Quantizer):
    """Per-input-channel activation-aware scaling + grouped RTN."""

    name = "awq"
    needs_calibration = True

    def __init__(self, bits: int = 2, group_size: int = 128,
                 alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.bits = bits
        self.group_size = group_size
        self.alpha = alpha

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        w = np.asarray(weight, dtype=np.float64)
        if inputs is not None and len(inputs):
            activation_scale = np.abs(np.asarray(inputs, dtype=np.float64)
                                      ).mean(axis=0)
        else:
            activation_scale = np.ones(w.shape[1])
        scales = np.power(np.maximum(activation_scale, 1e-8), self.alpha)
        scales /= np.exp(np.mean(np.log(scales)))  # geometric-mean normalise

        scaled = w * scales[None, :]
        dequantized = _grouped_asymmetric(scaled, self.bits, self.group_size)
        dequantized = dequantized / scales[None, :]

        groups_per_row = int(np.ceil(w.shape[1] / self.group_size))
        record = QuantRecord(
            method=self.name,
            bits_payload=float(self.bits),
            # Per-group FP16 scale+zero; the per-channel AWQ scales fold
            # into the stored grid parameters at deployment.
            bits_metadata=32.0 * groups_per_row / w.shape[1],
            weight_shape=weight.shape,
            detail={"alpha": self.alpha, "group_size": self.group_size},
        )
        return dequantized.astype(np.float32), record
