"""Weight-quantization framework and the paper's five baselines.

Every method implements :class:`repro.quant.base.Quantizer`: it rewrites
``Linear.weight`` with the dequantized (simulated-quantization) values and
attaches a :class:`~repro.quant.base.QuantRecord` with honest bit
accounting.  The paper's own method lives in :mod:`repro.core` and plugs
into the same interface.
"""

from repro.quant.base import Quantizer, QuantRecord, ModelQuantReport
from repro.quant.grid import (symmetric_quantize, asymmetric_quantize,
                              symmetric_grid_size, dequantize_asymmetric)
from repro.quant.calibration import (collect_layer_inputs, calibration_batches,
                                     sequential_quantize)
from repro.quant.uniform import UniformQuantizer
from repro.quant.rtn import RTNQuantizer
from repro.quant.gptq import GPTQQuantizer
from repro.quant.pbllm import PBLLMQuantizer
from repro.quant.owq import OWQQuantizer
from repro.quant.awq import AWQQuantizer
from repro.quant.registry import get_quantizer, available_methods, register

__all__ = [
    "Quantizer", "QuantRecord", "ModelQuantReport", "symmetric_quantize",
    "asymmetric_quantize", "symmetric_grid_size", "dequantize_asymmetric",
    "collect_layer_inputs", "calibration_batches", "sequential_quantize",
    "UniformQuantizer",
    "RTNQuantizer", "GPTQQuantizer", "PBLLMQuantizer", "OWQQuantizer",
    "AWQQuantizer", "get_quantizer", "available_methods", "register",
]
