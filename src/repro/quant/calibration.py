"""Calibration-activation collection for GPTQ / OWQ.

Two modes:

* :func:`collect_layer_inputs` — one forward pass over calibration
  batches recording the FP inputs of every quantizable linear;
* :func:`sequential_quantize` — the faithful GPTQ protocol: blocks are
  quantized in order and later blocks are calibrated on activations from
  the already-quantized prefix, so quantization error compounds through
  depth exactly as in the reference implementations.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import no_grad, Tensor
from repro.data.loader import BatchLoader
from repro.nn.layers import Linear
from repro.nn.model import TransformerLM


def calibration_batches(stream: np.ndarray, num_tokens: int = 4096,
                        seq_len: int = 128, seed: int = 0) -> np.ndarray:
    """Cut ``num_tokens`` of calibration windows from a token stream."""
    loader = BatchLoader(stream, batch_size=max(1, num_tokens // seq_len),
                         seq_len=seq_len, seed=seed)
    inputs, _ = next(iter(loader.epoch(0)))
    return inputs


def collect_layer_inputs(model: TransformerLM, batches: np.ndarray,
                         max_samples_per_layer: int = 8192
                         ) -> dict[str, np.ndarray]:
    """Run ``batches`` through ``model``, capturing each linear's inputs.

    Returns ``{layer_name: (n_samples, in_features)}`` float64 arrays,
    sub-sampled deterministically if they exceed ``max_samples_per_layer``.
    """
    layers = model.quantizable_linears()
    captured: dict[str, list[np.ndarray]] = {name: [] for name, _ in layers}

    def make_forward(name: str, layer: Linear):
        plain_forward = Linear.forward
        def capturing_forward(x: Tensor) -> Tensor:
            captured[name].append(
                x.data.reshape(-1, layer.in_features).astype(np.float64))
            return plain_forward(layer, x)
        return capturing_forward

    try:
        for name, layer in layers:
            # Shadow the class method with an instance attribute.
            layer.forward = make_forward(name, layer)
        with no_grad():
            model(np.asarray(batches))
    finally:
        for _, layer in layers:
            vars(layer).pop("forward", None)

    result: dict[str, np.ndarray] = {}
    for name, chunks in captured.items():
        data = np.concatenate(chunks, axis=0)
        if data.shape[0] > max_samples_per_layer:
            step = data.shape[0] // max_samples_per_layer
            data = data[::step][:max_samples_per_layer]
        result[name] = data
    return result


def sequential_quantize(model: TransformerLM, quantizer, batches: np.ndarray,
                        max_samples_per_layer: int = 8192):
    """Quantize ``model`` block by block with error propagation.

    For each transformer block, calibration inputs are re-collected from
    the *current* model (earlier blocks already quantized), then the
    block's linear layers are quantized.  Returns a
    :class:`~repro.quant.base.ModelQuantReport`.
    """
    from repro.quant.base import ModelQuantReport  # local: avoid cycle

    by_block: dict[int, list[tuple[str, Linear]]] = {}
    for name, layer in model.quantizable_linears():
        block_index = int(name.split(".")[1])
        by_block.setdefault(block_index, []).append((name, layer))

    records = {}
    for block_index in sorted(by_block):
        layers = by_block[block_index]
        inputs = _collect_for(model, layers, batches, max_samples_per_layer)
        for name, layer in layers:
            dequantized, record = quantizer.quantize_weight(
                layer.weight.data, inputs=inputs[name])
            layer.weight.data = dequantized.astype(np.float32)
            layer.quant_record = record
            records[name] = record
    return ModelQuantReport(method=quantizer.name, records=records)


def _collect_for(model: TransformerLM, layers: list[tuple[str, Linear]],
                 batches: np.ndarray, max_samples: int) -> dict[str, np.ndarray]:
    """Capture inputs for a subset of layers with one forward pass."""
    captured: dict[str, list[np.ndarray]] = {name: [] for name, _ in layers}

    def make_forward(name: str, layer: Linear):
        plain_forward = Linear.forward
        def capturing_forward(x):
            captured[name].append(
                x.data.reshape(-1, layer.in_features).astype(np.float64))
            return plain_forward(layer, x)
        return capturing_forward

    try:
        for name, layer in layers:
            layer.forward = make_forward(name, layer)
        with no_grad():
            model(np.asarray(batches))
    finally:
        for _, layer in layers:
            vars(layer).pop("forward", None)

    result = {}
    for name, chunks in captured.items():
        data = np.concatenate(chunks, axis=0)
        if data.shape[0] > max_samples:
            step = data.shape[0] // max_samples
            data = data[::step][:max_samples]
        result[name] = data
    return result


def input_hessian(inputs: np.ndarray, damping: float = 0.01) -> np.ndarray:
    """Damped Gauss-Newton Hessian ``2 X^T X / n + lambda I`` (GPTQ's H)."""
    x = np.asarray(inputs, dtype=np.float64)
    n = max(1, x.shape[0])
    hessian = 2.0 * (x.T @ x) / n
    mean_diag = float(np.mean(np.diag(hessian)))
    lam = damping * (mean_diag if mean_diag > 0 else 1.0)
    hessian[np.diag_indices_from(hessian)] += lam
    return hessian
