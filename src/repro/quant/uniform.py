"""Uniform: symmetric per-tensor quantization (paper baseline 1).

One symmetric grid for the whole matrix — the coarsest granularity, and
the baseline the paper shows collapsing hardest at 2 bits because a single
channel-level outlier inflates the scale for every weight.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord
from repro.quant.grid import symmetric_quantize


class UniformQuantizer(Quantizer):
    """Symmetric uniform quantization.

    Per-tensor by default (the paper's Table I baseline).  With
    ``per_channel=True`` one symmetric scale per input channel is used —
    the grid of the paper's Eq. 1 and the configuration behind Fig. 3(b)'s
    bit-width sensitivity sweep (per-tensor grids are destroyed by
    channel-level outliers at *any* low width, so the 16->3-bit plateau
    the paper shows is only visible per channel).
    """

    name = "uniform"

    def __init__(self, bits: int = 2, per_channel: bool = False):
        if bits < 2:
            raise ValueError("uniform symmetric grid needs bits >= 2")
        self.bits = bits
        self.per_channel = per_channel

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        axis = 1 if self.per_channel else None
        dequantized, codes, _scale = symmetric_quantize(weight, self.bits,
                                                        axis=axis)
        if self.per_channel:
            metadata = 16.0 / weight.shape[0]  # FP16 scale per input column
        else:
            metadata = 16.0 / weight.size      # one FP16 scale per tensor
        record = QuantRecord(
            method=self.name,
            bits_payload=float(self.bits),
            bits_metadata=metadata,
            weight_shape=weight.shape,
            detail={"bits": self.bits, "per_channel": self.per_channel,
                    "codes_nonzero": int((codes != 0).sum())},
        )
        return dequantized, record
