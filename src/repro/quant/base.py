"""Quantizer interface and bit accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.nn.model import TransformerLM


@dataclass
class QuantRecord:
    """Bit accounting for one quantized weight matrix.

    ``bits_payload`` counts the quantized weight codes themselves;
    ``bits_metadata`` counts scales/zeros/format indices, both per weight.
    ``avg_bits`` is their sum — the honest storage cost.  Papers often
    quote payload-centric conventions (e.g. PB-LLM's "2.7 bits"); the
    per-method docstrings note where our accounting differs.
    """

    method: str
    bits_payload: float
    bits_metadata: float
    weight_shape: tuple[int, int]
    detail: dict = field(default_factory=dict)

    @property
    def avg_bits(self) -> float:
        return self.bits_payload + self.bits_metadata


@dataclass
class ModelQuantReport:
    """Aggregated result of quantizing a whole model."""

    method: str
    records: dict[str, QuantRecord]

    @property
    def avg_bits(self) -> float:
        """Weight-count-weighted average bits across quantized layers."""
        total_bits = 0.0
        total_weights = 0
        for record in self.records.values():
            n = int(np.prod(record.weight_shape))
            total_bits += record.avg_bits * n
            total_weights += n
        return total_bits / total_weights if total_weights else 0.0

    def total_bytes(self) -> int:
        total_bits = sum(r.avg_bits * int(np.prod(r.weight_shape))
                         for r in self.records.values())
        return int(np.ceil(total_bits / 8))


class Quantizer(abc.ABC):
    """Base class: quantize single matrices or a whole model in place."""

    #: Registry name; subclasses override.
    name: str = "base"
    #: Whether :meth:`quantize_model` needs calibration activations.
    needs_calibration: bool = False

    @abc.abstractmethod
    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        """Return (dequantized weight, record).

        ``inputs`` is an ``(n_samples, in_features)`` activation matrix for
        calibration-based methods; magnitude-only methods ignore it.
        """

    def quantize_model(self, model: TransformerLM,
                       layer_inputs: dict[str, np.ndarray] | None = None
                       ) -> ModelQuantReport:
        """Quantize every quantizable linear layer of ``model`` in place."""
        if self.needs_calibration and not layer_inputs:
            raise ValueError(f"{self.name} requires calibration layer_inputs; "
                             "use repro.quant.collect_layer_inputs")
        records: dict[str, QuantRecord] = {}
        for layer_name, layer in model.quantizable_linears():
            inputs = layer_inputs.get(layer_name) if layer_inputs else None
            dequantized, record = self.quantize_weight(layer.weight.data,
                                                       inputs=inputs)
            if dequantized.shape != layer.weight.data.shape:
                raise AssertionError(f"{self.name} changed shape of {layer_name}")
            layer.weight.data = dequantized.astype(np.float32)
            layer.quant_record = record
            records[layer_name] = record
        return ModelQuantReport(method=self.name, records=records)
