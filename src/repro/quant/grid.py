"""Uniform quantization grids (paper Eq. 1 and the asymmetric variant).

Symmetric (sign-magnitude) grids follow the paper's Equation 1:

    s = max(|x|) / (2^(b-1) - 1),   x_q = round(x / s)

giving integer levels in ``[-(2^(b-1)-1), 2^(b-1)-1]`` — e.g. {-1, 0, 1}
for 2 bits and {-3 .. 3} for 3 bits.  Asymmetric grids use a min/max
affine mapping with ``2^b`` levels (used by RTN/GPTQ/OWQ baselines).
"""

from __future__ import annotations

import numpy as np


def symmetric_grid_size(bits: int) -> int:
    """Largest representable magnitude on the paper's symmetric grid."""
    if bits < 2:
        raise ValueError(f"symmetric grid needs bits >= 2, got {bits}")
    return 2 ** (bits - 1) - 1


def symmetric_quantize(weight: np.ndarray, bits: int, axis: int | None = None
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize on the paper's symmetric grid.

    Returns ``(dequantized, codes, scale)``.  ``axis`` selects the scaling
    granularity: ``None`` for per-tensor, otherwise scales are computed by
    reducing over the remaining axes (e.g. ``axis=0`` on a 2-D weight gives
    one scale per row / output channel).
    """
    w = np.asarray(weight, dtype=np.float64)
    qmax = symmetric_grid_size(bits)
    if axis is None:
        max_abs = np.abs(w).max()
        scale = np.asarray(max_abs / qmax if max_abs > 0 else 1.0)
        codes = np.clip(np.round(w / scale), -qmax, qmax)
        return (codes * scale).astype(np.float32), codes.astype(np.int32), scale
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    max_abs = np.abs(w).max(axis=reduce_axes, keepdims=True)
    scale = np.where(max_abs > 0, max_abs / qmax, 1.0)
    codes = np.clip(np.round(w / scale), -qmax, qmax)
    return (codes * scale).astype(np.float32), codes.astype(np.int32), scale


def asymmetric_params(weight: np.ndarray, bits: int, axis: int = 0
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Per-slice (scale, zero-point) for a min/max affine grid."""
    w = np.asarray(weight, dtype=np.float64)
    levels = 2 ** bits - 1
    reduce_axes = tuple(i for i in range(w.ndim) if i != axis)
    w_min = w.min(axis=reduce_axes, keepdims=True)
    w_max = w.max(axis=reduce_axes, keepdims=True)
    span = w_max - w_min
    scale = np.where(span > 0, span / levels, 1.0)
    zero = np.round(-w_min / scale)
    return scale, zero


def asymmetric_quantize(weight: np.ndarray, bits: int, axis: int = 0
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Min/max affine quantization; returns (dequantized, codes, scale, zero)."""
    w = np.asarray(weight, dtype=np.float64)
    levels = 2 ** bits - 1
    scale, zero = asymmetric_params(w, bits, axis=axis)
    codes = np.clip(np.round(w / scale) + zero, 0, levels)
    dequantized = (codes - zero) * scale
    return dequantized.astype(np.float32), codes.astype(np.int32), scale, zero


def dequantize_asymmetric(codes: np.ndarray, scale: np.ndarray,
                          zero: np.ndarray) -> np.ndarray:
    """Inverse of :func:`asymmetric_quantize` given stored parameters."""
    return ((np.asarray(codes, dtype=np.float64) - zero) * scale).astype(np.float32)


def quantize_with_params(weight: np.ndarray, scale: np.ndarray,
                         zero: np.ndarray, bits: int) -> np.ndarray:
    """Round ``weight`` onto an existing affine grid (used by GPTQ)."""
    levels = 2 ** bits - 1
    codes = np.clip(np.round(np.asarray(weight, dtype=np.float64) / scale) + zero,
                    0, levels)
    return ((codes - zero) * scale)
