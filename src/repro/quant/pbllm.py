"""PB-LLM: partial binarization (paper baseline 4).

Shang et al. (2023): a salient fraction of weights (10 % in the paper's
comparison) is preserved in high precision; the remaining 90 % are
binarized to ``sign(w) * mean(|w|)`` per output channel.  The paper quotes
the resulting budget as 2.7 average bits (0.9 x 1 + 0.1 x 16 payload plus
format overhead); our record additionally itemises the salient-position
bitmap cost in ``detail``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.quant.base import Quantizer, QuantRecord


class PBLLMQuantizer(Quantizer):
    """Magnitude-salient partial binarization."""

    name = "pb-llm"

    def __init__(self, salient_fraction: float = 0.10):
        if not 0.0 <= salient_fraction < 1.0:
            raise ValueError("salient_fraction must be in [0, 1)")
        self.salient_fraction = salient_fraction

    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        w = np.asarray(weight, dtype=np.float64)
        flat = np.abs(w).reshape(-1)
        k = int(round(self.salient_fraction * flat.size))
        if k > 0:
            threshold = np.partition(flat, flat.size - k)[flat.size - k]
            salient = np.abs(w) >= threshold
        else:
            salient = np.zeros_like(w, dtype=bool)

        # Binarize non-salient weights per output channel.  Rows that are
        # entirely salient produce an empty slice; their scale is unused.
        masked = np.where(salient, np.nan, w)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            channel_scale = np.nanmean(np.abs(masked), axis=1, keepdims=True)
        channel_scale = np.nan_to_num(channel_scale, nan=0.0)
        binary = np.sign(w) * channel_scale
        dequantized = np.where(salient, w, binary)

        salient_ratio = float(salient.mean())
        payload = (1.0 - salient_ratio) * 1.0 + salient_ratio * 16.0
        record = QuantRecord(
            method=self.name,
            bits_payload=payload,
            # Per-row binarization scale; the salient bitmap is itemised in
            # detail to mirror the paper's 2.7-bit quoting convention.
            bits_metadata=16.0 / w.shape[1],
            weight_shape=weight.shape,
            detail={"salient_fraction": salient_ratio,
                    "bitmap_bits_per_weight": 1.0,
                    "paper_convention_bits": 0.9 + 0.1 * 16 + 0.2},
        )
        return dequantized.astype(np.float32), record
