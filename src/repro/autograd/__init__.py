"""Reverse-mode automatic differentiation over numpy arrays.

This is the training substrate for the reproduction: a small, explicit
tensor library with broadcasting-aware gradients.  It exists so the
LLaMA-style models quantized by :mod:`repro.quant` and :mod:`repro.core`
can be trained from scratch without any external ML framework.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
