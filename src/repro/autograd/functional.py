"""Neural-network level functions built on :class:`~repro.autograd.Tensor`.

``softmax`` and ``cross_entropy`` are implemented as primitives with
analytic backward passes (numerically stable and much faster than the
composed graphs); ``rms_norm`` is composed from primitives.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)
    out = x._make(probs, (x,))
    if out.requires_grad:
        def _backward(g, a=x, p=probs, axis=axis):
            inner = (g * p).sum(axis=axis, keepdims=True)
            a._accumulate(p * (g - inner))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable ``log(softmax(x))`` along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    logp = shifted - logsumexp
    out = x._make(logp, (x,))
    if out.requires_grad:
        def _backward(g, a=x, logp=logp, axis=axis):
            p = np.exp(logp)
            a._accumulate(g - p * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        ``(N, V)`` unnormalised scores.
    targets:
        ``(N,)`` integer class ids.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}")
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logsumexp
    nll = -logp[np.arange(n), targets]
    out = logits._make(np.asarray(nll.mean(), dtype=np.float32), (logits,))
    if out.requires_grad:
        def _backward(g, a=logits, logp=logp, targets=targets, n=n):
            grad = np.exp(logp)
            grad[np.arange(n), targets] -= 1.0
            a._accumulate(grad * (g / n))
        out._backward = _backward
    return out


def nll_per_token(logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-token negative log likelihood for plain arrays (evaluation path).

    Used by the perplexity harness where no gradients are needed.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logsumexp
    flat = logp.reshape(-1, logp.shape[-1])
    idx = np.asarray(targets).reshape(-1)
    return -flat[np.arange(flat.shape[0]), idx].reshape(np.asarray(targets).shape)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather ``weight[indices]`` with scatter-add backward."""
    indices = np.asarray(indices)
    out = weight._make(weight.data[indices], (weight,))
    if out.requires_grad:
        def _backward(g, w=weight, indices=indices):
            grad = np.zeros_like(w.data)
            np.add.at(grad, indices.reshape(-1), g.reshape(-1, g.shape[-1]))
            w._accumulate(grad)
        out._backward = _backward
    return out


def rms_norm(x: Tensor, gain: Tensor, eps: float = 1e-5) -> Tensor:
    """Root-mean-square layer norm (LLaMA-style, no mean subtraction)."""
    mean_square = (x * x).mean(axis=-1, keepdims=True)
    return x * (mean_square + eps).pow(-0.5) * gain


def causal_mask(seq_len: int) -> np.ndarray:
    """Additive ``(seq_len, seq_len)`` mask: 0 on/below diagonal, -inf above."""
    mask = np.full((seq_len, seq_len), -np.inf, dtype=np.float32)
    return np.triu(mask, k=1)
