"""Core :class:`Tensor` with reverse-mode autodiff.

The design follows the classic tape-less topological-sort approach: every
operation returns a new ``Tensor`` holding a ``_backward`` closure that
scatters the output gradient to its parents.  Broadcasting is supported by
summing gradients over broadcast axes (:func:`unbroadcast`).

Only the operations needed by the transformer substrate are implemented;
each is exercised by finite-difference checks in ``tests/autograd``.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether new operations will record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float32`` unless it already is a
        floating numpy array.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(self, data, requires_grad: bool = False, _prev: Sequence["Tensor"] = ()):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._prev: tuple[Tensor, ...] = tuple(_prev)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"]) -> "Tensor":
        parents = [p for p in parents if isinstance(p, Tensor)]
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs, _prev=parents if needs else ())
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without seed needs a scalar output")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:
            def _backward(g, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(unbroadcast(g, a.shape))
                if b.requires_grad:
                    b._accumulate(unbroadcast(g, b.shape))
            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:
            def _backward(g, a=self):
                a._accumulate(-g)
            out._backward = _backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:
            def _backward(g, a=self, b=other):
                if a.requires_grad:
                    a._accumulate(unbroadcast(g * b.data, a.shape))
                if b.requires_grad:
                    b._accumulate(unbroadcast(g * a.data, b.shape))
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return self * self._lift(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out = self._make(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward(g, a=self, p=exponent):
                a._accumulate(g * p * (a.data ** (p - 1.0)))
            out._backward = _backward
        return out

    __pow__ = pow

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,))
        if out.requires_grad:
            def _backward(g, a=self, y=out.data):
                a._accumulate(g * y)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward(g, a=self):
                a._accumulate(g / a.data)
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out = self._make(np.tanh(self.data), (self,))
        if out.requires_grad:
            def _backward(g, a=self, y=out.data):
                a._accumulate(g * (1.0 - y * y))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            def _backward(g, a=self):
                a._accumulate(g * (a.data > 0.0))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        y = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(y, (self,))
        if out.requires_grad:
            def _backward(g, a=self, y=y):
                a._accumulate(g * y * (1.0 - y))
            out._backward = _backward
        return out

    def silu(self) -> "Tensor":
        """SiLU / swish activation ``x * sigmoid(x)``."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make(self.data * sig, (self,))
        if out.requires_grad:
            def _backward(g, a=self, sig=sig):
                a._accumulate(g * (sig * (1.0 + a.data * (1.0 - sig))))
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:
            def _backward(g, a=self, b=other):
                if a.requires_grad:
                    ga = g @ np.swapaxes(b.data, -1, -2)
                    a._accumulate(unbroadcast(ga, a.shape))
                if b.requires_grad:
                    gb = np.swapaxes(a.data, -1, -2) @ g
                    b._accumulate(unbroadcast(gb, b.shape))
            out._backward = _backward
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _backward(g, a=self, axis=axis, keepdims=keepdims):
                if axis is None:
                    grad = np.broadcast_to(g, a.shape)
                else:
                    if not keepdims:
                        g = np.expand_dims(g, axis)
                    grad = np.broadcast_to(g, a.shape)
                a._accumulate(np.ascontiguousarray(grad))
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(data, (self,))
        if out.requires_grad:
            def _backward(g, a=self, axis=axis, keepdims=keepdims, y=data):
                if not keepdims:
                    g = np.expand_dims(g, axis)
                    y = np.expand_dims(y, axis)
                mask = (a.data == y).astype(np.float32)
                mask /= mask.sum(axis=axis, keepdims=True)
                a._accumulate(g * mask)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _backward(g, a=self):
                a._accumulate(g.reshape(a.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = self._make(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))
            def _backward(g, a=self, inverse=inverse):
                a._accumulate(np.ascontiguousarray(g.transpose(inverse)))
            out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        out = self._make(self.data[key], (self,))
        if out.requires_grad:
            def _backward(g, a=self, key=key):
                grad = np.zeros_like(a.data)
                np.add.at(grad, key, g)
                a._accumulate(grad)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        data = rng.standard_normal(shape).astype(np.float32) * scale
        return Tensor(data, requires_grad=requires_grad)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = tensors[0]._make(data, tensors)
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def _backward(g, tensors=tensors, offsets=offsets, axis=axis):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    index = [slice(None)] * g.ndim
                    index[axis] = slice(start, stop)
                    tensor._accumulate(np.ascontiguousarray(g[tuple(index)]))
        out._backward = _backward
    return out
