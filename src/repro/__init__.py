"""FineQ (DATE 2025) reproduction.

Public API highlights
---------------------
* :class:`repro.nn.TransformerLM` — LLaMA-architecture LM substrate.
* :func:`repro.models.load_model` — the trained simulation model zoo.
* :func:`repro.quant.get_quantizer` — baseline quantizers (Uniform, RTN,
  GPTQ, PB-LLM, OWQ).
* :class:`repro.core.FineQQuantizer` — the paper's contribution.
* :class:`repro.serve.GenerationEngine` — persistent continuous-batching
  serving sessions (submit/stream/cancel with per-request
  :class:`repro.serve.SamplingParams`) over paged or quantized KV caches.
* :mod:`repro.hw` — temporal-coding accelerator functional + cycle model.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "0.1.0"

from repro.autograd import Tensor, no_grad
from repro.nn import ModelConfig, TransformerLM

__all__ = ["Tensor", "no_grad", "ModelConfig", "TransformerLM", "__version__"]
