"""Weight-distribution statistics (paper Fig. 3b).

Quantifies the two observations the paper's algorithm is built on:
a small fraction of weights are outliers, and those outliers concentrate
in a few channels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.model import TransformerLM


@dataclass(frozen=True)
class WeightStats:
    """Summary of one weight matrix."""

    outlier_ratio: float          # fraction of |w| > threshold
    channel_concentration: float  # fraction of outliers in top-5% channels
    max_abs: float
    std: float
    threshold: float


def weight_stats(weight: np.ndarray, sigma_multiple: float = 6.0) -> WeightStats:
    """Classify weights beyond ``sigma_multiple`` robust deviations as outliers.

    Uses a median-absolute-deviation scale estimate so the threshold is not
    itself inflated by the outliers being measured.
    """
    w = np.asarray(weight, dtype=np.float64)
    flat = np.abs(w).reshape(-1)
    mad = np.median(np.abs(w - np.median(w)))
    scale = 1.4826 * mad if mad > 0 else flat.std()
    threshold = sigma_multiple * scale
    outliers = flat > threshold
    ratio = float(outliers.mean())

    # Channel concentration: share of outliers living in the top-5% rows
    # (output channels) ranked by outlier count.
    per_channel = (np.abs(w) > threshold).sum(axis=1)
    order = np.argsort(per_channel)[::-1]
    top = max(1, int(round(0.05 * w.shape[0])))
    total = per_channel.sum()
    concentration = float(per_channel[order[:top]].sum() / total) if total else 0.0
    return WeightStats(outlier_ratio=ratio, channel_concentration=concentration,
                       max_abs=float(flat.max()), std=float(w.std()),
                       threshold=float(threshold))


def model_weight_stats(model: TransformerLM, sigma_multiple: float = 6.0
                       ) -> dict[str, WeightStats]:
    """Per-layer stats over the quantization surface."""
    return {name: weight_stats(layer.weight.data, sigma_multiple)
            for name, layer in model.quantizable_linears()}


def aggregate_outlier_ratio(model: TransformerLM, sigma_multiple: float = 6.0) -> float:
    """Element-level outlier fraction across all quantizable weights."""
    total = 0
    outliers = 0
    for _, layer in model.quantizable_linears():
        stats = weight_stats(layer.weight.data, sigma_multiple)
        n = layer.weight.data.size
        total += n
        outliers += int(round(stats.outlier_ratio * n))
    return outliers / total if total else 0.0
