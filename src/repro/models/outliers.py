"""Injection of LLM-like weight outliers into the simulation models.

Real LLM weight matrices mix two kinds of irregularity (paper Fig. 3b,
Observation II): *channel-concentrated* outliers (specific input channels
carry weights ~5-12x larger, correlated with how the network uses those
features — they carry real loss) and *scattered within-channel spikes*
(a few elements right around the paper's 4x cluster-detection threshold).
Tiny models trained from scratch develop neither, so we create both:

1. :func:`pretrain_column_outliers` amplifies a small fraction of input
   columns of every quantizable linear **at initialisation**; training
   then bakes them into the learned function, so they are loss-bearing
   and fully visible to calibration-aware baselines (GPTQ, OWQ) — a pure
   post-hoc reparameterisation would be loss-neutral and thus invisible
   to them.
2. :func:`inject_outliers` adds mild **post-training** spikes through
   exact rescaling identities of the architecture (the FP16 function is
   preserved bit-for-bit up to float rounding):

   * **FFN** (``down(relu(up(x)))``): ``up.weight[h, :] *= a`` with
     ``down.weight[:, h] /= a`` is exact because ReLU is positively
     homogeneous (``a > 0``);
   * **V/O**: ``wv.weight[c, :] *= a`` with ``wo.weight[:, c] /= a`` is
     exact because attention mixes time steps, not value channels;
   * **Q/K**: scaling a RoPE pair of rows ``(2i, 2i+1)`` of ``wq`` by
     ``a`` and the same pair of ``wk`` by ``1/a`` preserves every
     attention score (RoPE rotates within the pair; uniform pair scaling
     commutes with rotation).

Combined effect on the quantization surface: per-tensor grids are blown
up by the channel variance; per-row grids are stretched by the column
outliers they cross; FineQ's per-input-channel scales absorb the channel
structure while its 3-element clusters protect the scattered spikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.model import TransformerLM


@dataclass(frozen=True)
class OutlierSpec:
    """Controls density and strength of the injected outliers.

    Two mechanisms cooperate (see module docstring and DESIGN.md):

    * **Pre-training column outliers** (:func:`pretrain_column_outliers`):
      ``column_fraction`` of each linear's input columns is amplified by
      log-uniform factors in ``column_range`` *at initialisation*, so
      training bakes them into the function.  These are the
      channel-concentrated, loss-bearing outliers of the paper's
      Fig. 3(b) — calibration-aware baselines genuinely feel them.
    * **Post-training spikes** (:func:`inject_outliers`):
      ``spike_fraction`` of intermediate channels receives mild
      (``spike_range``) function-preserving rescaling, creating scattered
      within-channel spikes right around the 4x cluster-detection
      threshold — the case FineQ's intra-cluster protection targets.
    """

    column_fraction: float = 0.02
    column_range: tuple[float, float] = (6.0, 16.0)
    spike_fraction: float = 0.02
    spike_range: tuple[float, float] = (3.0, 6.0)
    seed: int = 1234


def _draw_scales(rng: np.random.Generator, count: int,
                 scale_range: tuple[float, float]) -> np.ndarray:
    low, high = scale_range
    if not (0 < low <= high):
        raise ValueError(f"invalid scale range {scale_range}")
    return np.exp(rng.uniform(np.log(low), np.log(high), size=count)).astype(np.float32)


def _pick(rng: np.random.Generator, count: int, fraction: float) -> np.ndarray:
    k = max(1, int(round(count * fraction)))
    return rng.choice(count, size=min(k, count), replace=False)


def pretrain_column_outliers(model: TransformerLM,
                             spec: OutlierSpec | None = None) -> dict:
    """Amplify random input columns of every quantizable linear at init.

    Called *before* training: the amplified columns become part of the
    function the model learns, so — unlike any purely function-preserving
    rescaling — they carry real loss and are visible to calibration-aware
    methods (GPTQ's Hessian, OWQ's sensitivity ranking), exactly like the
    input-channel-aligned outliers of real LLMs.
    """
    spec = spec or OutlierSpec()
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 0xC0]))
    report: dict[str, dict] = {}
    for name, layer in model.quantizable_linears():
        cols = _pick(rng, layer.in_features, spec.column_fraction)
        scales = _draw_scales(rng, len(cols), spec.column_range)
        layer.weight.data[:, cols] *= scales[None, :]
        report[name] = {"columns": cols, "scales": scales}
    return report


def inject_outliers(model: TransformerLM, spec: OutlierSpec | None = None) -> dict:
    """Post-training, function-preserving within-channel spikes.

    Amplifies a small fraction of intermediate channels by mild factors
    (around the paper's 4x cluster-detection threshold) while applying
    the exact inverse on the mathematically coupled weights, so model
    outputs are bit-for-bit equivalent up to float rounding.  Returns a
    report mapping layer names to affected channel indices.
    """
    spec = spec or OutlierSpec()
    rng = np.random.default_rng(np.random.SeedSequence([spec.seed, 0x5B]))
    report: dict[str, dict] = {}
    num_pairs = model.config.d_model // 2
    if (model.config.d_model // model.config.num_heads) % 2 != 0:
        raise ValueError("RoPE head_dim must be even for pair-wise injection")

    for i, block in enumerate(model.blocks):
        # FFN: amplified hidden rows of `up` appear, in the per-input-
        # channel view, as within-channel spikes; `down` columns shrink.
        hidden = _pick(rng, block.ffn.up.out_features, spec.spike_fraction)
        scales = _draw_scales(rng, len(hidden), spec.spike_range)
        block.ffn.up.weight.data[hidden, :] *= scales[:, None]
        block.ffn.down.weight.data[:, hidden] /= scales[None, :]
        report[f"blocks.{i}.ffn.up"] = {"rows": hidden, "scales": scales}

        # V/O: same identity through the value path.
        channels = _pick(rng, block.attn.wv.out_features, spec.spike_fraction)
        vo_scales = _draw_scales(rng, len(channels), spec.spike_range)
        block.attn.wv.weight.data[channels, :] *= vo_scales[:, None]
        block.attn.wo.weight.data[:, channels] /= vo_scales[None, :]
        report[f"blocks.{i}.attn.wv"] = {"rows": channels, "scales": vo_scales}

        # Q/K: per-RoPE-pair scaling (rotation commutes with pair scaling).
        pairs = _pick(rng, num_pairs, spec.spike_fraction)
        qk_scales = _draw_scales(rng, len(pairs), spec.spike_range)
        rows = np.stack([2 * pairs, 2 * pairs + 1], axis=1).reshape(-1)
        pair_scales = np.repeat(qk_scales, 2)
        block.attn.wq.weight.data[rows, :] *= pair_scales[:, None]
        block.attn.wk.weight.data[rows, :] /= pair_scales[:, None]
        report[f"blocks.{i}.attn.wq"] = {"rows": rows, "scales": pair_scales}
    return report
