"""Train-once-and-cache model zoo.

``load_model`` returns a :class:`ZooModel` bundling the trained network
(with injected outliers), the shared tokenizer, and training metadata.
Weights are cached under :func:`repro.config.artifacts_dir`, so the first
call trains (a few minutes for the largest entry) and later calls load
instantly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.config import artifacts_dir, DEFAULT_SEED
from repro.data.corpus import generate_corpus
from repro.data.loader import split_stream
from repro.data.tokenizer import WordTokenizer
from repro.models.configs import ZOO_CONFIGS, ZOO_TRAIN_STEPS, zoo_config
from repro.models.outliers import (OutlierSpec, inject_outliers,
                                   pretrain_column_outliers)
from repro.nn.model import TransformerLM
from repro.train.trainer import Trainer, TrainConfig

#: Sentences per corpus used to build the training stream and tokenizer.
TRAIN_SENTENCES = 30_000
TOKENIZER_VOCAB = 512


@dataclass
class ZooModel:
    """A trained simulation model plus its tokenizer and metadata."""

    name: str
    model: TransformerLM
    tokenizer: WordTokenizer
    meta: dict


def build_tokenizer(seed: int = DEFAULT_SEED) -> WordTokenizer:
    """Tokenizer trained on both corpora (shared by every zoo entry)."""
    path = artifacts_dir() / "tokenizer.json"
    if path.exists():
        vocab = json.loads(path.read_text())["vocab"]
        return WordTokenizer(vocab)
    corpora = [generate_corpus(name, TRAIN_SENTENCES, seed=seed)
               for name in ("wikitext-sim", "c4-sim")]
    tokenizer = WordTokenizer.train(corpora, TOKENIZER_VOCAB)
    path.write_text(json.dumps({"vocab": tokenizer.vocab}))
    return tokenizer


def training_stream(tokenizer: WordTokenizer, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Mixed wikitext-sim + c4-sim token stream used for zoo training."""
    parts = [tokenizer.encode(generate_corpus(name, TRAIN_SENTENCES, seed=seed))
             for name in ("wikitext-sim", "c4-sim")]
    return np.concatenate(parts)


#: Process-wide memo: multi-sweep bench runs and the speculative-decoding
#: tests load the same draft/target pair repeatedly; weights are immutable
#: once cached, so one ZooModel per (name, seed) is safe to share.
_LOAD_MEMO: dict[tuple[str, int], ZooModel] = {}


def load_model(name: str, train_if_missing: bool = True,
               outlier_spec: OutlierSpec | None = None,
               verbose: bool = False) -> ZooModel:
    """Load (or train and cache) a zoo model by name.

    Results are memoised per ``(name, seed)`` within the process —
    callers share one :class:`ZooModel` instance.  Passing an explicit
    ``outlier_spec`` bypasses the memo (it changes the trained
    weights), as does clearing ``_LOAD_MEMO``.
    """
    config = zoo_config(name)
    memo_key = (name, config.seed)
    if outlier_spec is None and memo_key in _LOAD_MEMO:
        return _LOAD_MEMO[memo_key]
    tokenizer = build_tokenizer()
    weights_path = artifacts_dir() / f"{name}.npz"
    meta_path = artifacts_dir() / f"{name}.json"

    model = TransformerLM(config)
    if weights_path.exists() and meta_path.exists():
        model.load(weights_path)
        meta = json.loads(meta_path.read_text())
        loaded = ZooModel(name=name, model=model, tokenizer=tokenizer,
                          meta=meta)
        if outlier_spec is None:
            _LOAD_MEMO[memo_key] = loaded
        return loaded

    if not train_if_missing:
        raise FileNotFoundError(f"no cached weights for {name} at {weights_path}")

    spec = outlier_spec or OutlierSpec(seed=config.seed + 1000)
    pretrain_report = pretrain_column_outliers(model, spec)

    stream = training_stream(tokenizer)
    train, val = split_stream(stream, val_fraction=0.05)
    train_config = TrainConfig(steps=ZOO_TRAIN_STEPS[name], batch_size=16,
                               seq_len=128, lr=3e-3, weight_decay=0.02,
                               seed=config.seed)
    trainer = Trainer(model, train, train_config, val_stream=val, verbose=verbose)
    summary = trainer.train()

    spike_report = inject_outliers(model, spec)

    model.save(weights_path)
    meta = {
        "config": config.to_dict(),
        "train": {"steps": train_config.steps, **summary},
        "outlier_spec": {"column_fraction": spec.column_fraction,
                         "column_range": list(spec.column_range),
                         "spike_fraction": spec.spike_fraction,
                         "spike_range": list(spec.spike_range),
                         "seed": spec.seed},
        "outlier_columns": {k: np.asarray(v["columns"]).tolist()
                            for k, v in pretrain_report.items()},
        "spike_channels": {k: np.asarray(v["rows"]).tolist()
                           for k, v in spike_report.items()},
    }
    meta_path.write_text(json.dumps(meta))
    trained = ZooModel(name=name, model=model, tokenizer=tokenizer, meta=meta)
    if outlier_spec is None:
        _LOAD_MEMO[memo_key] = trained
    return trained


def available_models() -> list[str]:
    return sorted(ZOO_CONFIGS)
