"""Model zoo configurations.

The three entries are scaled-down stand-ins for the LLaMA-2 sizes the
paper evaluates (3B/7B/13B).  Depth/width ratios follow the LLaMA family
(wider and deeper as the size grows) so the relative FP16 perplexities
reproduce the paper's ordering (13B < 7B < 3B).
"""

from __future__ import annotations

from repro.nn.model import ModelConfig

VOCAB_SIZE = 512
MAX_SEQ_LEN = 512

ZOO_CONFIGS: dict[str, ModelConfig] = {
    "llama-sim-3b": ModelConfig(
        name="llama-sim-3b", vocab_size=VOCAB_SIZE, d_model=96, num_layers=4,
        num_heads=4, d_ff=384, max_seq_len=MAX_SEQ_LEN, seed=3),
    "llama-sim-7b": ModelConfig(
        name="llama-sim-7b", vocab_size=VOCAB_SIZE, d_model=128, num_layers=5,
        num_heads=4, d_ff=512, max_seq_len=MAX_SEQ_LEN, seed=7),
    "llama-sim-13b": ModelConfig(
        name="llama-sim-13b", vocab_size=VOCAB_SIZE, d_model=160, num_layers=7,
        num_heads=5, d_ff=640, max_seq_len=MAX_SEQ_LEN, seed=13),
}

#: Training steps per zoo entry (larger models train longer, as in scaling
#: practice, which also yields the paper's FP16 quality ordering).
ZOO_TRAIN_STEPS = {
    "llama-sim-3b": 400,
    "llama-sim-7b": 550,
    "llama-sim-13b": 700,
}


def zoo_config(name: str) -> ModelConfig:
    """Look up a zoo configuration by name."""
    try:
        return ZOO_CONFIGS[name]
    except KeyError:
        raise KeyError(f"unknown zoo model {name!r}; "
                       f"available: {sorted(ZOO_CONFIGS)}") from None


def tiny_config(vocab_size: int = 256, seed: int = 0,
                max_seq_len: int = 128) -> ModelConfig:
    """A deliberately small config for fast unit tests.

    ``max_seq_len`` widens the RoPE table for long-context decode
    benchmarks without forking the tiny dims.
    """
    return ModelConfig(name="tiny", vocab_size=vocab_size, d_model=48,
                       num_layers=2, num_heads=2, d_ff=96,
                       max_seq_len=max_seq_len, seed=seed)
