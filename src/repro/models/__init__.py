"""Simulation model zoo: scaled LLaMA-style models with LLM-like weights.

``load_model`` trains (once, cached on disk) three scaled-down stand-ins
for the paper's LLaMA-2 3B/7B/13B and then injects *function-preserving*
channel outliers so the weight matrices exhibit the channel-concentrated
outlier statistics the paper's Fig. 3(b) reports for real LLMs.
"""

from repro.models.configs import ZOO_CONFIGS, zoo_config, tiny_config
from repro.models.outliers import (inject_outliers, pretrain_column_outliers,
                                   OutlierSpec)
from repro.models.stats import weight_stats, model_weight_stats
from repro.models.zoo import load_model, build_tokenizer, ZooModel

__all__ = [
    "ZOO_CONFIGS", "zoo_config", "tiny_config", "inject_outliers",
    "pretrain_column_outliers", "OutlierSpec", "weight_stats",
    "model_weight_stats", "load_model", "build_tokenizer", "ZooModel",
]
