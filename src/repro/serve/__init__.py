"""Batched serving engine: continuous batching over a preallocated KV cache.

The FineQ co-design story (like MixPE and FGMP) only pays off if the
software decode loop is not the bottleneck.  This package provides the
batched generation engine the rest of the repo serves through, plus the
throughput benchmarking utilities that keep its speedup a tracked number.
"""

from repro.serve.engine import (KV_CACHE_MODES, Completion, EngineStats,
                                GenerationEngine, Request)
from repro.serve.bench import (MemoryPoint, MemoryReport, ThroughputPoint,
                               ThroughputReport, bench_prompts,
                               engine_throughput, memory_point, memory_sweep,
                               sequential_throughput, throughput_sweep)

__all__ = [
    "Completion", "EngineStats", "GenerationEngine", "KV_CACHE_MODES",
    "Request", "MemoryPoint", "MemoryReport", "ThroughputPoint",
    "ThroughputReport", "bench_prompts", "engine_throughput", "memory_point",
    "memory_sweep", "sequential_throughput", "throughput_sweep",
]
