"""Request-centric serving engine: persistent continuous-batching sessions.

The FineQ co-design story (like MixPE and FGMP) only pays off if the
software decode loop is not the bottleneck.  This package provides the
persistent :class:`GenerationEngine` session the rest of the repo serves
through — submit/stream/cancel with per-request :class:`SamplingParams`
— plus the throughput, memory, and streaming-latency benchmarking
utilities that keep its speedups tracked numbers.
"""

from repro.serve.engine import (FINISH_REASONS, KV_CACHE_MODES, Completion,
                                EngineStats, GenerationEngine, Request,
                                SamplingParams, StepTrace, TokenEvent,
                                apply_top_k_top_p, dataclass_to_dict)
from repro.serve.gateway import (JOB_STATUSES, TERMINAL_STATUSES,
                                 GatewayHTTPServer, GatewayPoint,
                                 GatewayReport, QueueFullError, QueuedJob,
                                 RequestQueue, ServingGateway, TokenUpdate,
                                 gateway_sweep, serve_forever)
from repro.serve.prefix import PrefixMatch, PrefixStore, PrefixStoreStats
from repro.serve.scheduler import (SCHEDULERS, FIFOScheduler,
                                   PrefixAffinityScheduler,
                                   PriorityScheduler, RunningInfo, Scheduler,
                                   SchedulerView, admission_key,
                                   get_scheduler)
from repro.serve.spec import (DRAFT_KV_CACHE_MODES, SPEC_POLICIES,
                              SpeculativeConfig, SpeculativeDecoder)
from repro.serve.bench import (DecodePoint, DecodeReport, MemoryPoint,
                               MemoryReport, MixedLatencyPoint,
                               MixedLatencyReport, PrefixPoint, PrefixReport,
                               SpecPoint, SpecReport, StreamLatencyPoint,
                               StreamLatencyReport, ThroughputPoint,
                               ThroughputReport, bench_prompts,
                               corpus_prompts, decode_point, decode_sweep,
                               engine_throughput, export_report,
                               latency_sweep, memory_point, memory_sweep,
                               mixed_latency_sweep, mixed_traffic_session,
                               prefix_prompts, prefix_sweep,
                               sequential_throughput, serve_session,
                               spec_point, spec_sweep, stream_latency,
                               throughput_sweep)

__all__ = [
    "Completion", "EngineStats", "FINISH_REASONS", "GenerationEngine",
    "KV_CACHE_MODES", "Request", "SamplingParams", "StepTrace", "TokenEvent",
    "apply_top_k_top_p", "dataclass_to_dict",
    "JOB_STATUSES", "TERMINAL_STATUSES", "GatewayHTTPServer",
    "GatewayPoint", "GatewayReport", "QueueFullError", "QueuedJob",
    "RequestQueue", "ServingGateway", "TokenUpdate", "gateway_sweep",
    "serve_forever",
    "PrefixMatch", "PrefixStore", "PrefixStoreStats",
    "SCHEDULERS", "FIFOScheduler", "PrefixAffinityScheduler",
    "PriorityScheduler", "RunningInfo", "Scheduler", "SchedulerView",
    "admission_key", "get_scheduler",
    "DRAFT_KV_CACHE_MODES", "SPEC_POLICIES",
    "SpeculativeConfig", "SpeculativeDecoder",
    "DecodePoint", "DecodeReport", "MemoryPoint",
    "MemoryReport", "MixedLatencyPoint", "MixedLatencyReport", "PrefixPoint",
    "PrefixReport", "SpecPoint", "SpecReport", "StreamLatencyPoint",
    "StreamLatencyReport", "ThroughputPoint", "ThroughputReport",
    "bench_prompts", "corpus_prompts", "decode_point", "decode_sweep",
    "engine_throughput", "export_report", "latency_sweep", "memory_point",
    "memory_sweep", "mixed_latency_sweep", "mixed_traffic_session",
    "prefix_prompts", "prefix_sweep", "sequential_throughput",
    "serve_session", "spec_point", "spec_sweep", "stream_latency",
    "throughput_sweep",
]
