"""Prefix-sharing block store: a radix index over cached prompt prefixes.

Real serving traffic is dominated by shared prefixes — system prompts,
few-shot templates, multi-turn histories — yet a naive engine prefills
every prompt from scratch.  The paged KV cache already stores context in
fixed-size blocks behind per-row block tables, which is exactly the
layout prefix reuse needs: one physical block can appear in many rows'
tables.  :class:`PrefixStore` maintains a radix trie over token
sequences at *block granularity* mapping prefixes to block-table
segments, so an admitted request adopts the longest cached prefix by
reference and only its novel suffix is forwarded through the model.

The same trick carries unchanged to the FineQ-quantized cache: a shared
prompt block is quantized **once** into the paper's 2.33-bit cluster
format and dequantized by every reader — fine-grained mixed precision
does not tax sharing because blocks, not tokens, are the aliasing unit
(the block granularity MixPE/FGMP-style designs also lean on).

Structure
---------
* Each trie **node** is one *full* block of tokens (``block_size``-token
  edge label) holding a reference to a physical cache block.  Matching a
  prompt walks full-block children; divergence **at a block boundary**
  simply stops the walk — siblings share the parent chain and nothing is
  copied.
* Each node also carries **tails**: partially-filled blocks captured when
  a prompt did not end on a block boundary.  A request matching ``m``
  leading tokens of a tail adopts it **copy-on-write** — the FP32 cache
  copies the block, the quantized cache dequantizes it into the row's
  FP32 write buffer — so divergence **inside** a partially-filled block
  never perturbs other readers.
* Every node/tail pins one block reference.  :meth:`enforce_budget`
  evicts least-recently-used leaves once the pinned count exceeds
  ``max_blocks`` — but a block whose cache refcount shows live readers
  (a request mid-decode over that prefix) is **refused eviction**; its
  turn comes when the readers retire.

The store owns references through the cache's refcounting API, so a
captured prefix survives the donor request's retirement, cancellation,
or preemption — which is what lets preempted requests restore cheaply
from their surviving shared prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.paged_kv_cache import PagedKVCache

#: Tails kept per node before the least-recently-used one is dropped.
MAX_TAILS_PER_NODE = 4


@dataclass
class _Tail:
    """A partially-filled captured block: ``tokens`` (< block_size)."""

    tokens: tuple[int, ...]
    block_id: int
    last_used: int = 0

    @property
    def fill(self) -> int:
        return len(self.tokens)


@dataclass
class _Node:
    """One full-block trie node; the root carries no block of its own."""

    block_id: int | None = None
    parent: "_Node | None" = None
    key: tuple[int, ...] | None = None
    children: dict[tuple[int, ...], "_Node"] = field(default_factory=dict)
    tails: list[_Tail] = field(default_factory=list)
    last_used: int = 0


@dataclass(frozen=True)
class PrefixMatch:
    """Longest cached prefix for a prompt: what :meth:`attach` will adopt.

    ``shared_len = len(full_ids) * block_size + tail_keep`` tokens; the
    ``node_key`` identifies the deepest matched trie node so schedulers
    can group requests that would batch onto the same cached prefix.
    """

    shared_len: int
    full_ids: tuple[int, ...]
    tail_id: int | None
    tail_keep: int
    node_key: int | None


@dataclass
class PrefixStoreStats:
    """Hit accounting for benchmarks and the serving report."""

    lookups: int = 0
    hits: int = 0
    shared_tokens: int = 0
    captured_blocks: int = 0
    evicted_blocks: int = 0
    eviction_refusals: int = 0


class PrefixStore:
    """Radix index from token prefixes to shared cache-block chains.

    Parameters
    ----------
    cache:
        The paged cache (FP32 or FineQ-quantized) whose blocks are
        shared.  The store holds one reference per pinned block through
        ``cache.ref_blocks``/``release_blocks``.
    max_blocks:
        Pool budget: the store evicts LRU unreferenced prefixes once it
        pins more than this many blocks (None = unbounded).
    """

    def __init__(self, cache: PagedKVCache, max_blocks: int | None = None):
        if not isinstance(cache, PagedKVCache):
            raise TypeError("prefix sharing needs a paged cache backend")
        self.cache = cache
        self.block_size = cache.block_size
        self.max_blocks = max_blocks
        self.stats = PrefixStoreStats()
        self._root = _Node()
        self._clock = 0
        self._pinned = 0

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _walk(self, tokens: np.ndarray, touch: bool) -> PrefixMatch:
        """Longest cached prefix covering at most ``len(tokens) - 1``
        tokens (at least one novel token must remain to produce the
        logits the engine samples from)."""
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        limit = len(tokens) - 1
        bs = self.block_size
        now = self._tick() if touch else self._clock
        node = self._root
        full_ids: list[int] = []
        depth = 0
        while (depth + 1) * bs <= limit:
            child = node.children.get(tuple(tokens[depth * bs:(depth + 1) * bs]))
            if child is None:
                break
            node = child
            full_ids.append(child.block_id)
            if touch:
                node.last_used = now
            depth += 1
        tail_id, tail_keep = None, 0
        remaining = tokens[depth * bs:limit]
        if len(remaining) > 0:
            best: _Tail | None = None
            for tail in node.tails:
                window = min(tail.fill, len(remaining))
                match = 0
                while match < window and tail.tokens[match] == remaining[match]:
                    match += 1
                if match > tail_keep:
                    tail_keep, best = match, tail
            if best is not None:
                tail_id = best.block_id
                if touch:
                    best.last_used = now
        shared = depth * bs + tail_keep
        key = id(node) if (full_ids or tail_id is not None) else None
        return PrefixMatch(shared_len=shared, full_ids=tuple(full_ids),
                           tail_id=tail_id, tail_keep=tail_keep,
                           node_key=key)

    def match(self, tokens: np.ndarray) -> PrefixMatch:
        """Longest cached prefix for ``tokens`` (marks the path as used)."""
        return self._walk(tokens, touch=True)

    def peek(self, tokens: np.ndarray) -> PrefixMatch:
        """Like :meth:`match` but without touching LRU state — the
        scheduler's scoring probe."""
        return self._walk(tokens, touch=False)

    # ------------------------------------------------------------------ #
    # adoption and capture
    # ------------------------------------------------------------------ #
    def attach(self, row: int, tokens: np.ndarray) -> int:
        """Adopt the longest cached prefix of ``tokens`` into cache row
        ``row``; returns the number of shared context tokens the suffix
        prefill can skip (0 on a miss)."""
        match = self.match(tokens)
        self.stats.lookups += 1
        if match.shared_len == 0:
            return 0
        self.stats.hits += 1
        self.stats.shared_tokens += match.shared_len
        self.cache.adopt_prefix(row, np.asarray(match.full_ids),
                                match.tail_id, match.tail_keep)
        return match.shared_len

    def capture(self, row: int, tokens: np.ndarray) -> int:
        """Index row ``row``'s freshly prefilled prompt ``tokens``.

        Walks the trie creating nodes for the prompt's full blocks and a
        tail for its final partial block, pinning one block reference per
        *new* entry (existing nodes are just touched).  Exactly-full
        buffered blocks of the quantized cache freeze into full nodes, so
        the cached prefix is immutable whatever backend captured it.
        Returns the number of newly pinned blocks.
        """
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        bs = self.block_size
        now = self._tick()
        node = self._root
        pinned = 0
        for depth in range(len(tokens) // bs):
            key = tuple(int(t) for t in tokens[depth * bs:(depth + 1) * bs])
            child = node.children.get(key)
            if child is None:
                child = _Node(block_id=self.cache.share_block(row, depth, bs),
                              parent=node, key=key)
                node.children[key] = child
                pinned += 1
            child.last_used = now
            node = child
        fill = len(tokens) % bs
        if fill:
            tail_tokens = tuple(int(t) for t in tokens[-fill:])
            pinned += self._capture_tail(node, row, len(tokens) // bs,
                                         tail_tokens, now)
        self.stats.captured_blocks += pinned
        self._pinned += pinned
        self.enforce_budget()
        return pinned

    def _capture_tail(self, node: _Node, row: int, depth: int,
                      tokens: tuple[int, ...], now: int) -> int:
        """Add (or extend) a tail under ``node``; returns blocks pinned."""
        for i, tail in enumerate(node.tails):
            window = min(tail.fill, len(tokens))
            if tail.tokens[:window] == tokens[:window]:
                if len(tokens) <= tail.fill:
                    tail.last_used = now  # existing tail already covers it
                    return 0
                # The new capture extends this tail: replace it.
                replacement = _Tail(tokens,
                                    self.cache.share_block(row, depth,
                                                           len(tokens)),
                                    last_used=now)
                self.cache.release_blocks([tail.block_id])
                node.tails[i] = replacement
                return 0  # net pinned count unchanged (one in, one out)
        tail = _Tail(tokens, self.cache.share_block(row, depth, len(tokens)),
                     last_used=now)
        node.tails.append(tail)
        if len(node.tails) > MAX_TAILS_PER_NODE:
            victim = min(node.tails, key=lambda t: t.last_used)
            node.tails.remove(victim)
            self.cache.release_blocks([victim.block_id])
            return 0
        return 1

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #
    @property
    def pinned_blocks(self) -> int:
        """Blocks the store currently holds references on."""
        return self._pinned

    def _evictable(self) -> list[tuple[int, object, _Node]]:
        """(last_used, entry, parent-node) for every leaf node and tail."""
        out: list[tuple[int, object, _Node]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for tail in node.tails:
                out.append((tail.last_used, tail, node))
            for child in node.children.values():
                if not child.children and not child.tails:
                    out.append((child.last_used, child, node))
                stack.append(child)
        return out

    def enforce_budget(self) -> int:
        """Evict LRU unreferenced prefixes until within ``max_blocks``.

        A leaf whose block still has readers (cache refcount above the
        store's own reference) is *refused*: evicting it would pull
        context out from under a request mid-decode.  Refused leaves are
        skipped and retried on later calls.  Returns blocks evicted.
        """
        if self.max_blocks is None:
            return 0
        evicted = 0
        while self._pinned > self.max_blocks:
            refused = 0
            progressed = False
            for _, entry, parent in sorted(self._evictable(),
                                           key=lambda item: item[0]):
                block = entry.block_id
                if self.cache.block_refcount(block) > 1:
                    refused += 1
                    continue  # a reader is mid-decode on this prefix
                if isinstance(entry, _Tail):
                    parent.tails.remove(entry)
                else:
                    del parent.children[entry.key]
                self.cache.release_blocks([block])
                self._pinned -= 1
                evicted += 1
                progressed = True
                break
            self.stats.eviction_refusals += refused
            if not progressed:
                break  # everything over budget is still being read
        self.stats.evicted_blocks += evicted
        return evicted

    def __len__(self) -> int:
        """Number of indexed entries (full-block nodes + tails)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += len(node.tails) + len(node.children)
            stack.extend(node.children.values())
        return count
