"""CLI entry point: ``PYTHONPATH=src python -m repro.serve [--smoke]``.

Sweep modes: throughput (default), ``--mem``, ``--stream``,
``--prefix``, ``--decode``, ``--latency``, ``--spec``, and
``--gateway`` (durable serving gateway vs raw engine).
"""

from repro.serve.bench import main

main()
