"""CLI entry point: ``PYTHONPATH=src python -m repro.serve [--smoke]``."""

from repro.serve.bench import main

main()
