"""Pluggable request-admission policies for the serving engine.

The engine delegates *which* queued requests enter free slots — and
*whose* rows get sacrificed when memory runs out — to a
:class:`Scheduler`.  Three policies ship:

* ``"fifo"`` — arrival order, the PR 1-3 behaviour and the baseline.
* ``"prefix-affinity"`` — probes the prefix store for every waiting
  request and admits the largest group sharing a cached prefix first
  (ties: longer shared prefix, then arrival), so requests that can reuse
  the same cached blocks ride the same decode wave instead of straddling
  waves that each re-pay the gather width.
* ``"priority"`` — per-request ``SamplingParams.priority`` (higher wins;
  FIFO within a level).  When the block pool is exhausted (or all slots
  are busy) and a strictly higher-priority request is waiting, the
  lowest-priority running row is *preempted*: its slot and exclusive
  blocks are freed, the request re-queues with its progress, and on
  re-admission it restores from whatever shared prefix survived in the
  prefix store.

Schedulers are pure decision objects: they never mutate the engine.
``select`` proposes an ordered admission list, ``preempt`` names victims
to make admission room, ``victims_for_blocks`` names victims when
*decode* (not admission) needs blocks the budget cannot grant.  The
engine enacts (or trims) the proposals against the actual block budget.

With chunked prefill enabled the engine additionally asks the policy to
arbitrate the per-step prefill token budget: ``prefill_order`` ranks the
rows still writing their prompts, and the engine grants each row chunk
tokens in that order until the step budget runs out (the head row always
progresses).  FIFO and prefix-affinity hand the budget out in arrival
order; priority ranks by request priority first, so a high-priority
prompt drains ahead of lower ones.  ``prefill_order`` is *optional* on
custom policies — the engine falls back to arrival order when a policy
does not provide it (the :class:`Scheduler` protocol deliberately leaves
it out so pre-existing duck-typed policies keep validating).

Custom policies implement the same three methods and go straight into
``GenerationEngine(scheduler=MyScheduler())``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

#: Built-in scheduler names, in the order the docs present them.
SCHEDULERS = ("fifo", "prefix-affinity", "priority")


def admission_key(priority: int, seq: int) -> tuple[int, int]:
    """Canonical admission order: higher priority first, FIFO within.

    The one comparator behind every priority-ordered queue in the
    serving stack — :class:`PriorityScheduler`'s admission and prefill
    ranking here, and the durable gateway queue's sqlite claim order
    (``ORDER BY priority DESC, job_id ASC``) — so a request's priority
    set at HTTP submit time means the same thing in the journal, at
    dispatch, and inside the engine.
    """
    return (-priority, seq)


@dataclass(frozen=True)
class RunningInfo:
    """One active engine slot, as schedulers see it.

    ``prefill_remaining`` is the number of prompt tokens the row still
    has to write before it can decode — zero for decoding rows, positive
    for rows mid chunked prefill (``prefill_order`` arbitrates these).
    """

    request_id: int
    row: int
    priority: int
    tokens_generated: int
    context_len: int
    prefill_remaining: int = 0


@dataclass(frozen=True)
class SchedulerView:
    """Read-only engine state handed to every scheduler decision.

    ``prefix_peek`` probes the prefix store without touching LRU state
    and returns ``(shared_len, node_key)`` — the number of prompt tokens
    a request could adopt from cache and an opaque key identifying the
    deepest shared node (requests with equal keys would batch onto the
    same cached prefix).  With prefix sharing disabled it returns
    ``(0, None)`` and prefix-affinity degrades to FIFO.
    ``available_blocks`` is ``None`` when the block pool is unbounded.
    """

    free_slots: int
    running: tuple[RunningInfo, ...]
    free_blocks: int
    available_blocks: int | None
    block_size: int
    prefix_peek: Callable[[Sequence[int]], tuple[int, object]]


@runtime_checkable
class Scheduler(Protocol):
    """Admission policy protocol (duck-typed; see module docstring)."""

    name: str

    def select(self, queue: Sequence, free_slots: int,
               view: SchedulerView) -> list:
        """Ordered subset of ``queue`` to admit (at most ``free_slots``)."""
        ...

    def preempt(self, queue: Sequence, view: SchedulerView) -> list[int]:
        """Request ids of running rows to preempt so the head of the
        queue can be admitted; empty when the policy never preempts."""
        ...

    def victims_for_blocks(self, view: SchedulerView,
                           needed_blocks: int) -> list[int]:
        """Request ids to preempt when decode needs ``needed_blocks``
        beyond the budget; empty when the policy never preempts."""
        ...


class FIFOScheduler:
    """Arrival order, no preemption — the PR 1-3 baseline."""

    name = "fifo"

    def select(self, queue: Sequence, free_slots: int,
               view: SchedulerView) -> list:
        return list(queue[:free_slots])

    def preempt(self, queue: Sequence, view: SchedulerView) -> list[int]:
        return []

    def victims_for_blocks(self, view: SchedulerView,
                           needed_blocks: int) -> list[int]:
        return []

    def prefill_order(self, prefilling: Sequence[RunningInfo],
                      view: SchedulerView) -> list[int]:
        """Request ids of mid-prefill rows, in budget-grant order.

        The engine walks this order handing each row up to its remaining
        prompt tokens from the step's ``prefill_chunk_tokens`` budget.
        Arrival order (request ids ascend with submission) keeps the
        earliest long prompt draining first instead of time-slicing every
        prompt a sliver per step (which would delay *all* first tokens).
        """
        return sorted(info.request_id for info in prefilling)


class PrefixAffinityScheduler(FIFOScheduler):
    """Batch requests that share cached prefixes into the same wave."""

    name = "prefix-affinity"

    def select(self, queue: Sequence, free_slots: int,
               view: SchedulerView) -> list:
        probes = [view.prefix_peek(entry.tokens) for entry in queue]
        group_size: dict[object, int] = {}
        for shared, key in probes:
            if key is not None:
                group_size[key] = group_size.get(key, 0) + 1
        order = sorted(
            range(len(queue)),
            key=lambda i: (-group_size.get(probes[i][1], 1) if probes[i][1]
                           is not None else -1,
                           -probes[i][0], i))
        return [queue[i] for i in order[:free_slots]]


class PriorityScheduler(FIFOScheduler):
    """Strict priority admission with preemptive memory reclamation."""

    name = "priority"

    def select(self, queue: Sequence, free_slots: int,
               view: SchedulerView) -> list:
        order = sorted(range(len(queue)),
                       key=lambda i: admission_key(queue[i].priority, i))
        return [queue[i] for i in order[:free_slots]]

    def preempt(self, queue: Sequence, view: SchedulerView) -> list[int]:
        if not queue or not view.running:
            return []
        best_waiting = max(entry.priority for entry in queue)
        candidates = [info for info in view.running
                      if info.priority < best_waiting]
        if not candidates:
            return []
        # Lowest priority first; among equals, the longest context frees
        # the most blocks per preemption.
        victim = min(candidates,
                     key=lambda info: (info.priority, -info.context_len))
        return [victim.request_id]

    def prefill_order(self, prefilling: Sequence[RunningInfo],
                      view: SchedulerView) -> list[int]:
        """Highest priority drains first; FIFO within a level."""
        return [info.request_id
                for info in sorted(prefilling,
                                   key=lambda info: admission_key(
                                       info.priority, info.request_id))]

    def victims_for_blocks(self, view: SchedulerView,
                           needed_blocks: int) -> list[int]:
        if not view.running:
            return []
        top = max(info.priority for info in view.running)
        candidates = sorted((info for info in view.running
                             if info.priority < top),
                            key=lambda info: (info.priority,
                                              -info.context_len))
        victims: list[int] = []
        reclaimed = 0
        for info in candidates:
            if reclaimed >= needed_blocks:
                break
            victims.append(info.request_id)
            # A preempted row frees at most its exclusive blocks; the
            # context length is the optimistic upper bound.
            reclaimed += -(-info.context_len // view.block_size)
        return victims


def get_scheduler(scheduler: "str | Scheduler") -> "Scheduler":
    """Resolve a scheduler name (or pass through a policy object)."""
    if isinstance(scheduler, str):
        try:
            cls = {"fifo": FIFOScheduler,
                   "prefix-affinity": PrefixAffinityScheduler,
                   "priority": PriorityScheduler}[scheduler]
        except KeyError:
            raise ValueError(f"scheduler must be one of {SCHEDULERS} "
                             f"or a Scheduler instance, "
                             f"got {scheduler!r}") from None
        return cls()
    if isinstance(scheduler, Scheduler):
        return scheduler
    raise TypeError(f"not a Scheduler: {scheduler!r}")
