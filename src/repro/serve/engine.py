"""Request-centric continuous-batching generation engine.

The engine is a *persistent session*: the KV cache and slot state are
engine members created once, so requests can be submitted, streamed, and
cancelled while serving is live instead of queueing for a one-shot batch
drain.  One :meth:`GenerationEngine.step` admits waiting prompts into
free slots (a ragged sub-batch prefill) and advances every *active* slot
by one decode token — idle slots are neither forwarded nor gathered
(``decode_rows`` threads the active sub-batch down to the cache), so a
draining batch costs only its live rows.

Typical streaming client::

    engine = GenerationEngine(model, max_batch_size=8)
    engine.submit(prompt_a, params=SamplingParams(max_new_tokens=32,
                                                  temperature=0.8,
                                                  top_p=0.95, seed=7))
    engine.submit(prompt_b, max_new_tokens=16)        # greedy shorthand
    for event in engine.stream():                     # TokenEvent stream
        print(event.request_id, event.token, event.finish_reason)
        if event.request_id == 0 and event.token == BORING:
            engine.cancel(0)                          # frees row + blocks
        if need_more_work:
            engine.submit(prompt_c, max_new_tokens=8) # mid-flight is fine
    done = engine.take_completions()

Per-request knobs live in a frozen :class:`SamplingParams` (temperature,
top-k, top-p, per-request seed, stop tokens, token budget); sampling is
vectorized across the batch with per-request RNG streams, so identical
requests sample identically regardless of batch composition.

The cache backend is selected by ``kv_cache``:

* ``"paged"`` (default) — block-granular FP32
  :class:`~repro.nn.paged_kv_cache.PagedKVCache`; memory tracks the sum
  of live tokens instead of ``batch x max_len``.
* ``"fineq"`` — :class:`~repro.nn.paged_kv_cache.QuantizedPagedKVCache`;
  full blocks stored in the paper's 2.33-bit format (~7x fewer bytes per
  full block, ~4.7x end-to-end with the FP32 write buffers; bounded
  perplexity delta instead of exact parity).
* ``"dense"`` — the rectangular preallocated
  :class:`~repro.nn.kv_cache.KVCache` of PR 1, kept as a baseline.

Greedy decoding on the ``"paged"`` and ``"dense"`` paths is
token-identical to the sequential
:meth:`repro.nn.model.TransformerLM.generate` path — including with
mid-flight submission and cancelled neighbour rows: per-row positions
match the sequential position counter exactly, cache reads return the
same float values, and masked slots contribute exact zeros to the
attention averages.

Prefill is lean: the final norm and LM-head projection run only at each
row's last prompt position (``logits_positions``), so prefill cost no
longer scales with ``vocab x prompt_len``.  :meth:`GenerationEngine.run`
and :meth:`GenerationEngine.generate_batch` remain as thin wrappers over
:meth:`GenerationEngine.step` for batch-oriented callers.

Long prompts need not stall the batch: ``prefill_chunk_tokens`` (128 by
default; ``None`` restores one-shot prefill) caps the prompt tokens
forwarded per :meth:`step`.  An admitted long prompt holds its slot in a
*prefilling* state and writes one chunk per step, decode waves run
between chunks, and the scheduler's ``prefill_order`` arbitrates the
step's chunk budget across concurrently-prefilling rows — so under
mixed traffic the stall a decoding stream sees is bounded by one chunk,
not one prompt.  Prefill context reads run over the same block-resident
attention as decode
(:func:`repro.nn.block_attention.block_prefill_attention`): chunks
attend the block table window by window, the ``"fineq"`` backend's
re-reads of already-written context hit the dequant-block memo, and the
chunk-grid-stable geometry keeps chunked output tokens identical to
one-shot prefill.

Admission is delegated to a pluggable :class:`~repro.serve.scheduler
.Scheduler` (``"fifo"`` default, ``"prefix-affinity"``, ``"priority"``
with preemption), and ``prefix_sharing=True`` puts a
:class:`~repro.serve.prefix.PrefixStore` in front of the paged cache:
admitted prompts adopt the longest cached prefix by block reference and
only the novel suffix is forwarded through the model (copy-on-write when
a prompt diverges inside a partially-filled shared block).  Preempted
requests requeue with their progress and restore from whatever shared
prefix survived.  ``record_trace=True`` keeps a per-decode-step
:class:`StepTrace` of (rows, tokens, KV bytes, post-cache KV bytes
streamed) that ``repro.hw.workloads.project_decode_trace`` projects
onto the paper's accelerator cycle model.

Single-token decode on the paged backends is *block-resident*
(``block_decode=True``): attention iterates the block table chunk by
chunk (:mod:`repro.nn.block_attention`) instead of gathering a dense
``(batch, heads, total, head_dim)`` context copy per layer per step,
and the ``"fineq"`` backend serves chunk reads through a
dequantized-block LRU (``dequant_cache_bytes``) so an immutable
quantized block — a shared system prompt especially — is LUT-decoded
once instead of ``batch x layers x steps`` times.  :class:`EngineStats`
tracks the peak decode scratch, the dense-copy bytes never built, and
the dequant-cache hit rate.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from typing import NamedTuple

import numpy as np

from repro.autograd import no_grad
from repro.nn.kv_cache import KVCache
from repro.nn.paged_kv_cache import (DEFAULT_BLOCK_SIZE, PagedKVCache,
                                     QuantizedPagedKVCache)
from repro.nn.model import TransformerLM
from repro.serve.prefix import PrefixStore
from repro.serve.scheduler import (RunningInfo, Scheduler, SchedulerView,
                                   get_scheduler)
from repro.serve.spec import (SpeculativeConfig, SpeculativeDecoder,
                              leftover_accept, sample_from_probs)

#: Engine cache backends: constructor keyed by the ``kv_cache`` argument.
KV_CACHE_MODES = ("paged", "fineq", "dense")

#: Every terminal state a request can reach.
FINISH_REASONS = ("length", "eos", "stop", "max_seq_len", "cancelled")


def dataclass_to_dict(obj) -> dict:
    """Serialize a dataclass including its computed ``@property`` values.

    The one shape every exported stats/benchmark payload uses: stored
    fields via :func:`dataclasses.asdict` plus each property evaluated on
    the instance, so derived numbers (rates, per-token ratios) land in
    JSON next to the counters they come from instead of being re-derived
    by every consumer.
    """
    out = asdict(obj)
    for name in dir(type(obj)):
        if isinstance(getattr(type(obj), name), property):
            out[name] = getattr(obj, name)
    return out


@dataclass(frozen=True)
class SamplingParams:
    """Frozen per-request generation knobs.

    ``seed`` drives a private ``np.random.Generator`` for the request, so
    its sampled continuation is a function of (prompt, params) alone —
    batch neighbours never perturb it.  ``seed=None`` asks the engine to
    draw one from its own stream at submit time (reproducible per engine
    seed + submission order).  ``top_k``/``top_p`` of ``None`` disable
    the respective filter; ``top_k=1`` is exact greedy.  ``stop_tokens``
    terminate the request the step they are generated (the stop token is
    kept, mirroring ``eos`` handling).  ``priority`` (higher wins) only
    matters under the ``"priority"`` scheduler, which admits high
    priorities first and may preempt lower-priority running requests when
    the block pool runs out.
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int | None = None
    top_p: float | None = None
    seed: int | None = None
    stop_tokens: tuple[int, ...] = ()
    priority: int = 0

    def __post_init__(self):
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.temperature < 0.0:
            raise ValueError("temperature must be >= 0")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1 (or None to disable)")
        if self.top_p is not None and not 0.0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1] (or None to disable)")
        object.__setattr__(self, "stop_tokens",
                           tuple(int(t) for t in self.stop_tokens))

    @property
    def greedy(self) -> bool:
        """True when sampling degenerates to argmax (token-identical)."""
        return self.temperature <= 0.0 or self.top_k == 1

    def to_dict(self) -> dict:
        """JSON-ready stored fields (the durable queue's journal shape)."""
        out = asdict(self)
        out["stop_tokens"] = list(self.stop_tokens)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SamplingParams":
        """Rebuild params from :meth:`to_dict` output (journal replay)."""
        return cls(**payload)


@dataclass(frozen=True)
class Request:
    """One queued generation request."""

    request_id: int
    prompt: np.ndarray
    params: SamplingParams

    # PR 1 compatibility: the old flat fields read through to params.
    @property
    def max_new_tokens(self) -> int:
        return self.params.max_new_tokens

    @property
    def temperature(self) -> float:
        return self.params.temperature


@dataclass
class _QueueEntry:
    """A waiting unit of work: a fresh submission or a preempted request.

    ``tokens`` is what prefill forwards (prompt plus any tokens already
    generated before a preemption) and ``generated``/``rng`` carry the
    request's progress and private sampling stream across the preempt /
    restore cycle, so a restored request continues exactly where it left
    off.
    """

    request: Request
    tokens: np.ndarray
    generated: list[int]
    rng: np.random.Generator

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def priority(self) -> int:
        return self.request.params.priority

    # PR 1 compatibility: the old flat queue-inspection fields.
    @property
    def max_new_tokens(self) -> int:
        return self.request.params.max_new_tokens

    @property
    def temperature(self) -> float:
        return self.request.params.temperature


@dataclass(frozen=True)
class TokenEvent:
    """One streamed token (or terminal notice) for a request.

    ``token`` is ``None`` only for events that produce no token (a
    cancellation).  ``finish_reason`` is ``None`` while the request is
    still running and one of :data:`FINISH_REASONS` on its final event.
    """

    request_id: int
    token: int | None
    finish_reason: str | None = None


@dataclass
class Completion:
    """A finished request: prompt plus generated continuation."""

    request_id: int
    tokens: np.ndarray
    prompt_len: int
    finish_reason: str  # one of FINISH_REASONS

    @property
    def new_tokens(self) -> np.ndarray:
        return self.tokens[self.prompt_len:]


@dataclass
class EngineStats:
    """Token/time accounting for throughput reporting.

    Prefill counters are *per admission*: ``prompt_tokens`` is the
    context admissions established (counted as it lands — adopted
    prefixes at claim time, forwarded chunks as they forward),
    ``shared_prompt_tokens`` the part adopted from cached prefixes, and
    ``prefill_tokens`` the part actually forwarded through the model, so
    ``prompt_tokens == shared_prompt_tokens + prefill_tokens`` always.
    A preempted request's restore is a second admission (its prompt plus
    generated progress count again), and a request cancelled or
    preempted mid chunked prefill contributes only what it wrote — the
    counters track prefill work done and avoided, not unique
    submissions.
    """

    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    prompt_tokens: int = 0
    shared_prompt_tokens: int = 0
    decode_tokens: int = 0
    decode_seconds: float = 0.0
    decode_steps: int = 0
    decode_slot_steps: int = 0  # steps x batch slots (for occupancy)
    preemptions: int = 0
    # KV-cache memory, sampled every decode step at the point of most
    # live context tokens (the serving-memory high-water mark).
    kv_peak_tokens: int = 0
    kv_peak_used_bytes: int = 0
    kv_peak_physical_bytes: int = 0
    kv_peak_allocated_bytes: int = 0
    # Decode read path: the largest transient K/V scratch any decode
    # step materialised (the block-resident path keeps this a chunk, not
    # the dense (batch, heads, total, head_dim) gather — on the gather
    # path it records that dense copy), the cumulative dense-copy bytes
    # the block path never built, and the quantized cache's
    # dequant-block memo traffic.
    decode_peak_scratch_bytes: int = 0
    decode_bytes_not_gathered: int = 0
    dequant_cache_hits: int = 0
    dequant_cache_misses: int = 0
    # Chunked prefill: forwarded chunk count, prompt tokens that waited
    # for a later step's budget, and the dequant-memo traffic of prefill
    # context re-reads (decode traffic stays in dequant_cache_*).
    prefill_chunks: int = 0
    prefill_tokens_deferred: int = 0
    prefill_dequant_hits: int = 0
    prefill_dequant_misses: int = 0
    # Speculative decoding: draft tokens proposed vs accepted by the
    # target's verify (the bonus token each verify emits on top of the
    # accepted run counts in decode_tokens, not here).
    spec_proposed: int = 0
    spec_accepted: int = 0

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def occupancy(self) -> float:
        """Mean fraction of batch slots doing useful decode work."""
        return self.decode_tokens / self.decode_slot_steps if self.decode_slot_steps else 0.0

    @property
    def bytes_per_cached_token(self) -> float:
        """Cache bytes per live context token at the memory high-water mark."""
        return self.kv_peak_used_bytes / self.kv_peak_tokens if self.kv_peak_tokens else 0.0

    @property
    def physical_bytes_per_cached_token(self) -> float:
        """Resident cache bytes per live context token at the high-water
        mark; shared prefix blocks count once however many rows read
        them, so this is the number prefix sharing drives down."""
        return self.kv_peak_physical_bytes / self.kv_peak_tokens if self.kv_peak_tokens else 0.0

    @property
    def prefix_hit_tokens_ratio(self) -> float:
        """Fraction of submitted prompt tokens served from cached prefixes."""
        return self.shared_prompt_tokens / self.prompt_tokens if self.prompt_tokens else 0.0

    @property
    def dequant_cache_hit_rate(self) -> float:
        """Fraction of quantized-block decode reads served from the
        dequant memo instead of re-running LUT dequantization."""
        lookups = self.dequant_cache_hits + self.dequant_cache_misses
        return self.dequant_cache_hits / lookups if lookups else 0.0

    @property
    def prefill_dequant_hit_rate(self) -> float:
        """Fraction of quantized-block *prefill* context reads served
        from the dequant memo — a later chunk re-reading blocks an
        earlier chunk (or a decode wave, or a shared prefix) already
        dequantized."""
        lookups = self.prefill_dequant_hits + self.prefill_dequant_misses
        return self.prefill_dequant_hits / lookups if lookups else 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of drafted tokens the target's verify accepted."""
        return self.spec_accepted / self.spec_proposed \
            if self.spec_proposed else 0.0

    def to_dict(self) -> dict:
        """Counters plus derived rates, JSON-ready.

        The single serialization the gateway's ``/metrics`` endpoint and
        the benchmark JSON exports share (see :func:`dataclass_to_dict`).
        """
        return dataclass_to_dict(self)


class StepTrace(NamedTuple):
    """One decode step's workload, for accelerator projection.

    ``kv_bytes`` is what the step's attention reads cover logically
    (dense-equivalent bytes: a shared block is read once per reader
    row).  ``kv_bytes_streamed`` is what the step actually fetched from
    cache storage after the dequant-block memo — quantized payloads for
    misses and FP32 write-buffer reads, with hits streaming nothing —
    so the accelerator projection credits the dequant reuse (``-1``
    means "same as ``kv_bytes``", the gather path).  Tuple-shaped so
    ``repro.hw.workloads`` can consume traces without importing the
    serving engine.

    ``prefill_tokens`` distinguishes prefill-chunk steps (``tokens`` of
    the step's forward were prompt-chunk writes) from decode steps
    (``0``; there ``tokens == rows``).

    Speculative decode steps keep ``tokens`` = tokens the step actually
    *emitted* (committed after verify), so decode-step token sums agree
    with ``EngineStats.decode_tokens`` whether or not the step was
    speculative.  The work actually paid rides in the extra fields:
    ``spec_verify_tokens`` is the verify forward's total token
    positions (the target GEMM width), ``spec_draft_tokens`` the draft
    model's forwarded positions (catch-up plus the ``k`` proposal
    loop), so ``repro.hw.workloads.project_decode_trace`` can charge
    draft and verify GEMMs at their real widths while dividing cycles
    by tokens a consumer saw.
    """

    rows: int
    tokens: int
    kv_bytes: int
    kv_bytes_streamed: int = -1
    prefill_tokens: int = 0
    spec_proposed: int = 0
    spec_accepted: int = 0
    spec_draft_tokens: int = 0
    spec_verify_tokens: int = 0

    def to_dict(self) -> dict:
        """Field-named dict, JSON-ready (trace exports and ``/metrics``)."""
        return dict(self._asdict())


@dataclass
class _Slot:
    """Live per-row state: decoding, or still writing its prompt.

    ``prefill_tokens`` holds the full token array the row must establish
    (prompt plus any pre-preemption progress) while its prefill is
    chunked across steps; ``prefill_pos`` is how much context the row
    already has (adopted shared prefix plus written chunks).  Once the
    prompt is fully written ``prefill_tokens`` drops to ``None`` and the
    slot decodes like any other.
    """

    request: Request
    rng: np.random.Generator
    generated: list[int] = field(default_factory=list)
    prefill_tokens: np.ndarray | None = None
    prefill_pos: int = 0

    @property
    def prefilling(self) -> bool:
        return self.prefill_tokens is not None


def apply_top_k_top_p(scaled: np.ndarray, top_k: np.ndarray,
                      top_p: np.ndarray) -> np.ndarray:
    """Mask ``(batch, vocab)`` scaled logits to each row's top-k/top-p set.

    ``top_k`` holds per-row k (``vocab`` disables), ``top_p`` per-row
    nucleus mass (``1.0`` disables).  One descending sort serves both
    filters: the k-th sorted logit is the top-k threshold, and the
    smallest sorted logit inside the minimal nucleus whose probability
    mass reaches ``top_p`` is the top-p threshold.  Ties at a threshold
    are kept (deterministic, never empties a row); masked entries are
    ``-inf`` so downstream softmax zeroes them exactly.
    """
    vocab = scaled.shape[-1]
    top_k = np.minimum(np.asarray(top_k, dtype=np.int64), vocab)
    top_p = np.asarray(top_p, dtype=np.float64)
    if np.all(top_k >= vocab) and np.all(top_p >= 1.0):
        return scaled
    order = np.argsort(scaled, axis=-1)[:, ::-1]
    sorted_logits = np.take_along_axis(scaled, order, axis=-1)
    kth = np.take_along_axis(sorted_logits, top_k[:, None] - 1, axis=-1)
    keep = scaled >= kth
    if np.any(top_p < 1.0):
        shifted = sorted_logits - sorted_logits[:, :1]
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        csum = probs.cumsum(axis=-1)
        # A sorted position is inside the nucleus while the mass *before*
        # it is < top_p; the first token is therefore always kept.
        in_nucleus = (csum - probs) < top_p[:, None]
        counts = in_nucleus.sum(axis=-1)
        cutoff = np.take_along_axis(sorted_logits, counts[:, None] - 1,
                                    axis=-1)
        keep &= scaled >= cutoff
    return np.where(keep, scaled, -np.inf)


def _filtered_probs(logits: np.ndarray, params: list) -> np.ndarray:
    """Per-row post-filter sampling distributions for ``(batch, vocab)``
    logits: temperature scaling and top-k/top-p masking followed by
    softmax, vectorized over the non-greedy rows; greedy rows collapse
    to a one-hot at their argmax.  These are the distributions both
    sampling (CDF inversion) and the speculative ``"leftover"``
    acceptance rule (target ``p`` and draft ``q``) operate on."""
    greedy = logits.argmax(axis=-1)
    probs = np.zeros(logits.shape)
    probs[np.arange(len(logits)), greedy] = 1.0
    hot_idx = np.array([i for i, p in enumerate(params) if not p.greedy],
                       dtype=np.int64)
    if len(hot_idx) == 0:
        return probs
    hot_params = [params[i] for i in hot_idx]
    vocab = logits.shape[-1]
    temperatures = np.array([p.temperature for p in hot_params])
    top_k = np.array([p.top_k or vocab for p in hot_params])
    top_p = np.array([p.top_p if p.top_p is not None else 1.0
                      for p in hot_params])
    scaled = apply_top_k_top_p(logits[hot_idx] / temperatures[:, None],
                               top_k, top_p)
    scaled = scaled - scaled.max(axis=-1, keepdims=True)
    hot = np.exp(scaled)
    hot /= hot.sum(axis=-1, keepdims=True)
    probs[hot_idx] = hot
    return probs


def _sample_tokens(logits: np.ndarray, params: list, rngs: list,
                   return_probs: bool = False):
    """Sample one token per row of ``(batch, vocab)`` logits.

    The engine's sampling math with explicit per-row params and RNG
    streams, shared by regular decode, speculative draft proposals, and
    speculative verify re-sampling.  Greedy rows take their argmax and
    consume no RNG; each non-greedy row inverts its own masked CDF at a
    draw from its *private* generator — exactly one draw per row — so a
    request's sample stream depends only on its own params and logits,
    never on batch composition.

    ``return_probs=True`` additionally returns the
    :func:`_filtered_probs` distributions (the ``"leftover"`` policy
    needs the draft's proposal distribution alongside its sample).
    """
    greedy = logits.argmax(axis=-1)
    hot_idx = np.array([i for i, p in enumerate(params) if not p.greedy],
                       dtype=np.int64)
    if len(hot_idx) == 0:
        return (greedy, _filtered_probs(logits, params)) if return_probs \
            else greedy
    # Only the hot rows pay the vocab-wide sort/softmax; greedy rows
    # already have their argmax.
    probs = _filtered_probs(logits[hot_idx], [params[i] for i in hot_idx])
    draws = np.array([rngs[i].random() for i in hot_idx])
    # Smallest index whose cumulative mass exceeds the draw: masked
    # tokens carry exactly zero mass, so ties (cumsum flat) can never
    # select them — including a draw of exactly 0.0 with token 0
    # masked.  Float rounding can still leave the total mass a hair
    # under a draw near 1.0, so clamp onto the last *kept* token.
    vocab = logits.shape[-1]
    sampled = (probs.cumsum(axis=-1) <= draws[:, None]).sum(axis=-1)
    last_kept = vocab - 1 - np.argmax(probs[:, ::-1] > 0, axis=-1)
    out = greedy.copy()
    out[hot_idx] = np.minimum(sampled, last_kept)
    if return_probs:
        full = np.zeros(logits.shape)
        full[np.arange(len(logits)), greedy] = 1.0
        full[hot_idx] = probs
        return out, full
    return out


class GenerationEngine:
    """A persistent serving session over a fixed pool of KV-cache slots.

    The cache and per-slot state live for the engine's lifetime:
    :meth:`submit` enqueues work at any time (including mid-stream),
    :meth:`step` advances one admit+decode iteration, :meth:`stream`
    yields :class:`TokenEvent`s as tokens land, :meth:`cancel` frees a
    request's row and cache blocks immediately, and
    :meth:`take_completions` drains finished requests.  :meth:`run` and
    :meth:`generate_batch` wrap :meth:`step` for batch-oriented callers.

    Parameters
    ----------
    model:
        The language model to serve (any :class:`TransformerLM`,
        quantized or not).
    max_batch_size:
        Number of cache slots, i.e. the decode batch width.
    eos_token:
        Optional token id that terminates a sequence early.
    rng:
        Engine-level generator; only used to draw per-request seeds for
        requests that did not fix one in :class:`SamplingParams`.
    kv_cache:
        Cache backend: ``"paged"`` (default), ``"fineq"`` (quantized
        paged), or ``"dense"`` (rectangular baseline).
    block_size:
        Tokens per block for the paged backends.
    scheduler:
        Admission policy: ``"fifo"`` (default), ``"prefix-affinity"``,
        ``"priority"``, or any object satisfying
        :class:`repro.serve.scheduler.Scheduler`.
    prefix_sharing:
        Index prompts in a :class:`~repro.serve.prefix.PrefixStore` and
        prefill only novel suffixes (paged backends only).
    prefix_blocks:
        Block budget for the prefix store's LRU eviction (None =
        unbounded).
    max_pool_blocks:
        Soft KV-pool budget: admission throttles (and the priority
        scheduler preempts) against it; forced growth can still exceed
        it so in-flight writes never fail.
    record_trace:
        Append a :class:`StepTrace` per decode step to ``self.trace``
        for accelerator projection via ``repro.hw.workloads``.
    block_decode:
        Route single-token decodes through block-resident attention
        (:mod:`repro.nn.block_attention`) on the paged backends instead
        of the dense gather-then-attend path.  ``False`` pins the
        pre-change gather path (the regression/benchmark baseline).
    dequant_cache_bytes:
        Byte budget for the ``"fineq"`` backend's dequantized-block LRU
        (``0`` disables it; ``None`` keeps the cache default).
    prefill_chunk_tokens:
        Per-:meth:`step` prompt-token budget (default 128).  Admitted
        prompts longer than the budget prefill chunk by chunk across
        steps — their slots sit in a *prefilling* state while decode
        waves run between chunks — and the scheduler's ``prefill_order``
        decides which prefilling rows the budget feeds first.  ``None``
        prefills every admitted prompt in one shot (the pre-chunking
        behaviour).
    speculative:
        A :class:`~repro.serve.spec.SpeculativeConfig` to decode
        speculatively: each decode step drafts ``k`` tokens per row
        with the (cheap) draft model, verifies all ``k + 1`` positions
        in one multi-token target forward over the block-resident read
        path, commits the accepted prefix, and rolls the caches back
        past the first rejection (``truncate_rows``).  Greedy output is
        token-identical to target-only decode; the default ``"exact"``
        policy keeps sampled output identical too.  ``None`` (default)
        decodes one token per step.
    """

    def __init__(self, model: TransformerLM, max_batch_size: int = 8,
                 eos_token: int | None = None,
                 rng: np.random.Generator | None = None,
                 initial_capacity: int = 64, kv_cache: str = "paged",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 scheduler: str | Scheduler = "fifo",
                 prefix_sharing: bool = False,
                 prefix_blocks: int | None = None,
                 max_pool_blocks: int | None = None,
                 record_trace: bool = False,
                 block_decode: bool = True,
                 dequant_cache_bytes: int | None = None,
                 prefill_chunk_tokens: int | None = 128,
                 speculative: SpeculativeConfig | None = None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if prefill_chunk_tokens is not None and prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1 "
                             "(or None for one-shot prefill)")
        if kv_cache not in KV_CACHE_MODES:
            raise ValueError(f"kv_cache must be one of {KV_CACHE_MODES}, "
                             f"got {kv_cache!r}")
        if prefix_sharing and kv_cache == "dense":
            raise ValueError("prefix_sharing needs a paged backend "
                             "(block tables are the aliasing unit)")
        self.model = model
        self.max_batch_size = max_batch_size
        self.eos_token = eos_token
        self.rng = rng or np.random.default_rng(0)
        self.initial_capacity = initial_capacity
        self.kv_cache = kv_cache
        self.block_size = block_size
        self.scheduler = get_scheduler(scheduler)
        self.prefix_sharing = prefix_sharing
        self.prefix_blocks = prefix_blocks
        self.max_pool_blocks = max_pool_blocks
        self.record_trace = record_trace
        self.block_decode = block_decode
        self.dequant_cache_bytes = dequant_cache_bytes
        self.prefill_chunk_tokens = prefill_chunk_tokens
        if speculative is not None:
            speculative.validate_target(model)
        self.speculative = speculative
        self._spec = (SpeculativeDecoder(self, speculative)
                      if speculative is not None else None)
        self._prefill_budget: int | None = prefill_chunk_tokens
        self.trace: list[StepTrace] = []
        self.stats = EngineStats()
        self._queue: deque[_QueueEntry] = deque()
        self._next_id = 0
        # Session state: created once, reused across every step()/run().
        self._cache: KVCache | PagedKVCache | None = None
        self._prefix: PrefixStore | None = None
        self._slots: list[_Slot | None] = [None] * max_batch_size
        self._lengths = np.zeros(max_batch_size, dtype=np.int64)
        self._pending = np.zeros(max_batch_size, dtype=np.int64)
        self._live: dict[int, int] = {}      # request_id -> slot row
        self._finished: list[Completion] = []
        self._events: list[TokenEvent] = []  # out-of-step events (cancels)

    @property
    def cache(self) -> KVCache | PagedKVCache | None:
        """The session's KV cache (None until the first admit)."""
        return self._cache

    @property
    def prefix_store(self) -> PrefixStore | None:
        """The prefix index (None until the first admit or when sharing
        is disabled)."""
        return self._prefix

    def _make_cache(self) -> KVCache | PagedKVCache:
        num_layers = self.model.config.num_layers
        batch = self.max_batch_size
        if self.kv_cache == "dense":
            return KVCache(num_layers, batch=batch,
                           initial_capacity=self.initial_capacity)
        initial_blocks = batch * max(1, self.initial_capacity // self.block_size)
        if self.max_pool_blocks is not None:
            initial_blocks = min(initial_blocks, self.max_pool_blocks)
        kwargs = dict(batch=batch, block_size=self.block_size,
                      initial_blocks=initial_blocks,
                      max_blocks=self.max_pool_blocks,
                      block_decode=self.block_decode)
        if self.kv_cache == "paged":
            return PagedKVCache(num_layers, **kwargs)
        if self.dequant_cache_bytes is not None:
            kwargs["dequant_cache_bytes"] = self.dequant_cache_bytes
        return QuantizedPagedKVCache(num_layers, **kwargs)

    # ------------------------------------------------------------------ #
    # request intake and cancellation
    # ------------------------------------------------------------------ #
    def submit(self, prompt: np.ndarray, max_new_tokens: int | None = None,
               temperature: float | None = None,
               params: SamplingParams | None = None) -> int:
        """Queue a request; returns its id (events/completions carry it).

        Either pass ``params`` (the request-centric API) or the PR 1
        shorthand ``max_new_tokens``/``temperature``, not both.  Works at
        any time, including while :meth:`stream` is being consumed.
        """
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if prompt.size > self.model.config.max_seq_len:
            raise ValueError(f"prompt of {prompt.size} tokens exceeds "
                             f"max_seq_len={self.model.config.max_seq_len}")
        if params is None:
            if max_new_tokens is None:
                raise ValueError("pass max_new_tokens or params")
            params = SamplingParams(max_new_tokens=max_new_tokens,
                                    temperature=temperature or 0.0)
        elif max_new_tokens is not None or temperature is not None:
            raise ValueError("pass either params or the max_new_tokens/"
                             "temperature shorthand, not both")
        if params.seed is None:
            params = replace(params, seed=int(self.rng.integers(2 ** 32)))
        request = Request(request_id=self._next_id, prompt=prompt,
                          params=params)
        self._next_id += 1
        self._queue.append(_QueueEntry(
            request=request, tokens=prompt, generated=[],
            rng=np.random.default_rng(params.seed)))
        return request.request_id

    def submit_from_record(self, record) -> int:
        """Submit a durable queue record; returns the engine request id.

        ``record`` is anything with ``prompt`` and ``params`` attributes
        (the gateway's :class:`~repro.serve.gateway.queue.QueuedJob`).
        The params must carry a *resolved* seed: a record re-dispatched
        after a crash has to regenerate the exact token stream its
        journal already holds, which an engine-drawn seed (a function of
        this engine's RNG state) would not.
        """
        params = record.params
        if params.seed is None:
            raise ValueError(
                "queue records must carry a resolved seed — durability "
                "needs the stream to be reproducible across restarts")
        return self.submit(record.prompt, params=params)

    def cancel(self, request_id: int) -> bool:
        """Terminate a queued or running request immediately.

        A running request's slot and cache blocks are freed right away
        (shared prefix blocks stay resident for the prefix store and any
        other readers — only exclusively-owned blocks return to the
        pool); its partial output lands in :meth:`take_completions` with
        ``finish_reason="cancelled"`` and a terminal :class:`TokenEvent`
        (``token=None``) is emitted on the next :meth:`step`/
        :meth:`stream` iteration.  Returns False for ids that are unknown
        or already finished.
        """
        for entry in self._queue:
            if entry.request_id == request_id:
                self._queue.remove(entry)
                tokens = np.concatenate(
                    [entry.request.prompt,
                     np.asarray(entry.generated, dtype=np.int64)])
                self._finished.append(Completion(
                    request_id=request_id, tokens=tokens,
                    prompt_len=len(entry.request.prompt),
                    finish_reason="cancelled"))
                self._events.append(TokenEvent(request_id, None, "cancelled"))
                return True
        row = self._live.get(request_id)
        if row is None:
            return False
        self._retire(row, "cancelled")
        self._events.append(TokenEvent(request_id, None, "cancelled"))
        return True

    def generate_batch(self, prompts: list[np.ndarray], max_new_tokens: int,
                       temperature: float = 0.0) -> list[np.ndarray]:
        """Serve ``prompts`` and return full token arrays in input order.

        Completions of requests submitted outside this call stay queued
        for :meth:`take_completions` instead of being dropped.
        """
        ids = [self.submit(p, max_new_tokens, temperature) for p in prompts]
        wanted = set(ids)
        done = {}
        foreign = []
        for completion in self.run():
            if completion.request_id in wanted:
                done[completion.request_id] = completion
            else:
                foreign.append(completion)
        self._finished.extend(foreign)
        return [done[i].tokens for i in ids]

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # the serving session
    # ------------------------------------------------------------------ #
    def has_work(self) -> bool:
        """True while a step could produce events."""
        return bool(self._events or self._queue
                    or any(slot is not None for slot in self._slots))

    @property
    def num_active(self) -> int:
        """Occupied slots (decoding or mid chunked prefill)."""
        return sum(slot is not None for slot in self._slots)

    @property
    def num_prefilling(self) -> int:
        """Slots still writing their prompt chunk by chunk."""
        return sum(slot is not None and slot.prefilling
                   for slot in self._slots)

    def step(self) -> list[TokenEvent]:
        """Advance one admit+prefill+decode iteration; return its events.

        Buffered out-of-step events (cancellations) flush first, then the
        scheduler admits waiting prompts into free slots (possibly
        preempting victims first), prefilling rows consume the step's
        ``prefill_chunk_tokens`` budget, and every decoding slot advances
        one token.  Safe to call with nothing to do.
        """
        events = self._events
        self._events = []
        self._prefill_budget = self.prefill_chunk_tokens
        with no_grad():
            if self._queue:
                if self._cache is None:
                    self._cache = self._make_cache()
                    if self.prefix_sharing:
                        self._prefix = PrefixStore(
                            self._cache, max_blocks=self.prefix_blocks)
                events += self._admit()
            if self.num_prefilling:
                # Rows admitted in earlier steps (or starved by this
                # step's admission rounds) spend whatever budget is left.
                events += self._prefill_step()
            if any(slot is not None and not slot.prefilling
                   for slot in self._slots):
                self._ensure_decode_headroom()
                events += (self._spec_decode_step()
                           if self._spec is not None else self._decode_step())
        return events

    def _ensure_decode_headroom(self) -> None:
        """Preempt (if the policy allows) when the next decode step needs
        blocks the soft pool budget cannot grant: rows about to cross a
        block boundary each allocate one block (a speculative step may
        write up to ``k + 1`` tokens per row, crossing several)."""
        cache = self._cache
        if not isinstance(cache, PagedKVCache) or cache.max_blocks is None:
            return
        bs = cache.block_size
        extra = (self._spec.config.k + 1) if self._spec is not None else 1
        crossing = sum(
            -(-(int(self._lengths[row]) + extra) // bs)
            - -(-int(self._lengths[row]) // bs)
            for row, slot in enumerate(self._slots)
            if slot is not None and not slot.prefilling)
        available = cache.available_blocks()
        if available is None or crossing <= available:
            return
        view = self._scheduler_view()
        for rid in self.scheduler.victims_for_blocks(view,
                                                     crossing - available):
            row = self._live.get(rid)
            if row is not None:
                self._preempt_row(row)

    def stream(self):
        """Yield :class:`TokenEvent`s until the session runs dry.

        A generator over repeated :meth:`step` calls; submitting or
        cancelling between iterations is supported, so a consumer can
        react to tokens as they land.
        """
        while self.has_work():
            yield from self.step()

    def run(self) -> list[Completion]:
        """Drain the queue with continuous batching; return completions.

        Returns *every* completion finished since the last drain — in a
        long-lived session that includes requests that finished under an
        earlier :meth:`stream` whose completions were never taken.
        """
        while self.has_work():
            self.step()
        return self.take_completions()

    def take_completions(self) -> list[Completion]:
        """Drain and return every completion finished since the last take."""
        finished = self._finished
        self._finished = []
        return finished

    def _decode_step(self) -> list[TokenEvent]:
        """One single-token decode over the active sub-batch."""
        cache = self._cache
        slots = self._slots
        batch = self.max_batch_size
        active_rows = np.array([row for row, slot in enumerate(slots)
                                if slot is not None and not slot.prefilling],
                               dtype=np.int64)
        n = len(active_rows)
        positions = self._lengths[active_rows]
        total = max(cache.seq_len, int(positions.max()) + 1)
        kv_mask = np.where(np.arange(total)[None, :] < (positions + 1)[:, None],
                           0.0, -np.inf).astype(np.float32)[:, None, None, :]
        # Full batches take the rows=None fast path (zero-copy dense views,
        # whole-table paged gathers); partial batches forward only the
        # active rows, so draining waves stop paying for idle slots.
        decode_rows = None if n == batch else active_rows

        start = time.perf_counter()
        logits = self.model(self._pending[active_rows][:, None], cache=cache,
                            positions=positions[:, None], kv_mask=kv_mask,
                            decode_rows=decode_rows)
        self.stats.decode_seconds += time.perf_counter() - start
        self.stats.decode_tokens += n
        self.stats.decode_steps += 1
        self.stats.decode_slot_steps += batch
        kv_streamed = -1
        if isinstance(cache, PagedKVCache):
            read = cache.take_read_stats()
            if cache.block_decode and read.logical_bytes:
                scratch = read.peak_scratch_bytes
                kv_streamed = read.streamed_bytes
                self.stats.decode_bytes_not_gathered += \
                    read.bytes_not_gathered
                self.stats.dequant_cache_hits += read.dequant_hits
                self.stats.dequant_cache_misses += read.dequant_misses
            else:
                # The gather path (including the FP32 pool's short-
                # context reads, where one chunk would cover the whole
                # context anyway) materialises dense K and V copies of
                # every row's full context, once per layer.
                config = self.model.config
                scratch = 2 * n * config.num_heads * total \
                    * (config.d_model // config.num_heads) * 4
            self.stats.decode_peak_scratch_bytes = max(
                self.stats.decode_peak_scratch_bytes, scratch)

        self._lengths[active_rows] += 1
        # Tokens and bytes must count the same population: paged caches
        # report their own cached_tokens; the rectangle has no per-row
        # accounting, so its bytes (the whole rectangle) are divided over
        # live tokens only.
        if isinstance(cache, PagedKVCache):
            live_tokens = cache.cached_tokens
        else:
            live_tokens = int(self._lengths[active_rows].sum())
        if live_tokens > self.stats.kv_peak_tokens:
            self.stats.kv_peak_tokens = live_tokens
            self.stats.kv_peak_used_bytes = cache.used_bytes()
            self.stats.kv_peak_physical_bytes = (
                cache.physical_used_bytes()
                if isinstance(cache, PagedKVCache) else cache.used_bytes())
        if self.record_trace:
            kv_bytes = cache.used_bytes()
            self.trace.append(StepTrace(
                rows=n, tokens=n, kv_bytes=kv_bytes,
                kv_bytes_streamed=kv_streamed if kv_streamed >= 0
                else kv_bytes))
        # The rectangular cache's allocated_bytes is an FP16 projection by
        # default; its buffers (like the paged pools) are really FP32.
        allocated = (cache.allocated_bytes(bytes_per_element=4)
                     if isinstance(cache, KVCache) else cache.allocated_bytes())
        self.stats.kv_peak_allocated_bytes = max(
            self.stats.kv_peak_allocated_bytes, allocated)

        sampled = self._sample(logits.data[:, -1],
                               [slots[row] for row in active_rows])
        events = []
        for i, row in enumerate(active_rows):
            slot = slots[row]
            token = int(sampled[i])
            slot.generated.append(token)
            self._pending[row] = token
            reason = self._finish_reason(row)
            events.append(TokenEvent(slot.request.request_id, token, reason))
            if reason is not None:
                self._retire(row, reason)
        return events

    def _spec_decode_step(self) -> list[TokenEvent]:
        """One speculative decode step: draft, verify, commit/roll back.

        Per active row with committed context ``L`` and pending token
        ``t`` (token index ``L``, not yet written): the draft model
        proposes ``d_1..d_k`` continuations, and one multi-token target
        forward writes ``[t, d_1..d_k]`` at positions ``L..L+k`` and
        returns logits for every position — position ``L+i``'s logits
        are the target's next-token distribution after ``d_i``, exactly
        what target-only decode would compute there.  Tokens emit in
        stream order (the target's own choice at each position, drawn
        with the request's private RNG under the default ``"exact"``
        policy) while the emitted token keeps matching the next draft;
        the first mismatch, terminal token, or the post-run bonus token
        ends the row's run.  The caches then truncate back to the
        committed length (:meth:`PagedKVCache.truncate_rows` — shared
        prefix blocks are refcount-protected, uncommitted quantized
        blocks invalidate their dequant-memo entries).

        On the quantized backend the verify runs as *clone-rows decode*:
        each verify position becomes its own width-1 batch row through
        the standard ``write_token`` + block-decode read path, because
        BLAS GEMMs are bit-stable across the batch axis but not across
        the query-width axis — a width-``k+1`` span forward would write
        K/V that differ from single-token decode's by ulps, and
        quantizing such a block amplifies an ulp into a full
        quantization step, breaking greedy parity.  Clone rounds are
        still chunked at block boundaries so ``write_token``'s own lazy
        flush quantizes a block only after every token in it is already
        accepted (rows reach round ``r + 1`` only by fully accepting
        round ``r``); rollbacks therefore always land inside the
        buffered block and never release pool blocks mid-request.
        """
        cache = self._cache
        slots = self._slots
        spec = self._spec
        batch = self.max_batch_size
        active_rows = np.array([row for row, slot in enumerate(slots)
                                if slot is not None and not slot.prefilling],
                               dtype=np.int64)
        n = len(active_rows)
        lengths = self._lengths[active_rows].copy()
        limit = min(self.model.config.max_seq_len,
                    spec.draft.config.max_seq_len)
        k_eff = np.zeros(n, dtype=np.int64)
        for j, row in enumerate(active_rows):
            slot = slots[row]
            remaining = slot.request.params.max_new_tokens \
                - len(slot.generated)
            k_eff[j] = max(0, min(spec.config.k, remaining - 1,
                                  limit - int(lengths[j]) - 1))
        if not k_eff.any():
            # Nobody can usefully draft (every request is on its last
            # token, or at the context-window limit): plain decode is
            # the same work without the verify detour.
            return self._decode_step()

        start_t = time.perf_counter()
        draft_idx = np.flatnonzero(k_eff > 0)
        proposals, qvecs, draft_tokens = spec.propose(
            active_rows[draft_idx],
            [slots[row] for row in active_rows[draft_idx]],
            lengths[draft_idx], k_eff[draft_idx])
        # Per-row verify token list: [pending, d_1..d_k].  Rows that
        # could not draft fold in as width-1 verifies (a plain decode
        # through the same forward).
        verify: list[list[int]] = [
            [int(self._pending[row])] for row in active_rows]
        qrow: list = [None] * n
        for jj, j in enumerate(draft_idx):
            verify[j] += [int(t) for t in proposals[jj]]
            if qvecs is not None:
                qrow[j] = qvecs[jj]

        params = [slots[row].request.params for row in active_rows]
        rngs = [slots[row].rng for row in active_rows]
        emitted: list[list[int]] = [[] for _ in range(n)]
        reasons: list[str | None] = [None] * n
        done = np.zeros(n, dtype=bool)
        offset = np.zeros(n, dtype=np.int64)
        written = lengths.copy()
        accepted_step = 0
        verify_tokens = 0
        need_probs = spec.config.policy == "leftover"
        is_quant = isinstance(cache, QuantizedPagedKVCache)
        bs = cache.block_size if isinstance(cache, PagedKVCache) else 0
        max_pos = self.model.config.max_seq_len - 1
        kv_streamed = 0
        kv_streamed_valid = False
        scratch = 0

        while not done.all():
            live = np.flatnonzero(~done)
            starts = lengths[live] + offset[live]
            rem = np.array([len(verify[j]) - int(offset[j]) for j in live],
                           dtype=np.int64)
            take = np.minimum(rem, bs - starts % bs) if is_quant else rem
            rows_arr = active_rows[live]
            width = int(take.max())
            total = max(int((starts + take).max()), cache.seq_len)
            if is_quant:
                # Clone-rows decode: verify position L+i of a row is its
                # own width-1 batch row, so every projection GEMM and
                # cache write is bitwise the one sequential decode runs
                # (batch-axis GEMM stability), and write_token's own
                # boundary flush quantizes blocks at the same points.
                clone_rows = np.repeat(rows_arr, take)
                clone_pos = np.concatenate(
                    [np.arange(int(s), int(s) + int(t))
                     for s, t in zip(starts, take)])
                clone_toks = np.concatenate(
                    [np.asarray(verify[j][int(offset[j]):
                                          int(offset[j]) + int(t)])
                     for j, t in zip(live, take)]).astype(np.int64)
                allow = np.arange(total)[None, :] <= clone_pos[:, None]
                kv_mask = np.where(allow, 0.0, -np.inf).astype(
                    np.float32)[:, None, None, :]
                out = self.model(clone_toks[:, None], cache=cache,
                                 positions=clone_pos[:, None],
                                 kv_mask=kv_mask, decode_rows=clone_rows)
                flat = out.data[:, -1]
                logits_arr = np.zeros((len(live), width, flat.shape[-1]),
                                      dtype=flat.dtype)
                pos0 = 0
                for jj, t in enumerate(take):
                    logits_arr[jj, :int(t)] = flat[pos0:pos0 + int(t)]
                    pos0 += int(t)
            else:
                toks = np.zeros((len(live), width), dtype=np.int64)
                positions = np.zeros((len(live), width), dtype=np.int64)
                offs = np.arange(width)
                for jj, j in enumerate(live):
                    o, t = int(offset[j]), int(take[jj])
                    toks[jj, :t] = verify[j][o:o + t]
                    positions[jj] = np.minimum(int(starts[jj]) + offs,
                                               max_pos)
                query_pos = starts[:, None] + offs[None, :]
                allow = np.arange(total)[None, None, :] \
                    <= query_pos[:, :, None]
                kv_mask = np.where(allow, 0.0,
                                   -np.inf).astype(np.float32)[:, None]
                logits = self.model(toks, cache=cache, cache_rows=rows_arr,
                                    cache_lens=take, cache_starts=starts,
                                    positions=positions, kv_mask=kv_mask)
                logits_arr = logits.data
            verify_tokens += int(take.sum())
            written[live] = starts + take
            if isinstance(cache, PagedKVCache):
                read = cache.take_read_stats()
                if cache.block_decode and read.logical_bytes:
                    scratch = max(scratch, read.peak_scratch_bytes)
                    kv_streamed += read.streamed_bytes
                    kv_streamed_valid = True
                    self.stats.decode_bytes_not_gathered += \
                        read.bytes_not_gathered
                    self.stats.dequant_cache_hits += read.dequant_hits
                    self.stats.dequant_cache_misses += read.dequant_misses

            # Acceptance, offset by offset: every live row emits exactly
            # one token per offset it reaches, in stream order, so each
            # request's RNG draws line up with target-only decode.
            stopped = np.zeros(len(live), dtype=bool)
            for o in range(width):
                sub = [jj for jj in range(len(live))
                       if take[jj] > o and not stopped[jj]]
                if not sub:
                    break
                sub_rows = [int(live[jj]) for jj in sub]
                sub_logits = logits_arr[sub, o]
                if need_probs:
                    choices = None
                    pvecs = _filtered_probs(sub_logits,
                                            [params[j] for j in sub_rows])
                else:
                    choices = _sample_tokens(sub_logits,
                                             [params[j] for j in sub_rows],
                                             [rngs[j] for j in sub_rows])
                for idx, jj in enumerate(sub):
                    j = int(live[jj])
                    g = int(offset[j]) + o       # global verify offset
                    has_draft = g + 1 < len(verify[j])
                    par = params[j]
                    if need_probs and not par.greedy:
                        if has_draft:
                            tok, ok = leftover_accept(
                                pvecs[idx], qrow[j][g], verify[j][g + 1],
                                rngs[j])
                        else:  # bonus position: a plain target sample
                            tok, ok = sample_from_probs(pvecs[idx],
                                                        rngs[j]), False
                    else:
                        tok = int(sub_logits[idx].argmax()) \
                            if need_probs else int(choices[idx])
                        ok = has_draft and tok == verify[j][g + 1]
                    emitted[j].append(int(tok))
                    if ok:
                        accepted_step += 1
                    reason = self._token_finish_reason(
                        par, int(tok),
                        len(slots[active_rows[j]].generated)
                        + len(emitted[j]),
                        int(lengths[j]) + g + 1)
                    if reason is not None:
                        reasons[j] = reason
                        stopped[jj] = True
                        done[j] = True
                    elif not ok:
                        stopped[jj] = True
                        done[j] = True
            # Rows that accepted their whole sub-span continue into the
            # next round (only possible with verify tokens left: the
            # bonus position always stops its row above).
            for jj in range(len(live)):
                if not stopped[jj]:
                    offset[live[jj]] += take[jj]

        # --- commit/rollback: truncate past the committed lengths ---
        new_lens = lengths + np.array([len(e) for e in emitted],
                                      dtype=np.int64)
        rollback = np.flatnonzero(written > new_lens)
        if len(rollback):
            cache.truncate_rows(active_rows[rollback], new_lens[rollback])
        spec.commit(active_rows[draft_idx], new_lens[draft_idx])
        self._lengths[active_rows] = new_lens

        total_emitted = int(new_lens.sum() - lengths.sum())
        self.stats.decode_seconds += time.perf_counter() - start_t
        self.stats.decode_tokens += total_emitted
        self.stats.decode_steps += 1
        self.stats.decode_slot_steps += batch
        self.stats.spec_proposed += int(k_eff.sum())
        self.stats.spec_accepted += accepted_step
        if isinstance(cache, PagedKVCache):
            self.stats.decode_peak_scratch_bytes = max(
                self.stats.decode_peak_scratch_bytes, scratch)
            live_tokens = cache.cached_tokens
        else:
            live_tokens = int(self._lengths[active_rows].sum())
        if live_tokens > self.stats.kv_peak_tokens:
            self.stats.kv_peak_tokens = live_tokens
            self.stats.kv_peak_used_bytes = cache.used_bytes()
            self.stats.kv_peak_physical_bytes = (
                cache.physical_used_bytes()
                if isinstance(cache, PagedKVCache) else cache.used_bytes())
        if self.record_trace:
            kv_bytes = cache.used_bytes()
            self.trace.append(StepTrace(
                rows=n, tokens=total_emitted, kv_bytes=kv_bytes,
                kv_bytes_streamed=kv_streamed if kv_streamed_valid
                else kv_bytes,
                spec_proposed=int(k_eff.sum()),
                spec_accepted=accepted_step,
                spec_draft_tokens=draft_tokens,
                spec_verify_tokens=verify_tokens))
        allocated = (cache.allocated_bytes(bytes_per_element=4)
                     if isinstance(cache, KVCache)
                     else cache.allocated_bytes())
        self.stats.kv_peak_allocated_bytes = max(
            self.stats.kv_peak_allocated_bytes, allocated)

        events: list[TokenEvent] = []
        for j, row in enumerate(active_rows):
            slot = slots[row]
            rid = slot.request.request_id
            for idx, tok in enumerate(emitted[j]):
                slot.generated.append(int(tok))
                final = idx == len(emitted[j]) - 1
                events.append(TokenEvent(rid, int(tok),
                                         reasons[j] if final else None))
            self._pending[row] = int(emitted[j][-1])
            if reasons[j] is not None:
                self._retire(row, reasons[j])
        return events

    def _scheduler_view(self, free_slots: int | None = None) -> SchedulerView:
        """Snapshot of engine state for one scheduler decision."""
        if free_slots is None:
            free_slots = sum(slot is None for slot in self._slots)
        running = tuple(RunningInfo(request_id=slot.request.request_id,
                                    row=row,
                                    priority=slot.request.params.priority,
                                    tokens_generated=len(slot.generated),
                                    context_len=int(self._lengths[row]),
                                    prefill_remaining=(
                                        len(slot.prefill_tokens)
                                        - slot.prefill_pos
                                        if slot.prefilling else 0))
                        for row, slot in enumerate(self._slots)
                        if slot is not None)
        cache = self._cache
        if isinstance(cache, PagedKVCache):
            free_blocks = cache.free_blocks()
            available = cache.available_blocks()
            block_size = cache.block_size
        else:
            free_blocks, available, block_size = 0, None, self.block_size
        store = self._prefix

        def prefix_peek(tokens):
            if store is None:
                return (0, None)
            match = store.peek(tokens)
            return (match.shared_len, match.node_key)

        return SchedulerView(free_slots=free_slots, running=running,
                             free_blocks=free_blocks,
                             available_blocks=available,
                             block_size=block_size, prefix_peek=prefix_peek)

    def _fit_to_blocks(self, chosen: list[_QueueEntry],
                       view: SchedulerView) -> list[_QueueEntry]:
        """Trim an admission list to the soft block budget.

        Keeps the longest prefix of the scheduler's choice whose
        estimated new-block demand (prompt blocks minus cached shared
        blocks) fits :meth:`PagedKVCache.available_blocks`.  When the
        engine is otherwise idle the head request is admitted regardless
        — the budget is soft, and degrading to one-at-a-time serving
        beats stalling.
        """
        if not chosen or view.available_blocks is None:
            return list(chosen)
        kept: list[_QueueEntry] = []
        budget = view.available_blocks
        for entry in chosen:
            shared, _ = view.prefix_peek(entry.tokens)
            needed = max(0, -(-len(entry.tokens) // view.block_size)
                         - shared // view.block_size)
            if needed > budget and (kept or self.num_active > 0):
                break
            kept.append(entry)
            budget = max(0, budget - needed)
        return kept

    def _defer_wave_duplicates(self,
                               chosen: list[_QueueEntry]
                               ) -> list[_QueueEntry]:
        """Hold back same-wave requests that share an uncached prefix.

        Prompts adopt prefixes from the store, which only indexes a
        prefix *after* some wave prefilled it — so a cold shared prefix
        arriving sixteen-fold in one wave would prefill sixteen times.
        Keep one representative per uncached leading block; the deferred
        rest stay queued and the admit loop re-selects them immediately
        after the representative's wave captured the prefix, turning the
        cold burst into one full prefill plus suffix-only prefills within
        the same :meth:`step`.
        """
        if self._prefix is None:
            return chosen
        bs = self._cache.block_size
        kept: list[_QueueEntry] = []
        claimed: set[tuple[int, ...]] = set()
        # Rows still mid chunked prefill have claimed their leading block
        # too: their prefix is only captured once fully written, so
        # same-prefix arrivals must keep waiting for that capture instead
        # of redundantly prefilling alongside.
        for slot in self._slots:
            if slot is not None and slot.prefilling \
                    and len(slot.prefill_tokens) > bs:
                claimed.add(tuple(int(t)
                                  for t in slot.prefill_tokens[:bs]))
        for entry in chosen:
            tokens = entry.tokens
            if len(tokens) > bs:  # at least one shareable full block
                if self._prefix.peek(tokens).shared_len < bs:
                    key = tuple(int(t) for t in tokens[:bs])
                    if key in claimed:
                        continue  # adopts the representative's capture
                    claimed.add(key)
            kept.append(entry)
        return kept

    def _preempt_row(self, row: int) -> None:
        """Evict a running request to reclaim its slot and blocks.

        The request re-queues at the front with its generated progress
        and private RNG stream intact; only its exclusively-owned blocks
        return to the pool (the shared prefix survives in the store), so
        re-admission restores from the surviving prefix and re-prefills
        just the rest.
        """
        slot = self._slots[row]
        tokens = np.concatenate([slot.request.prompt,
                                 np.asarray(slot.generated, dtype=np.int64)])
        self._queue.appendleft(_QueueEntry(request=slot.request,
                                           tokens=tokens,
                                           generated=slot.generated,
                                           rng=slot.rng))
        self._slots[row] = None
        self._lengths[row] = 0
        self._live.pop(slot.request.request_id, None)
        self._cache.free_rows(np.array([row]))
        self._cache.trim(int(self._lengths.max()))
        if self._spec is not None:
            self._spec.drop_rows(np.array([row]))
        self.stats.preemptions += 1

    def _admit(self) -> list[TokenEvent]:
        """Admit waiting work as the scheduler directs.

        Each round asks the scheduler for an admission list, trims it to
        the block budget, claims slots for it, and lets the claimed rows
        spend the step's prefill budget; when nothing fits (no slots or
        no blocks) the scheduler may name victims to preempt, otherwise
        admission waits for retirements.  Running the prefill inside the
        round loop keeps the one-shot path's same-step pipelining: a
        wave that completes (and captures its prefix) lets deferred
        same-prefix requests re-select as suffix-only prefills within
        this very step.
        """
        events: list[TokenEvent] = []
        while self._queue:
            free = [row for row, slot in enumerate(self._slots)
                    if slot is None]
            view = self._scheduler_view(len(free))
            queue = list(self._queue)
            chosen = (self.scheduler.select(queue, len(free),
                                            view)[:len(free)]
                      if free else [])
            chosen = self._defer_wave_duplicates(chosen)
            chosen = self._fit_to_blocks(chosen, view)
            if not chosen:
                preempted = False
                for rid in self.scheduler.preempt(queue, view):
                    victim_row = self._live.get(rid)
                    if victim_row is not None:
                        self._preempt_row(victim_row)
                        preempted = True
                if not preempted:
                    break
                continue
            self._claim_wave(chosen, free[:len(chosen)])
            events += self._prefill_step()
        return events

    def _claim_wave(self, entries: list[_QueueEntry],
                    rows: list[int]) -> None:
        """Move queue entries into slots, in the *prefilling* state.

        Claiming installs the slot, attaches whatever shared prefix the
        store holds (the adopted blocks are context the row never
        forwards), and books the admission's prompt accounting — but
        forwards nothing: chunk forwards happen in
        :meth:`_prefill_step`, under the step's token budget.
        """
        for entry in entries:
            self._queue.remove(entry)
        for entry, row in zip(entries, rows):
            shared = 0
            if self._prefix is not None:
                shared = self._prefix.attach(row, entry.tokens)
            slot = _Slot(request=entry.request, rng=entry.rng,
                         generated=entry.generated,
                         prefill_tokens=np.asarray(entry.tokens,
                                                   dtype=np.int64),
                         prefill_pos=shared)
            self._slots[row] = slot
            self._lengths[row] = shared
            self._live[entry.request_id] = row
            # prompt_tokens counts context as it is *established* (the
            # adopted prefix now, each chunk as it forwards), so the
            # ``prompt == shared + prefill`` invariant holds at every
            # instant — including across mid-prefill cancels/preempts,
            # whose never-written remainders simply never count.
            self.stats.prompt_tokens += shared
            self.stats.shared_prompt_tokens += shared

    def _prefill_step(self) -> list[TokenEvent]:
        """Advance prefilling rows by one budgeted ragged chunk wave.

        The scheduler's ``prefill_order`` (arrival order if the policy
        has none) ranks the prefilling rows; each row in turn takes
        ``min(remaining prompt, remaining budget)`` tokens — rounded
        down to whole cache blocks unless the grant finishes the prompt
        — until the step's budget is spent.  The granted spans forward
        as one ragged
        wave — written via ``prefill_rows`` and attended block-resident
        over the chunk grid — and rows whose final prompt token lands
        this wave sample their first token, capture their prefix, and
        flip to decoding (the LM head is skipped for every other row via
        negative ``logits_positions``).
        """
        budget = self._prefill_budget
        prefilling = {slot.request.request_id: (row, slot)
                      for row, slot in enumerate(self._slots)
                      if slot is not None and slot.prefilling}
        if not prefilling or (budget is not None and budget < 1):
            return []
        order_fn = getattr(self.scheduler, "prefill_order", None)
        if order_fn is not None:
            view = self._scheduler_view()
            infos = [info for info in view.running
                     if info.request_id in prefilling]
            order = [rid for rid in order_fn(infos, view)
                     if rid in prefilling]
        else:
            order = sorted(prefilling)
        # Non-final grants round down to the cache's block granularity:
        # a chunk that stops mid-block would leave its freshest keys in
        # the FP32 write buffer where the one-shot span has already
        # quantized that block — the quantized backend would then read
        # different values chunked vs one-shot.  The effective per-step
        # budget is at least one block so the head of the order always
        # makes progress.
        grain = max(1, int(getattr(self._cache, "block_size", 1) or 1))
        grants: list[tuple[int, _Slot, int]] = []   # (row, slot, take)
        remaining_total = 0
        for rid in order:
            row, slot = prefilling[rid]
            remaining = len(slot.prefill_tokens) - slot.prefill_pos
            remaining_total += remaining
            if budget is None:
                take = remaining
            else:
                take = min(remaining, max(budget, grain if not grants
                                          else 0))
                if take < remaining:
                    take -= take % grain
            if take < 1:
                continue
            grants.append((row, slot, take))
            if budget is not None:
                budget = max(0, budget - take)
        if not grants:
            return []
        granted = sum(take for _, _, take in grants)
        self._prefill_budget = budget
        self.stats.prefill_chunks += len(grants)
        self.stats.prefill_tokens_deferred += remaining_total - granted

        # One ragged wave over the granted spans: row j writes
        # ``take`` tokens after its ``prefill_pos`` established context
        # and attends everything up to each written position.  Rows sit
        # at different depths, so causality is a full per-row mask, not
        # the uniform triangular one.
        cache = self._cache
        rows_arr = np.array([row for row, _, _ in grants], dtype=np.int64)
        starts = np.array([slot.prefill_pos for _, slot, _ in grants],
                          dtype=np.int64)
        widths = np.array([take for _, _, take in grants], dtype=np.int64)
        finishing = np.array([slot.prefill_pos + take
                              >= len(slot.prefill_tokens)
                              for _, slot, take in grants])
        width = int(widths.max())
        n = len(grants)
        tokens = np.zeros((n, width), dtype=np.int64)
        positions = np.zeros((n, width), dtype=np.int64)
        # Clamp padding positions into the RoPE table; padded K/V are
        # never written (prefill_rows writes true lengths only) and
        # padded logits are never computed.
        max_pos = self.model.config.max_seq_len - 1
        offsets = np.arange(width)
        for j, (row, slot, take) in enumerate(grants):
            s = slot.prefill_pos
            tokens[j, :take] = slot.prefill_tokens[s:s + take]
            positions[j] = np.minimum(s + offsets, max_pos)
        total = max(int((starts + widths).max()), cache.seq_len)
        query_pos = starts[:, None] + offsets[None, :]        # (n, width)
        allow = np.arange(total)[None, None, :] <= query_pos[:, :, None]
        kv_mask = np.where(allow, 0.0, -np.inf).astype(np.float32)[:, None]
        logits_positions = np.where(finishing, widths - 1, -1)

        start_t = time.perf_counter()
        logits = self.model(tokens, cache=cache, cache_rows=rows_arr,
                            cache_lens=widths, cache_starts=starts,
                            positions=positions, kv_mask=kv_mask,
                            logits_positions=logits_positions)
        self.stats.prefill_seconds += time.perf_counter() - start_t
        self.stats.prefill_tokens += granted
        self.stats.prompt_tokens += granted
        kv_streamed = -1
        if isinstance(cache, PagedKVCache):
            # Snapshot the wave's read accounting now so prefill traffic
            # never leaks into the decode step's snapshot.
            read = cache.take_read_stats()
            self.stats.prefill_dequant_hits += read.dequant_hits
            self.stats.prefill_dequant_misses += read.dequant_misses
            if read.logical_bytes:
                kv_streamed = read.streamed_bytes
        if self.record_trace:
            kv_bytes = cache.used_bytes()
            self.trace.append(StepTrace(
                rows=n, tokens=granted, kv_bytes=kv_bytes,
                kv_bytes_streamed=kv_streamed if kv_streamed >= 0
                else kv_bytes, prefill_tokens=granted))

        for row, slot, take in grants:
            slot.prefill_pos += take
            self._lengths[row] = slot.prefill_pos

        events: list[TokenEvent] = []
        finish_idx = np.flatnonzero(finishing)
        if len(finish_idx) == 0:
            return events
        done = [grants[i] for i in finish_idx]
        if self._prefix is not None:
            # Index the fully written prompts (before any same-step
            # retirement can release their blocks).  Only the original
            # prompt is captured — a restored request's regenerated
            # continuation is its own, not a reusable prefix.
            for row, slot, _ in done:
                self._prefix.capture(row, slot.request.prompt)
        first = self._sample(logits.data[finish_idx, 0],
                             [slot for _, slot, _ in done])
        for j, (row, slot, _) in enumerate(done):
            token = int(first[j])
            slot.generated.append(token)
            slot.prefill_tokens = None
            self._pending[row] = token
            reason = self._finish_reason(row)
            events.append(TokenEvent(slot.request.request_id, token,
                                     reason))
            if reason is not None:
                self._retire(row, reason)
        return events

    def _finish_reason(self, row: int) -> str | None:
        """Terminal state for the row's newest token, or None to continue."""
        slot = self._slots[row]
        return self._token_finish_reason(slot.request.params,
                                         slot.generated[-1],
                                         len(slot.generated),
                                         int(self._lengths[row]))

    def _token_finish_reason(self, params: SamplingParams, token: int,
                             generated: int, context_len: int) -> str | None:
        """:meth:`_finish_reason` for a token not yet committed to its
        slot: ``generated`` counts the request's tokens *including* this
        one and ``context_len`` is the committed context after it — the
        state a speculative verify is about to commit."""
        if self.eos_token is not None and token == self.eos_token:
            return "eos"
        if token in params.stop_tokens:
            return "stop"
        if generated >= params.max_new_tokens:
            return "length"
        if context_len >= self.model.config.max_seq_len:
            # The next decode would write at position ``context_len``,
            # past the RoPE table (valid positions are < max_seq_len).
            return "max_seq_len"
        return None

    def _retire(self, row: int, reason: str) -> None:
        """Complete the row's request and release its slot and blocks."""
        slot = self._slots[row]
        request = slot.request
        tokens = np.concatenate([request.prompt,
                                 np.asarray(slot.generated, dtype=np.int64)])
        self._finished.append(Completion(request_id=request.request_id,
                                         tokens=tokens,
                                         prompt_len=len(request.prompt),
                                         finish_reason=reason))
        self._slots[row] = None
        self._lengths[row] = 0
        self._live.pop(request.request_id, None)
        # Paged caches return the row's blocks to the pool immediately so
        # waiting prompts can be admitted into the freed memory; the
        # rectangular cache reuses the row in place (no-op).  Trimming the
        # read width to the surviving rows keeps a persistent session from
        # forever gathering (and masking) the longest-ever row's width.
        self._cache.free_rows(np.array([row]))
        self._cache.trim(int(self._lengths.max()))
        if self._spec is not None:
            self._spec.drop_rows(np.array([row]))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(self, logits: np.ndarray, slots: list[_Slot]) -> np.ndarray:
        """Sample one token per row of ``(batch, vocab)`` logits from
        each slot's params and private RNG stream (see
        :func:`_sample_tokens`)."""
        return _sample_tokens(logits,
                              [slot.request.params for slot in slots],
                              [slot.rng for slot in slots])

    def _sample_with(self, logits: np.ndarray, params: list, rngs: list,
                     return_probs: bool = False):
        """:func:`_sample_tokens` with explicit params/RNGs — the hook
        the speculative decoder uses so draft proposals run the exact
        sampling math the engine itself does (just on the draft's own
        RNG streams)."""
        return _sample_tokens(logits, params, rngs,
                              return_probs=return_probs)
