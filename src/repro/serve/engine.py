"""Continuous-batching generation engine.

One engine step forwards every cache slot at once: a single-token decode
for the whole batch, with per-row RoPE positions and an additive key mask
so sequences of different lengths share one cache.  Finished sequences
free their slot (and, with a paged cache, their blocks) immediately and
waiting prompts are prefilled into the freed rows as a sub-batch
(``cache_rows``), so the batch stays full while the queue drains — the
standard continuous-batching discipline, scaled down.

The cache backend is selected by ``kv_cache``:

* ``"paged"`` (default) — block-granular FP32
  :class:`~repro.nn.paged_kv_cache.PagedKVCache`; memory tracks the sum
  of live tokens instead of ``batch x max_len``.
* ``"fineq"`` — :class:`~repro.nn.paged_kv_cache.QuantizedPagedKVCache`;
  full blocks stored in the paper's 2.33-bit format (~7x fewer bytes per
  full block, ~4.7x end-to-end with the FP32 write buffers; bounded
  perplexity delta instead of exact parity).
* ``"dense"`` — the rectangular preallocated
  :class:`~repro.nn.kv_cache.KVCache` of PR 1, kept as a baseline.

Greedy decoding on the ``"paged"`` and ``"dense"`` paths is
token-identical to the sequential
:meth:`repro.nn.model.TransformerLM.generate` path: per-row positions
match the sequential position counter exactly, cache reads return the
same float values, and masked slots contribute exact zeros to the
attention averages.

Prefill is lean: the final norm and LM-head projection run only at each
row's last prompt position (``logits_positions``), so prefill cost no
longer scales with ``vocab x prompt_len``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.autograd import no_grad
from repro.nn.kv_cache import KVCache
from repro.nn.paged_kv_cache import (DEFAULT_BLOCK_SIZE, PagedKVCache,
                                     QuantizedPagedKVCache)
from repro.nn.model import TransformerLM

#: Engine cache backends: constructor keyed by the ``kv_cache`` argument.
KV_CACHE_MODES = ("paged", "fineq", "dense")


@dataclass(frozen=True)
class Request:
    """One queued generation request."""

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    temperature: float = 0.0


@dataclass
class Completion:
    """A finished request: prompt plus generated continuation."""

    request_id: int
    tokens: np.ndarray
    prompt_len: int
    finish_reason: str  # "length" | "eos" | "max_seq_len"

    @property
    def new_tokens(self) -> np.ndarray:
        return self.tokens[self.prompt_len:]


@dataclass
class EngineStats:
    """Token/time accounting for throughput reporting."""

    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    decode_tokens: int = 0
    decode_seconds: float = 0.0
    decode_steps: int = 0
    decode_slot_steps: int = 0  # steps x batch slots (for occupancy)
    # KV-cache memory, sampled every decode step at the point of most
    # live context tokens (the serving-memory high-water mark).
    kv_peak_tokens: int = 0
    kv_peak_used_bytes: int = 0
    kv_peak_allocated_bytes: int = 0

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def occupancy(self) -> float:
        """Mean fraction of batch slots doing useful decode work."""
        return self.decode_tokens / self.decode_slot_steps if self.decode_slot_steps else 0.0

    @property
    def bytes_per_cached_token(self) -> float:
        """Cache bytes per live context token at the memory high-water mark."""
        return self.kv_peak_used_bytes / self.kv_peak_tokens if self.kv_peak_tokens else 0.0


@dataclass
class _Slot:
    """Live per-row decoding state."""

    request: Request
    generated: list[int] = field(default_factory=list)


class GenerationEngine:
    """Batched generation over a fixed pool of KV-cache slots.

    Parameters
    ----------
    model:
        The language model to serve (any :class:`TransformerLM`,
        quantized or not).
    max_batch_size:
        Number of cache slots, i.e. the decode batch width.
    eos_token:
        Optional token id that terminates a sequence early.
    rng:
        Generator for temperature sampling (one shared stream; greedy
        requests consume nothing).
    kv_cache:
        Cache backend: ``"paged"`` (default), ``"fineq"`` (quantized
        paged), or ``"dense"`` (rectangular baseline).
    block_size:
        Tokens per block for the paged backends.
    """

    def __init__(self, model: TransformerLM, max_batch_size: int = 8,
                 eos_token: int | None = None,
                 rng: np.random.Generator | None = None,
                 initial_capacity: int = 64, kv_cache: str = "paged",
                 block_size: int = DEFAULT_BLOCK_SIZE):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if kv_cache not in KV_CACHE_MODES:
            raise ValueError(f"kv_cache must be one of {KV_CACHE_MODES}, "
                             f"got {kv_cache!r}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.eos_token = eos_token
        self.rng = rng or np.random.default_rng(0)
        self.initial_capacity = initial_capacity
        self.kv_cache = kv_cache
        self.block_size = block_size
        self.stats = EngineStats()
        self._queue: deque[Request] = deque()
        self._next_id = 0

    def _make_cache(self, batch: int) -> KVCache | PagedKVCache:
        num_layers = self.model.config.num_layers
        if self.kv_cache == "dense":
            return KVCache(num_layers, batch=batch,
                           initial_capacity=self.initial_capacity)
        initial_blocks = batch * max(1, self.initial_capacity // self.block_size)
        cls = PagedKVCache if self.kv_cache == "paged" else QuantizedPagedKVCache
        return cls(num_layers, batch=batch, block_size=self.block_size,
                   initial_blocks=initial_blocks)

    # ------------------------------------------------------------------ #
    # request intake
    # ------------------------------------------------------------------ #
    def submit(self, prompt: np.ndarray, max_new_tokens: int,
               temperature: float = 0.0) -> int:
        """Queue a request; returns its id (completions carry it back)."""
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if prompt.size > self.model.config.max_seq_len:
            raise ValueError(f"prompt of {prompt.size} tokens exceeds "
                             f"max_seq_len={self.model.config.max_seq_len}")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        request = Request(request_id=self._next_id, prompt=prompt,
                          max_new_tokens=max_new_tokens,
                          temperature=temperature)
        self._next_id += 1
        self._queue.append(request)
        return request.request_id

    def generate_batch(self, prompts: list[np.ndarray], max_new_tokens: int,
                       temperature: float = 0.0) -> list[np.ndarray]:
        """Serve ``prompts`` and return full token arrays in input order."""
        ids = [self.submit(p, max_new_tokens, temperature) for p in prompts]
        done = {c.request_id: c for c in self.run()}
        return [done[i].tokens for i in ids]

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # the serving loop
    # ------------------------------------------------------------------ #
    def run(self) -> list[Completion]:
        """Drain the queue with continuous batching; return completions."""
        if not self._queue:
            return []
        batch = min(self.max_batch_size, len(self._queue))
        cache = self._make_cache(batch)
        slots: list[_Slot | None] = [None] * batch
        lengths = np.zeros(batch, dtype=np.int64)   # context tokens per row
        pending = np.zeros(batch, dtype=np.int64)   # next token to feed
        completions: list[Completion] = []

        with no_grad():
            self._admit(cache, slots, lengths, pending, completions)
            while any(slot is not None for slot in slots):
                self._decode_step(cache, slots, lengths, pending, completions)
                if self._queue and any(slot is None for slot in slots):
                    self._admit(cache, slots, lengths, pending, completions)
        return completions

    def _decode_step(self, cache: KVCache | PagedKVCache,
                     slots: list[_Slot | None],
                     lengths: np.ndarray, pending: np.ndarray,
                     completions: list[Completion]) -> None:
        """One whole-batch single-token decode + vectorized sampling."""
        batch = len(slots)
        active = np.array([slot is not None for slot in slots])
        # Free rows decode a dummy token at position 0; their slot-0 cache
        # entry is garbage that the next prefill overwrites, and their
        # logits are never sampled.  In the paged caches this pins at most
        # one pool block (fp32) or one buffered token (fineq) per idle
        # row, reclaimed when the row is readmitted.
        positions = np.where(active, lengths, 0)
        total = max(cache.seq_len, int(positions.max()) + 1)
        valid = np.where(active, positions + 1, total)
        kv_mask = np.where(np.arange(total)[None, :] < valid[:, None],
                           0.0, -np.inf).astype(np.float32)[:, None, None, :]

        start = time.perf_counter()
        logits = self.model(pending[:, None], cache=cache,
                            positions=positions[:, None], kv_mask=kv_mask)
        self.stats.decode_seconds += time.perf_counter() - start
        self.stats.decode_tokens += int(active.sum())
        self.stats.decode_steps += 1
        self.stats.decode_slot_steps += batch

        lengths[active] += 1
        # Tokens and bytes must count the same population: paged caches
        # report their own cached_tokens (which includes the one slot-0
        # dummy token idle rows keep re-writing, whose storage used_bytes
        # also counts); the rectangle has no per-row accounting, so its
        # bytes (the whole rectangle) are divided over live tokens only.
        if isinstance(cache, PagedKVCache):
            live_tokens = cache.cached_tokens
        else:
            live_tokens = int(lengths[active].sum())
        if live_tokens > self.stats.kv_peak_tokens:
            self.stats.kv_peak_tokens = live_tokens
            self.stats.kv_peak_used_bytes = cache.used_bytes()
        # The rectangular cache's allocated_bytes is an FP16 projection by
        # default; its buffers (like the paged pools) are really FP32.
        allocated = (cache.allocated_bytes(bytes_per_element=4)
                     if isinstance(cache, KVCache) else cache.allocated_bytes())
        self.stats.kv_peak_allocated_bytes = max(
            self.stats.kv_peak_allocated_bytes, allocated)

        temperatures = np.array([slot.request.temperature if slot else 0.0
                                 for slot in slots])
        sampled = self._sample(logits.data[:, -1], temperatures)
        for row, slot in enumerate(slots):
            if slot is None:
                continue
            token = int(sampled[row])
            slot.generated.append(token)
            pending[row] = token
            self._maybe_finish(row, slots, lengths, completions, cache)

    def _admit(self, cache: KVCache | PagedKVCache,
               slots: list[_Slot | None],
               lengths: np.ndarray, pending: np.ndarray,
               completions: list[Completion]) -> None:
        """Prefill waiting prompts into free slots until either runs out."""
        while self._queue:
            free = [row for row, slot in enumerate(slots) if slot is None]
            if not free:
                return
            rows = free[:len(self._queue)]
            requests = [self._queue.popleft() for _ in rows]
            prompt_lens = np.array([len(r.prompt) for r in requests])
            width = int(prompt_lens.max())
            tokens = np.zeros((len(rows), width), dtype=np.int64)
            for j, request in enumerate(requests):
                tokens[j, :prompt_lens[j]] = request.prompt

            # Lean prefill: norm + LM head only at each row's last *real*
            # prompt position — the only logits generation samples from.
            # cache_lens gives paged caches the true (unpadded) lengths.
            start = time.perf_counter()
            logits = self.model(tokens, cache=cache,
                                cache_rows=np.asarray(rows),
                                cache_lens=prompt_lens,
                                logits_positions=prompt_lens - 1)
            self.stats.prefill_seconds += time.perf_counter() - start
            self.stats.prefill_tokens += int(prompt_lens.sum())

            last = logits.data[:, 0]
            temperatures = np.array([r.temperature for r in requests])
            first = self._sample(last, temperatures)
            for j, (row, request) in enumerate(zip(rows, requests)):
                slots[row] = _Slot(request=request,
                                   generated=[int(first[j])])
                lengths[row] = prompt_lens[j]
                pending[row] = int(first[j])
                self._maybe_finish(row, slots, lengths, completions, cache)

    def _maybe_finish(self, row: int, slots: list[_Slot | None],
                      lengths: np.ndarray, completions: list[Completion],
                      cache: KVCache | PagedKVCache) -> None:
        """Complete + free the slot if the row hit a termination condition."""
        slot = slots[row]
        request = slot.request
        token = slot.generated[-1]
        if self.eos_token is not None and token == self.eos_token:
            reason = "eos"
        elif len(slot.generated) >= request.max_new_tokens:
            reason = "length"
        elif lengths[row] >= self.model.config.max_seq_len:
            # The next decode would write at position ``lengths[row]``,
            # past the RoPE table (valid positions are < max_seq_len).
            reason = "max_seq_len"
        else:
            return
        tokens = np.concatenate([request.prompt,
                                 np.asarray(slot.generated, dtype=np.int64)])
        completions.append(Completion(request_id=request.request_id,
                                      tokens=tokens,
                                      prompt_len=len(request.prompt),
                                      finish_reason=reason))
        slots[row] = None
        # Paged caches return the row's blocks to the pool immediately so
        # waiting prompts can be admitted into the freed memory; the
        # rectangular cache reuses the row in place (no-op).
        cache.free_rows(np.array([row]))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(self, logits: np.ndarray, temperatures: np.ndarray
                ) -> np.ndarray:
        """Vectorized greedy/temperature sampling over ``(batch, vocab)``."""
        greedy = logits.argmax(axis=-1)
        hot = temperatures > 0.0
        if not hot.any():
            return greedy
        scaled = logits / np.where(hot, temperatures, 1.0)[:, None]
        scaled = scaled - scaled.max(axis=-1, keepdims=True)
        probs = np.exp(scaled)
        probs /= probs.sum(axis=-1, keepdims=True)
        draws = self.rng.random(len(logits))
        sampled = (probs.cumsum(axis=-1) < draws[:, None]).sum(axis=-1)
        sampled = np.minimum(sampled, logits.shape[-1] - 1)
        return np.where(hot, sampled, greedy)
