"""Request-centric continuous-batching generation engine.

The engine is a *persistent session*: the KV cache and slot state are
engine members created once, so requests can be submitted, streamed, and
cancelled while serving is live instead of queueing for a one-shot batch
drain.  One :meth:`GenerationEngine.step` admits waiting prompts into
free slots (a ragged sub-batch prefill) and advances every *active* slot
by one decode token — idle slots are neither forwarded nor gathered
(``decode_rows`` threads the active sub-batch down to the cache), so a
draining batch costs only its live rows.

Typical streaming client::

    engine = GenerationEngine(model, max_batch_size=8)
    engine.submit(prompt_a, params=SamplingParams(max_new_tokens=32,
                                                  temperature=0.8,
                                                  top_p=0.95, seed=7))
    engine.submit(prompt_b, max_new_tokens=16)        # greedy shorthand
    for event in engine.stream():                     # TokenEvent stream
        print(event.request_id, event.token, event.finish_reason)
        if event.request_id == 0 and event.token == BORING:
            engine.cancel(0)                          # frees row + blocks
        if need_more_work:
            engine.submit(prompt_c, max_new_tokens=8) # mid-flight is fine
    done = engine.take_completions()

Per-request knobs live in a frozen :class:`SamplingParams` (temperature,
top-k, top-p, per-request seed, stop tokens, token budget); sampling is
vectorized across the batch with per-request RNG streams, so identical
requests sample identically regardless of batch composition.

The cache backend is selected by ``kv_cache``:

* ``"paged"`` (default) — block-granular FP32
  :class:`~repro.nn.paged_kv_cache.PagedKVCache`; memory tracks the sum
  of live tokens instead of ``batch x max_len``.
* ``"fineq"`` — :class:`~repro.nn.paged_kv_cache.QuantizedPagedKVCache`;
  full blocks stored in the paper's 2.33-bit format (~7x fewer bytes per
  full block, ~4.7x end-to-end with the FP32 write buffers; bounded
  perplexity delta instead of exact parity).
* ``"dense"`` — the rectangular preallocated
  :class:`~repro.nn.kv_cache.KVCache` of PR 1, kept as a baseline.

Greedy decoding on the ``"paged"`` and ``"dense"`` paths is
token-identical to the sequential
:meth:`repro.nn.model.TransformerLM.generate` path — including with
mid-flight submission and cancelled neighbour rows: per-row positions
match the sequential position counter exactly, cache reads return the
same float values, and masked slots contribute exact zeros to the
attention averages.

Prefill is lean: the final norm and LM-head projection run only at each
row's last prompt position (``logits_positions``), so prefill cost no
longer scales with ``vocab x prompt_len``.  :meth:`GenerationEngine.run`
and :meth:`GenerationEngine.generate_batch` remain as thin wrappers over
:meth:`GenerationEngine.step` for batch-oriented callers.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.autograd import no_grad
from repro.nn.kv_cache import KVCache
from repro.nn.paged_kv_cache import (DEFAULT_BLOCK_SIZE, PagedKVCache,
                                     QuantizedPagedKVCache)
from repro.nn.model import TransformerLM

#: Engine cache backends: constructor keyed by the ``kv_cache`` argument.
KV_CACHE_MODES = ("paged", "fineq", "dense")

#: Every terminal state a request can reach.
FINISH_REASONS = ("length", "eos", "stop", "max_seq_len", "cancelled")


@dataclass(frozen=True)
class SamplingParams:
    """Frozen per-request generation knobs.

    ``seed`` drives a private ``np.random.Generator`` for the request, so
    its sampled continuation is a function of (prompt, params) alone —
    batch neighbours never perturb it.  ``seed=None`` asks the engine to
    draw one from its own stream at submit time (reproducible per engine
    seed + submission order).  ``top_k``/``top_p`` of ``None`` disable
    the respective filter; ``top_k=1`` is exact greedy.  ``stop_tokens``
    terminate the request the step they are generated (the stop token is
    kept, mirroring ``eos`` handling).
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int | None = None
    top_p: float | None = None
    seed: int | None = None
    stop_tokens: tuple[int, ...] = ()

    def __post_init__(self):
        if self.max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        if self.temperature < 0.0:
            raise ValueError("temperature must be >= 0")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1 (or None to disable)")
        if self.top_p is not None and not 0.0 < self.top_p <= 1.0:
            raise ValueError("top_p must be in (0, 1] (or None to disable)")
        object.__setattr__(self, "stop_tokens",
                           tuple(int(t) for t in self.stop_tokens))

    @property
    def greedy(self) -> bool:
        """True when sampling degenerates to argmax (token-identical)."""
        return self.temperature <= 0.0 or self.top_k == 1


@dataclass(frozen=True)
class Request:
    """One queued generation request."""

    request_id: int
    prompt: np.ndarray
    params: SamplingParams

    # PR 1 compatibility: the old flat fields read through to params.
    @property
    def max_new_tokens(self) -> int:
        return self.params.max_new_tokens

    @property
    def temperature(self) -> float:
        return self.params.temperature


@dataclass(frozen=True)
class TokenEvent:
    """One streamed token (or terminal notice) for a request.

    ``token`` is ``None`` only for events that produce no token (a
    cancellation).  ``finish_reason`` is ``None`` while the request is
    still running and one of :data:`FINISH_REASONS` on its final event.
    """

    request_id: int
    token: int | None
    finish_reason: str | None = None


@dataclass
class Completion:
    """A finished request: prompt plus generated continuation."""

    request_id: int
    tokens: np.ndarray
    prompt_len: int
    finish_reason: str  # one of FINISH_REASONS

    @property
    def new_tokens(self) -> np.ndarray:
        return self.tokens[self.prompt_len:]


@dataclass
class EngineStats:
    """Token/time accounting for throughput reporting."""

    prefill_tokens: int = 0
    prefill_seconds: float = 0.0
    decode_tokens: int = 0
    decode_seconds: float = 0.0
    decode_steps: int = 0
    decode_slot_steps: int = 0  # steps x batch slots (for occupancy)
    # KV-cache memory, sampled every decode step at the point of most
    # live context tokens (the serving-memory high-water mark).
    kv_peak_tokens: int = 0
    kv_peak_used_bytes: int = 0
    kv_peak_allocated_bytes: int = 0

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def occupancy(self) -> float:
        """Mean fraction of batch slots doing useful decode work."""
        return self.decode_tokens / self.decode_slot_steps if self.decode_slot_steps else 0.0

    @property
    def bytes_per_cached_token(self) -> float:
        """Cache bytes per live context token at the memory high-water mark."""
        return self.kv_peak_used_bytes / self.kv_peak_tokens if self.kv_peak_tokens else 0.0


@dataclass
class _Slot:
    """Live per-row decoding state."""

    request: Request
    rng: np.random.Generator
    generated: list[int] = field(default_factory=list)


def apply_top_k_top_p(scaled: np.ndarray, top_k: np.ndarray,
                      top_p: np.ndarray) -> np.ndarray:
    """Mask ``(batch, vocab)`` scaled logits to each row's top-k/top-p set.

    ``top_k`` holds per-row k (``vocab`` disables), ``top_p`` per-row
    nucleus mass (``1.0`` disables).  One descending sort serves both
    filters: the k-th sorted logit is the top-k threshold, and the
    smallest sorted logit inside the minimal nucleus whose probability
    mass reaches ``top_p`` is the top-p threshold.  Ties at a threshold
    are kept (deterministic, never empties a row); masked entries are
    ``-inf`` so downstream softmax zeroes them exactly.
    """
    vocab = scaled.shape[-1]
    top_k = np.minimum(np.asarray(top_k, dtype=np.int64), vocab)
    top_p = np.asarray(top_p, dtype=np.float64)
    if np.all(top_k >= vocab) and np.all(top_p >= 1.0):
        return scaled
    order = np.argsort(scaled, axis=-1)[:, ::-1]
    sorted_logits = np.take_along_axis(scaled, order, axis=-1)
    kth = np.take_along_axis(sorted_logits, top_k[:, None] - 1, axis=-1)
    keep = scaled >= kth
    if np.any(top_p < 1.0):
        shifted = sorted_logits - sorted_logits[:, :1]
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        csum = probs.cumsum(axis=-1)
        # A sorted position is inside the nucleus while the mass *before*
        # it is < top_p; the first token is therefore always kept.
        in_nucleus = (csum - probs) < top_p[:, None]
        counts = in_nucleus.sum(axis=-1)
        cutoff = np.take_along_axis(sorted_logits, counts[:, None] - 1,
                                    axis=-1)
        keep &= scaled >= cutoff
    return np.where(keep, scaled, -np.inf)


class GenerationEngine:
    """A persistent serving session over a fixed pool of KV-cache slots.

    The cache and per-slot state live for the engine's lifetime:
    :meth:`submit` enqueues work at any time (including mid-stream),
    :meth:`step` advances one admit+decode iteration, :meth:`stream`
    yields :class:`TokenEvent`s as tokens land, :meth:`cancel` frees a
    request's row and cache blocks immediately, and
    :meth:`take_completions` drains finished requests.  :meth:`run` and
    :meth:`generate_batch` wrap :meth:`step` for batch-oriented callers.

    Parameters
    ----------
    model:
        The language model to serve (any :class:`TransformerLM`,
        quantized or not).
    max_batch_size:
        Number of cache slots, i.e. the decode batch width.
    eos_token:
        Optional token id that terminates a sequence early.
    rng:
        Engine-level generator; only used to draw per-request seeds for
        requests that did not fix one in :class:`SamplingParams`.
    kv_cache:
        Cache backend: ``"paged"`` (default), ``"fineq"`` (quantized
        paged), or ``"dense"`` (rectangular baseline).
    block_size:
        Tokens per block for the paged backends.
    """

    def __init__(self, model: TransformerLM, max_batch_size: int = 8,
                 eos_token: int | None = None,
                 rng: np.random.Generator | None = None,
                 initial_capacity: int = 64, kv_cache: str = "paged",
                 block_size: int = DEFAULT_BLOCK_SIZE):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if kv_cache not in KV_CACHE_MODES:
            raise ValueError(f"kv_cache must be one of {KV_CACHE_MODES}, "
                             f"got {kv_cache!r}")
        self.model = model
        self.max_batch_size = max_batch_size
        self.eos_token = eos_token
        self.rng = rng or np.random.default_rng(0)
        self.initial_capacity = initial_capacity
        self.kv_cache = kv_cache
        self.block_size = block_size
        self.stats = EngineStats()
        self._queue: deque[Request] = deque()
        self._next_id = 0
        # Session state: created once, reused across every step()/run().
        self._cache: KVCache | PagedKVCache | None = None
        self._slots: list[_Slot | None] = [None] * max_batch_size
        self._lengths = np.zeros(max_batch_size, dtype=np.int64)
        self._pending = np.zeros(max_batch_size, dtype=np.int64)
        self._live: dict[int, int] = {}      # request_id -> slot row
        self._finished: list[Completion] = []
        self._events: list[TokenEvent] = []  # out-of-step events (cancels)

    @property
    def cache(self) -> KVCache | PagedKVCache | None:
        """The session's KV cache (None until the first admit)."""
        return self._cache

    def _make_cache(self) -> KVCache | PagedKVCache:
        num_layers = self.model.config.num_layers
        batch = self.max_batch_size
        if self.kv_cache == "dense":
            return KVCache(num_layers, batch=batch,
                           initial_capacity=self.initial_capacity)
        initial_blocks = batch * max(1, self.initial_capacity // self.block_size)
        cls = PagedKVCache if self.kv_cache == "paged" else QuantizedPagedKVCache
        return cls(num_layers, batch=batch, block_size=self.block_size,
                   initial_blocks=initial_blocks)

    # ------------------------------------------------------------------ #
    # request intake and cancellation
    # ------------------------------------------------------------------ #
    def submit(self, prompt: np.ndarray, max_new_tokens: int | None = None,
               temperature: float | None = None,
               params: SamplingParams | None = None) -> int:
        """Queue a request; returns its id (events/completions carry it).

        Either pass ``params`` (the request-centric API) or the PR 1
        shorthand ``max_new_tokens``/``temperature``, not both.  Works at
        any time, including while :meth:`stream` is being consumed.
        """
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        if prompt.size > self.model.config.max_seq_len:
            raise ValueError(f"prompt of {prompt.size} tokens exceeds "
                             f"max_seq_len={self.model.config.max_seq_len}")
        if params is None:
            if max_new_tokens is None:
                raise ValueError("pass max_new_tokens or params")
            params = SamplingParams(max_new_tokens=max_new_tokens,
                                    temperature=temperature or 0.0)
        elif max_new_tokens is not None or temperature is not None:
            raise ValueError("pass either params or the max_new_tokens/"
                             "temperature shorthand, not both")
        if params.seed is None:
            params = replace(params, seed=int(self.rng.integers(2 ** 32)))
        request = Request(request_id=self._next_id, prompt=prompt,
                          params=params)
        self._next_id += 1
        self._queue.append(request)
        return request.request_id

    def cancel(self, request_id: int) -> bool:
        """Terminate a queued or running request immediately.

        A running request's slot and cache blocks are freed right away;
        its partial output lands in :meth:`take_completions` with
        ``finish_reason="cancelled"`` and a terminal :class:`TokenEvent`
        (``token=None``) is emitted on the next :meth:`step`/
        :meth:`stream` iteration.  Returns False for ids that are unknown
        or already finished.
        """
        for request in self._queue:
            if request.request_id == request_id:
                self._queue.remove(request)
                self._finished.append(Completion(
                    request_id=request_id, tokens=request.prompt.copy(),
                    prompt_len=len(request.prompt),
                    finish_reason="cancelled"))
                self._events.append(TokenEvent(request_id, None, "cancelled"))
                return True
        row = self._live.get(request_id)
        if row is None:
            return False
        self._retire(row, "cancelled")
        self._events.append(TokenEvent(request_id, None, "cancelled"))
        return True

    def generate_batch(self, prompts: list[np.ndarray], max_new_tokens: int,
                       temperature: float = 0.0) -> list[np.ndarray]:
        """Serve ``prompts`` and return full token arrays in input order.

        Completions of requests submitted outside this call stay queued
        for :meth:`take_completions` instead of being dropped.
        """
        ids = [self.submit(p, max_new_tokens, temperature) for p in prompts]
        wanted = set(ids)
        done = {}
        foreign = []
        for completion in self.run():
            if completion.request_id in wanted:
                done[completion.request_id] = completion
            else:
                foreign.append(completion)
        self._finished.extend(foreign)
        return [done[i].tokens for i in ids]

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # the serving session
    # ------------------------------------------------------------------ #
    def has_work(self) -> bool:
        """True while a step could produce events."""
        return bool(self._events or self._queue
                    or any(slot is not None for slot in self._slots))

    @property
    def num_active(self) -> int:
        """Slots currently decoding."""
        return sum(slot is not None for slot in self._slots)

    def step(self) -> list[TokenEvent]:
        """Advance one admit+decode iteration; return this step's events.

        Buffered out-of-step events (cancellations) flush first, then
        waiting prompts are prefilled into free slots, then every active
        slot decodes one token.  Safe to call with nothing to do.
        """
        events = self._events
        self._events = []
        with no_grad():
            if self._queue and any(slot is None for slot in self._slots):
                if self._cache is None:
                    self._cache = self._make_cache()
                events += self._admit()
            if any(slot is not None for slot in self._slots):
                events += self._decode_step()
        return events

    def stream(self):
        """Yield :class:`TokenEvent`s until the session runs dry.

        A generator over repeated :meth:`step` calls; submitting or
        cancelling between iterations is supported, so a consumer can
        react to tokens as they land.
        """
        while self.has_work():
            yield from self.step()

    def run(self) -> list[Completion]:
        """Drain the queue with continuous batching; return completions.

        Returns *every* completion finished since the last drain — in a
        long-lived session that includes requests that finished under an
        earlier :meth:`stream` whose completions were never taken.
        """
        while self.has_work():
            self.step()
        return self.take_completions()

    def take_completions(self) -> list[Completion]:
        """Drain and return every completion finished since the last take."""
        finished = self._finished
        self._finished = []
        return finished

    def _decode_step(self) -> list[TokenEvent]:
        """One single-token decode over the active sub-batch."""
        cache = self._cache
        slots = self._slots
        batch = self.max_batch_size
        active_rows = np.array([row for row, slot in enumerate(slots)
                                if slot is not None], dtype=np.int64)
        n = len(active_rows)
        positions = self._lengths[active_rows]
        total = max(cache.seq_len, int(positions.max()) + 1)
        kv_mask = np.where(np.arange(total)[None, :] < (positions + 1)[:, None],
                           0.0, -np.inf).astype(np.float32)[:, None, None, :]
        # Full batches take the rows=None fast path (zero-copy dense views,
        # whole-table paged gathers); partial batches forward only the
        # active rows, so draining waves stop paying for idle slots.
        decode_rows = None if n == batch else active_rows

        start = time.perf_counter()
        logits = self.model(self._pending[active_rows][:, None], cache=cache,
                            positions=positions[:, None], kv_mask=kv_mask,
                            decode_rows=decode_rows)
        self.stats.decode_seconds += time.perf_counter() - start
        self.stats.decode_tokens += n
        self.stats.decode_steps += 1
        self.stats.decode_slot_steps += batch

        self._lengths[active_rows] += 1
        # Tokens and bytes must count the same population: paged caches
        # report their own cached_tokens; the rectangle has no per-row
        # accounting, so its bytes (the whole rectangle) are divided over
        # live tokens only.
        if isinstance(cache, PagedKVCache):
            live_tokens = cache.cached_tokens
        else:
            live_tokens = int(self._lengths[active_rows].sum())
        if live_tokens > self.stats.kv_peak_tokens:
            self.stats.kv_peak_tokens = live_tokens
            self.stats.kv_peak_used_bytes = cache.used_bytes()
        # The rectangular cache's allocated_bytes is an FP16 projection by
        # default; its buffers (like the paged pools) are really FP32.
        allocated = (cache.allocated_bytes(bytes_per_element=4)
                     if isinstance(cache, KVCache) else cache.allocated_bytes())
        self.stats.kv_peak_allocated_bytes = max(
            self.stats.kv_peak_allocated_bytes, allocated)

        sampled = self._sample(logits.data[:, -1],
                               [slots[row] for row in active_rows])
        events = []
        for i, row in enumerate(active_rows):
            slot = slots[row]
            token = int(sampled[i])
            slot.generated.append(token)
            self._pending[row] = token
            reason = self._finish_reason(row)
            events.append(TokenEvent(slot.request.request_id, token, reason))
            if reason is not None:
                self._retire(row, reason)
        return events

    def _admit(self) -> list[TokenEvent]:
        """Prefill waiting prompts into free slots until either runs out."""
        events = []
        while self._queue:
            free = [row for row, slot in enumerate(self._slots)
                    if slot is None]
            if not free:
                break
            rows = free[:len(self._queue)]
            requests = [self._queue.popleft() for _ in rows]
            new_slots = [_Slot(request=r,
                               rng=np.random.default_rng(r.params.seed))
                         for r in requests]
            prompt_lens = np.array([len(r.prompt) for r in requests])
            width = int(prompt_lens.max())
            tokens = np.zeros((len(rows), width), dtype=np.int64)
            for j, request in enumerate(requests):
                tokens[j, :prompt_lens[j]] = request.prompt

            # Lean prefill: norm + LM head only at each row's last *real*
            # prompt position — the only logits generation samples from.
            # cache_lens gives paged caches the true (unpadded) lengths.
            start = time.perf_counter()
            logits = self.model(tokens, cache=self._cache,
                                cache_rows=np.asarray(rows),
                                cache_lens=prompt_lens,
                                logits_positions=prompt_lens - 1)
            self.stats.prefill_seconds += time.perf_counter() - start
            self.stats.prefill_tokens += int(prompt_lens.sum())

            first = self._sample(logits.data[:, 0], new_slots)
            for j, (row, slot) in enumerate(zip(rows, new_slots)):
                token = int(first[j])
                slot.generated.append(token)
                self._slots[row] = slot
                self._lengths[row] = prompt_lens[j]
                self._pending[row] = token
                self._live[slot.request.request_id] = row
                reason = self._finish_reason(row)
                events.append(TokenEvent(slot.request.request_id, token,
                                         reason))
                if reason is not None:
                    self._retire(row, reason)
        return events

    def _finish_reason(self, row: int) -> str | None:
        """Terminal state for the row's newest token, or None to continue."""
        slot = self._slots[row]
        params = slot.request.params
        token = slot.generated[-1]
        if self.eos_token is not None and token == self.eos_token:
            return "eos"
        if token in params.stop_tokens:
            return "stop"
        if len(slot.generated) >= params.max_new_tokens:
            return "length"
        if self._lengths[row] >= self.model.config.max_seq_len:
            # The next decode would write at position ``lengths[row]``,
            # past the RoPE table (valid positions are < max_seq_len).
            return "max_seq_len"
        return None

    def _retire(self, row: int, reason: str) -> None:
        """Complete the row's request and release its slot and blocks."""
        slot = self._slots[row]
        request = slot.request
        tokens = np.concatenate([request.prompt,
                                 np.asarray(slot.generated, dtype=np.int64)])
        self._finished.append(Completion(request_id=request.request_id,
                                         tokens=tokens,
                                         prompt_len=len(request.prompt),
                                         finish_reason=reason))
        self._slots[row] = None
        self._lengths[row] = 0
        self._live.pop(request.request_id, None)
        # Paged caches return the row's blocks to the pool immediately so
        # waiting prompts can be admitted into the freed memory; the
        # rectangular cache reuses the row in place (no-op).  Trimming the
        # read width to the surviving rows keeps a persistent session from
        # forever gathering (and masking) the longest-ever row's width.
        self._cache.free_rows(np.array([row]))
        self._cache.trim(int(self._lengths.max()))

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample(self, logits: np.ndarray, slots: list[_Slot]) -> np.ndarray:
        """Sample one token per row of ``(batch, vocab)`` logits.

        Temperature scaling and top-k/top-p masking are vectorized across
        rows; each non-greedy row then inverts its own masked CDF at a
        draw from its *private* generator, so a request's sample stream
        depends only on its own params and logits.
        """
        greedy = logits.argmax(axis=-1)
        params = [slot.request.params for slot in slots]
        hot_idx = np.array([i for i, p in enumerate(params) if not p.greedy],
                           dtype=np.int64)
        if len(hot_idx) == 0:
            return greedy
        # Only the hot rows pay the vocab-wide sort/softmax; greedy rows
        # already have their argmax.
        hot_params = [params[i] for i in hot_idx]
        vocab = logits.shape[-1]
        temperatures = np.array([p.temperature for p in hot_params])
        top_k = np.array([p.top_k or vocab for p in hot_params])
        top_p = np.array([p.top_p if p.top_p is not None else 1.0
                          for p in hot_params])
        scaled = apply_top_k_top_p(logits[hot_idx] / temperatures[:, None],
                                   top_k, top_p)
        scaled = scaled - scaled.max(axis=-1, keepdims=True)
        probs = np.exp(scaled)
        probs /= probs.sum(axis=-1, keepdims=True)
        draws = np.array([slots[i].rng.random() for i in hot_idx])
        # Smallest index whose cumulative mass exceeds the draw: masked
        # tokens carry exactly zero mass, so ties (cumsum flat) can never
        # select them — including a draw of exactly 0.0 with token 0
        # masked.  Float rounding can still leave the total mass a hair
        # under a draw near 1.0, so clamp onto the last *kept* token.
        sampled = (probs.cumsum(axis=-1) <= draws[:, None]).sum(axis=-1)
        last_kept = vocab - 1 - np.argmax(probs[:, ::-1] > 0, axis=-1)
        out = greedy.copy()
        out[hot_idx] = np.minimum(sampled, last_kept)
        return out
