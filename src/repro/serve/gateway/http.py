"""Dependency-free HTTP/SSE front door for the serving gateway.

A minimal HTTP/1.1 server over :func:`asyncio.start_server` — no
framework, no third-party packages — exposing the gateway as four
routes:

* ``POST /v1/generate`` — submit a request.  Body:
  ``{"prompt": [ints], "max_new_tokens": n, "temperature": t,
  "top_k": k, "top_p": p, "seed": s, "stop_tokens": [...],
  "priority": p, "stream": bool}``.  With ``"stream": true`` the
  response is ``text/event-stream``: one ``data:`` event per token
  (``{"job_id", "index", "token"}``) and a closing ``event: done``
  carrying the finish reason.  Without it the server collects the whole
  generation and returns one JSON body.  When the durable queue is at
  capacity the route answers ``429`` with
  ``{"error": "queue_full", "retriable": true}`` and a ``Retry-After``
  header — the engine was never touched, so clients can simply retry.
* ``GET /v1/requests/{id}`` — the journaled record: status, params,
  tokens so far, finish reason.  Works across restarts (it reads the
  sqlite journal, not process memory).
* ``DELETE /v1/requests/{id}`` — cancel; ``409`` if already terminal,
  ``404`` if unknown.
* ``GET /metrics`` — :meth:`ServingGateway.metrics` as JSON (engine
  stats, queue depth gauges, first-token latency percentiles).

Streaming responses use chunked transfer encoding; a client that
disconnects mid-stream closes the gateway's token generator, which
cancels the job (``cancel_on_disconnect``) and frees its cache blocks
immediately.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.engine import SamplingParams
from repro.serve.gateway.gateway import QueueFullError, ServingGateway

#: Fields of the POST /v1/generate body that map onto SamplingParams.
_PARAM_FIELDS = ("max_new_tokens", "temperature", "top_k", "top_p",
                 "seed", "stop_tokens", "priority")


class HttpError(Exception):
    """A request error with an HTTP status and a JSON-able payload."""

    def __init__(self, status: int, payload: dict,
                 headers: dict | None = None):
        super().__init__(payload.get("error", status))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error"}


def _params_from_body(body: dict) -> SamplingParams:
    fields = {}
    for key in _PARAM_FIELDS:
        if body.get(key) is not None:
            fields[key] = body[key]
    if "stop_tokens" in fields:
        fields["stop_tokens"] = tuple(int(t) for t in fields["stop_tokens"])
    if "max_new_tokens" not in fields:
        raise HttpError(400, {"error": "max_new_tokens is required"})
    try:
        return SamplingParams(**fields)
    except TypeError as exc:
        raise HttpError(400, {"error": str(exc)}) from None


def _record_payload(job) -> dict:
    return {
        "job_id": job.job_id,
        "status": job.status,
        "prompt_len": int(job.prompt.size),
        "params": job.params.to_dict(),
        "tokens": list(job.tokens),
        "finish_reason": job.finish_reason,
        "error": job.error,
    }


class GatewayHTTPServer:
    """Bind a :class:`ServingGateway` to a TCP port (see module docs).

    ``port=0`` (the default) lets the OS pick a free port — read
    :attr:`port` after :meth:`start`.  The server owns neither the
    gateway's engine loop nor its queue: start/stop the gateway
    separately (or use :func:`serve_forever` which wires both).
    """

    def __init__(self, gateway: ServingGateway, *,
                 host: str = "127.0.0.1", port: int = 0):
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            try:
                await self._route(method, path, body, writer)
            except HttpError as exc:
                await self._send_json(writer, exc.status, exc.payload,
                                      extra_headers=exc.headers)
            except (ConnectionResetError, BrokenPipeError):
                raise
            except Exception as exc:  # surface, don't kill the server
                await self._send_json(writer, 500, {"error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode().split()
        except ValueError:
            return None
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                raise HttpError(400, {"error": "body is not valid JSON"})
        return method.upper(), path, body

    async def _route(self, method: str, path: str, body: dict,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/v1/generate" and method == "POST":
            await self._generate(body, writer)
        elif path == "/metrics" and method == "GET":
            await self._send_json(writer, 200, self.gateway.metrics())
        elif path.startswith("/v1/requests/"):
            job_id = self._job_id_from(path)
            if method == "GET":
                await self._get_request(job_id, writer)
            elif method == "DELETE":
                await self._cancel_request(job_id, writer)
            else:
                raise HttpError(405, {"error": f"{method} not allowed"})
        else:
            raise HttpError(404, {"error": f"no route for {method} {path}"})

    @staticmethod
    def _job_id_from(path: str) -> int:
        tail = path.rsplit("/", 1)[1]
        try:
            return int(tail)
        except ValueError:
            raise HttpError(404, {"error": f"bad job id {tail!r}"}) from None

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _generate(self, body: dict,
                        writer: asyncio.StreamWriter) -> None:
        prompt = body.get("prompt")
        if not isinstance(prompt, list) or not prompt:
            raise HttpError(400,
                            {"error": "prompt must be a non-empty list "
                                      "of token ids"})
        params = _params_from_body(body)
        try:
            job_id = self.gateway.submit(
                np.asarray(prompt, dtype=np.int64), params)
        except QueueFullError as exc:
            raise HttpError(429, {"error": "queue_full", "retriable": True,
                                  "detail": str(exc)},
                            headers={"Retry-After": "1"}) from None
        except ValueError as exc:
            raise HttpError(400, {"error": str(exc)}) from None
        if body.get("stream"):
            await self._stream_sse(job_id, writer)
        else:
            record = await self.gateway.result(job_id)
            await self._send_json(writer, 200, _record_payload(record))

    async def _stream_sse(self, job_id: int,
                          writer: asyncio.StreamWriter) -> None:
        await self._send_headers(writer, 200, "text/event-stream",
                                 chunked=True)
        stream = self.gateway.stream(job_id)
        try:
            async for update in stream:
                if update.finish_reason is not None and update.token is None:
                    payload = {"job_id": job_id,
                               "finish_reason": update.finish_reason}
                    await self._send_chunk(
                        writer, f"event: done\ndata: "
                                f"{json.dumps(payload)}\n\n")
                    continue
                payload = {"job_id": job_id, "index": update.index,
                           "token": update.token}
                if update.finish_reason is not None:
                    payload["finish_reason"] = update.finish_reason
                    await self._send_chunk(
                        writer, f"data: {json.dumps(payload)}\n\n")
                    done = {"job_id": job_id,
                            "finish_reason": update.finish_reason}
                    await self._send_chunk(
                        writer, f"event: done\ndata: "
                                f"{json.dumps(done)}\n\n")
                    continue
                await self._send_chunk(
                    writer, f"data: {json.dumps(payload)}\n\n")
            await self._send_chunk(writer, "")  # terminal chunk
        finally:
            # Client gone (or stream done): closing the generator fires
            # the gateway's cancel-on-disconnect path when unfinished.
            await stream.aclose()

    async def _get_request(self, job_id: int,
                           writer: asyncio.StreamWriter) -> None:
        job = self.gateway.queue.get(job_id)
        if job is None:
            raise HttpError(404, {"error": f"unknown job {job_id}"})
        await self._send_json(writer, 200, _record_payload(job))

    async def _cancel_request(self, job_id: int,
                              writer: asyncio.StreamWriter) -> None:
        job = self.gateway.queue.get(job_id)
        if job is None:
            raise HttpError(404, {"error": f"unknown job {job_id}"})
        if job.terminal:
            raise HttpError(409, {"error": f"job {job_id} already "
                                           f"{job.status}"})
        self.gateway.cancel(job_id)
        await self._send_json(writer, 200,
                              _record_payload(self.gateway.queue.get(job_id)))

    # ------------------------------------------------------------------ #
    # wire helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    async def _send_headers(writer, status: int, content_type: str, *,
                            chunked: bool = False,
                            content_length: int | None = None,
                            extra_headers: dict | None = None) -> None:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if chunked:
            lines.append("Transfer-Encoding: chunked")
            lines.append("Cache-Control: no-store")
        if content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode())
        await writer.drain()

    async def _send_json(self, writer, status: int, payload: dict, *,
                         extra_headers: dict | None = None) -> None:
        raw = json.dumps(payload).encode()
        await self._send_headers(writer, status, "application/json",
                                 content_length=len(raw),
                                 extra_headers=extra_headers)
        writer.write(raw)
        await writer.drain()

    @staticmethod
    async def _send_chunk(writer, text: str) -> None:
        raw = text.encode()
        writer.write(f"{len(raw):x}\r\n".encode() + raw + b"\r\n")
        await writer.drain()


async def serve_forever(gateway: ServingGateway, *, host: str = "127.0.0.1",
                        port: int = 8000) -> None:
    """Run gateway loop + HTTP server until cancelled (the examples'
    entry point; tests drive :class:`GatewayHTTPServer` directly)."""
    server = GatewayHTTPServer(gateway, host=host, port=port)
    await gateway.start()
    await server.start()
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
        await gateway.stop()
