"""Gateway goodput and first-token latency vs the raw engine.

Three measurements on the same workload (same model, prompts, batch
width, cache backend):

* ``engine`` — every prompt submitted up front to a bare
  :class:`GenerationEngine`, drained through ``stream()``.  The ceiling:
  no journal, no dispatch loop, no fan-out.
* ``gateway`` — the same saturated wave through a
  :class:`ServingGateway` (sqlite journaling, admission, subscriber
  fan-out), driven by its synchronous ``pump()``.  The report's
  ``overhead_ratio`` divides the engine goodput by this one — the
  benchmark suite asserts it stays within 1.25x, i.e. durability costs
  at most a quarter of throughput at batch 16.
* ``gateway-poisson`` — open-loop arrivals: requests land on the
  *running* async gateway with exponential inter-arrival gaps at
  ``load`` x the saturated service rate, the regime a front door
  actually operates in.  First-token p50/p99 here are queue-wait plus
  prefill — the latency numbers ``GET /metrics`` reports in production.

Every measurement reports *goodput* — completed tokens per wall-clock
second, counting only requests that reached ``completed`` — so a
gateway that dropped or wedged requests would show up as a goodput
hole, not just a latency blip.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.nn.model import TransformerLM
from repro.serve.bench import bench_prompts
from repro.serve.engine import (GenerationEngine, SamplingParams,
                                dataclass_to_dict)
from repro.serve.gateway.gateway import ServingGateway
from repro.serve.gateway.queue import RequestQueue


@dataclass(frozen=True)
class GatewayPoint:
    """One measured serving path (see module docstring for labels)."""

    label: str                   # "engine" | "gateway" | "gateway-poisson"
    batch_size: int
    num_requests: int
    completed: int
    max_new_tokens: int
    generated_tokens: int        # tokens of requests that completed
    elapsed_seconds: float       # first submit -> last completion
    first_token_p50_s: float
    first_token_p99_s: float
    engine_stats: dict | None = None  # EngineStats.to_dict() of the run

    @property
    def goodput_tokens_per_s(self) -> float:
        return (self.generated_tokens / self.elapsed_seconds
                if self.elapsed_seconds else 0.0)


@dataclass(frozen=True)
class GatewayReport:
    """Engine ceiling vs gateway (saturated and Poisson) on one workload."""

    model: str
    kv_cache: str
    batch_size: int
    load: float                  # Poisson arrival rate / saturated rate
    points: tuple[GatewayPoint, ...]

    def point(self, label: str) -> GatewayPoint:
        for candidate in self.points:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no point labelled {label!r}")

    @property
    def overhead_ratio(self) -> float:
        """Raw-engine goodput over saturated-gateway goodput (>= 1; the
        benchmark suite asserts <= 1.25 at batch 16)."""
        gateway = self.point("gateway").goodput_tokens_per_s
        return (self.point("engine").goodput_tokens_per_s / gateway
                if gateway else 0.0)

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            out.append([p.label, f"{p.completed}/{p.num_requests}",
                        f"{p.goodput_tokens_per_s:,.0f}",
                        f"{1e3 * p.first_token_p50_s:,.1f}",
                        f"{1e3 * p.first_token_p99_s:,.1f}"])
        return out

    def to_dict(self) -> dict:
        return {"model": self.model, "kv_cache": self.kv_cache,
                "batch_size": self.batch_size, "load": self.load,
                "overhead_ratio": self.overhead_ratio,
                "points": [dataclass_to_dict(p) for p in self.points]}


def engine_goodput(model: TransformerLM, prompts: list[np.ndarray],
                   max_new_tokens: int, batch_size: int,
                   kv_cache: str = "paged",
                   block_size: int = 16) -> GatewayPoint:
    """The ceiling: a bare engine draining one saturated wave."""
    engine = GenerationEngine(model, max_batch_size=batch_size,
                              kv_cache=kv_cache, block_size=block_size)
    for prompt in prompts:
        engine.submit(prompt, max_new_tokens)
    firsts: dict[int, float] = {}
    start = time.perf_counter()
    for event in engine.stream():
        if event.request_id not in firsts and event.token is not None:
            firsts[event.request_id] = time.perf_counter() - start
    elapsed = time.perf_counter() - start
    completions = engine.take_completions()
    generated = sum(len(c.new_tokens) for c in completions
                    if c.finish_reason != "cancelled")
    latencies = np.asarray(list(firsts.values()), dtype=np.float64)
    return GatewayPoint(
        label="engine", batch_size=batch_size, num_requests=len(prompts),
        completed=len(completions), max_new_tokens=max_new_tokens,
        generated_tokens=generated, elapsed_seconds=elapsed,
        first_token_p50_s=float(np.percentile(latencies, 50))
        if latencies.size else 0.0,
        first_token_p99_s=float(np.percentile(latencies, 99))
        if latencies.size else 0.0,
        engine_stats=engine.stats.to_dict())


def _finish_point(label: str, gateway: ServingGateway, num_requests: int,
                  max_new_tokens: int, elapsed: float) -> GatewayPoint:
    queue = gateway.queue
    completed_ids = queue.job_ids("completed")
    generated = sum(len(queue.tokens(job_id)) for job_id in completed_ids)
    metrics = gateway.metrics()
    return GatewayPoint(
        label=label, batch_size=gateway.engine.max_batch_size,
        num_requests=num_requests, completed=len(completed_ids),
        max_new_tokens=max_new_tokens, generated_tokens=generated,
        elapsed_seconds=elapsed,
        first_token_p50_s=metrics["latency"]["first_token_p50_s"],
        first_token_p99_s=metrics["latency"]["first_token_p99_s"],
        engine_stats=metrics["engine"])


def gateway_goodput(model: TransformerLM, prompts: list[np.ndarray],
                    max_new_tokens: int, batch_size: int,
                    kv_cache: str = "paged", block_size: int = 16,
                    journal_path: str = ":memory:") -> GatewayPoint:
    """The same saturated wave through the full gateway pump loop.

    Everything the durable path adds — seed resolution, sqlite journal
    writes (one transaction per engine step), dispatch bookkeeping,
    completion settlement — is on the clock; only the HTTP socket layer
    is not.
    """
    engine = GenerationEngine(model, max_batch_size=batch_size,
                              kv_cache=kv_cache, block_size=block_size)
    gateway = ServingGateway(engine, RequestQueue(journal_path))
    start = time.perf_counter()
    for prompt in prompts:
        gateway.submit(prompt, max_new_tokens=max_new_tokens)
    while gateway.queue.depth() > 0:
        gateway.pump()
    elapsed = time.perf_counter() - start
    point = _finish_point("gateway", gateway, len(prompts),
                          max_new_tokens, elapsed)
    gateway.queue.close()
    return point


def gateway_poisson(model: TransformerLM, prompts: list[np.ndarray],
                    max_new_tokens: int, batch_size: int, *,
                    service_tokens_per_s: float, load: float = 0.7,
                    kv_cache: str = "paged", block_size: int = 16,
                    journal_path: str = ":memory:",
                    seed: int = 0) -> GatewayPoint:
    """Open-loop arrivals on the running async gateway.

    Requests arrive with exponential inter-arrival gaps whose rate is
    ``load`` x the measured saturated service rate
    (``service_tokens_per_s / max_new_tokens`` requests/sec), so the
    queue stays busy without growing unboundedly — the steady state
    whose first-token p50/p99 the report carries.
    """
    rate = load * service_tokens_per_s / max_new_tokens
    gaps = np.random.default_rng(seed).exponential(1.0 / rate,
                                                   size=len(prompts)) \
        if rate > 0 else np.zeros(len(prompts))

    async def run() -> tuple[ServingGateway, float]:
        engine = GenerationEngine(model, max_batch_size=batch_size,
                                  kv_cache=kv_cache,
                                  block_size=block_size)
        gateway = ServingGateway(engine, RequestQueue(journal_path))
        await gateway.start()
        start = time.perf_counter()
        for prompt, gap in zip(prompts, gaps):
            await asyncio.sleep(float(gap))
            gateway.submit(prompt, max_new_tokens=max_new_tokens)
        await gateway.drain()
        elapsed = time.perf_counter() - start
        await gateway.stop()
        return gateway, elapsed

    gateway, elapsed = asyncio.run(run())
    point = _finish_point("gateway-poisson", gateway, len(prompts),
                          max_new_tokens, elapsed)
    gateway.queue.close()
    return point


def gateway_sweep(model: TransformerLM, num_requests: int = 32,
                  max_new_tokens: int = 16, batch_size: int = 16,
                  kv_cache: str = "paged", block_size: int = 16,
                  load: float = 0.7, journal_path: str = ":memory:",
                  seed: int = 0) -> GatewayReport:
    """Engine ceiling, saturated gateway, Poisson gateway — one report.

    All three phases serve identical greedy prompts so goodput deltas
    isolate the serving path.  The Poisson phase paces arrivals off the
    *measured* saturated goodput, keeping the sweep meaningful from the
    untrained tiny model (CI smoke) up the zoo.
    """
    prompts = bench_prompts(model.config.vocab_size, num=num_requests,
                            seed=seed)
    # Each phase gets its own journal: a shared file would fold the
    # saturated phase's completed jobs into the Poisson phase's counts.
    in_memory = journal_path == ":memory:"
    sat_path = journal_path if in_memory else f"{journal_path}.saturated"
    poisson_path = journal_path if in_memory else f"{journal_path}.poisson"
    engine_point = engine_goodput(model, prompts, max_new_tokens,
                                  batch_size, kv_cache=kv_cache,
                                  block_size=block_size)
    gateway_point = gateway_goodput(model, prompts, max_new_tokens,
                                    batch_size, kv_cache=kv_cache,
                                    block_size=block_size,
                                    journal_path=sat_path)
    poisson_point = gateway_poisson(
        model, prompts, max_new_tokens, batch_size,
        service_tokens_per_s=gateway_point.goodput_tokens_per_s,
        load=load, kv_cache=kv_cache, block_size=block_size,
        journal_path=poisson_path, seed=seed)
    return GatewayReport(model=model.config.name, kv_cache=kv_cache,
                         batch_size=batch_size, load=load,
                         points=(engine_point, gateway_point,
                                 poisson_point))
