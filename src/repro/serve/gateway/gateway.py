"""Asyncio serving gateway: durable queue in front, engine loop behind.

:class:`ServingGateway` is the seam between network handlers and the
synchronous :class:`~repro.serve.engine.GenerationEngine`:

* **Admission** — :meth:`submit` journals the request into a
  :class:`~repro.serve.gateway.queue.RequestQueue` *before* the engine
  sees it, resolving the sampling seed so the journaled record can
  regenerate its exact stream after a restart.  A bounded queue depth
  (``max_queue_depth``) makes overload a fast, retriable
  :class:`QueueFullError` instead of an unbounded backlog.
* **The engine loop** — one background task repeatedly runs
  :meth:`pump`: dispatch journaled jobs into the engine (at most
  ``max_inflight`` at a time, and only when the paged pool's
  ``available_blocks`` can take the prompt — the ``max_pool_blocks``
  budget backpressures admission instead of forcing preemptions),
  advance ``engine.step()`` once, journal the step's tokens (one sqlite
  transaction per step), and fan events out to per-connection
  subscriber queues.  ``pump`` is deliberately synchronous and public:
  tests drive restart/recovery scenarios step by deterministic step
  without an event loop.
* **Streaming** — :meth:`stream` yields :class:`TokenUpdate`\\ s for one
  job: the journaled prefix first (replay — a reconnecting or
  post-restart client misses nothing), then live updates, deduplicated
  by token index so replay and live can never double-emit.  A consumer
  that disconnects mid-stream (the generator is closed early) cancels
  the job when it was the last subscriber (``cancel_on_disconnect``),
  which propagates to ``engine.cancel()`` and frees the job's cache
  blocks immediately.
* **Observability** — :meth:`metrics` snapshots
  ``EngineStats.to_dict()`` next to queue-depth gauges and
  first-token-latency percentiles, the payload ``GET /metrics`` serves.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.serve.engine import GenerationEngine, SamplingParams
from repro.serve.gateway.queue import RequestQueue


class QueueFullError(RuntimeError):
    """Admission refused: the durable queue is at ``max_queue_depth``.

    Retriable by construction — nothing was journaled and the engine was
    never touched; the HTTP layer maps it to ``429 Too Many Requests``.
    """


@dataclass(frozen=True)
class TokenUpdate:
    """One streamed update for a job.

    ``index`` is the token's position in the job's *generated* output
    (journal index), ``None`` for tokenless terminal notices (a
    cancellation).  ``finish_reason`` is ``None`` mid-stream and set on
    the final update.
    """

    job_id: int
    index: int | None
    token: int | None
    finish_reason: str | None = None


class ServingGateway:
    """Async front-end over one engine and one durable queue.

    Parameters
    ----------
    engine:
        The :class:`GenerationEngine` to serve.  The gateway owns its
        pump loop; nothing else should call ``engine.step()``.
    queue:
        The durable :class:`RequestQueue` (defaults to an in-memory
        one; pass a file-backed queue for restart survival).
    max_queue_depth:
        Live-job bound (queued + running) above which :meth:`submit`
        raises :class:`QueueFullError`.  ``None`` = unbounded.
    max_inflight:
        Jobs dispatched into the engine at once (its internal queue +
        slots).  Defaults to the engine's batch width — the durable
        queue, not the engine's in-memory deque, holds the backlog, so
        a crash can only lose work the journal already covers.
    cancel_on_disconnect:
        Cancel a job when its last streaming subscriber goes away.
    idle_sleep:
        Engine-loop sleep when there is no work (seconds).
    rng:
        Seed source for requests that did not fix ``params.seed``.
    """

    def __init__(self, engine: GenerationEngine,
                 queue: RequestQueue | None = None, *,
                 max_queue_depth: int | None = None,
                 max_inflight: int | None = None,
                 cancel_on_disconnect: bool = True,
                 idle_sleep: float = 0.001,
                 rng: np.random.Generator | None = None):
        self.engine = engine
        self.queue = queue if queue is not None else RequestQueue()
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight or engine.max_batch_size
        self.cancel_on_disconnect = cancel_on_disconnect
        self.idle_sleep = idle_sleep
        self.rng = rng or np.random.default_rng(0)
        self._job_rid: dict[int, int] = {}    # job id -> engine request id
        self._rid_job: dict[int, int] = {}
        self._emitted: dict[int, int] = {}    # tokens seen this dispatch
        self._replay_len: dict[int, int] = {}  # journal len at dispatch
        self._subs: dict[int, list[asyncio.Queue]] = {}
        self._arrived: dict[int, float] = {}
        self._first_token_s: list[float] = []
        self._task: asyncio.Task | None = None
        self._running = False
        self._loop_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def recover(self) -> list[int]:
        """Requeue jobs a previous process left ``running``.

        Returns the requeued job ids; their journaled tokens stay put
        and re-dispatch regenerates the same stream past them.
        """
        return self.queue.recover()

    async def start(self) -> list[int]:
        """Recover the journal and start the engine-loop task."""
        requeued = self.recover()
        self._running = True
        self._loop_error = None
        self._task = asyncio.get_running_loop().create_task(
            self._engine_loop())
        return requeued

    async def stop(self) -> None:
        """Stop the engine loop (jobs stay journaled for a later start)."""
        self._running = False
        if self._task is not None:
            await self._task
            self._task = None
        if self._loop_error is not None:
            raise self._loop_error

    async def drain(self) -> None:
        """Wait until every journaled job is terminal."""
        while self._running and self.queue.depth() > 0:
            if self._loop_error is not None:
                raise self._loop_error
            await asyncio.sleep(0)

    async def _engine_loop(self) -> None:
        while self._running:
            try:
                progressed = self.pump()
            except BaseException as exc:  # surface via stop()/drain()
                self._loop_error = exc
                self._running = False
                break
            await asyncio.sleep(0 if progressed else self.idle_sleep)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, prompt: np.ndarray,
               params: SamplingParams | None = None, *,
               max_new_tokens: int | None = None,
               temperature: float | None = None) -> int:
        """Journal a request; returns its durable job id.

        Mirrors ``engine.submit``'s params-or-shorthand surface, but the
        request lands in the sqlite journal (status ``queued``) rather
        than the engine — the pump loop dispatches it under the inflight
        and block budgets.  Raises :class:`QueueFullError` when the
        queue is at ``max_queue_depth`` (nothing journaled, engine
        untouched) and ``ValueError`` for malformed requests, both
        *before* any durable write.
        """
        if (self.max_queue_depth is not None
                and self.queue.depth() >= self.max_queue_depth):
            raise QueueFullError(
                f"queue is at max_queue_depth={self.max_queue_depth}; "
                f"retry later")
        if params is None:
            if max_new_tokens is None:
                raise ValueError("pass max_new_tokens or params")
            params = SamplingParams(max_new_tokens=max_new_tokens,
                                    temperature=temperature or 0.0)
        elif max_new_tokens is not None or temperature is not None:
            raise ValueError("pass either params or the max_new_tokens/"
                             "temperature shorthand, not both")
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        limit = self.engine.model.config.max_seq_len
        if prompt.size > limit:
            raise ValueError(f"prompt of {prompt.size} tokens exceeds "
                             f"max_seq_len={limit}")
        if params.seed is None:
            params = replace(params,
                             seed=int(self.rng.integers(2 ** 32)))
        job_id = self.queue.submit(prompt, params)
        self._arrived[job_id] = time.perf_counter()
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Cancel a job wherever it is; False if unknown/terminal.

        A job inside the engine is cancelled there too — its slot and
        exclusively-owned cache blocks come back immediately, not at
        the next natural completion.
        """
        cancelled = self.queue.cancel(job_id)
        rid = self._job_rid.get(job_id)
        if rid is not None:
            self.engine.cancel(rid)
        return cancelled

    # ------------------------------------------------------------------ #
    # the pump: dispatch -> step -> journal -> fan out
    # ------------------------------------------------------------------ #
    def pump(self) -> bool:
        """One dispatch+step+journal iteration; True if work was done.

        The engine loop's body, exposed synchronously so tests (and the
        benchmark's saturation phase) can drive the gateway
        deterministically.
        """
        self._dispatch()
        if not self.engine.has_work():
            return False
        events = self.engine.step()
        self._journal_events(events)
        self._drain_completions()
        return True

    def _blocks_for(self, prompt_len: int) -> int:
        """Conservative new-block demand of admitting a prompt (its
        context plus the first generated token's write)."""
        block_size = getattr(self.engine.cache, "block_size",
                             self.engine.block_size)
        return -(-(prompt_len + 1) // block_size)

    def _block_budget(self) -> int | None:
        """Blocks the paged pool can still grant (None = unbounded).

        Before the first admit the cache does not exist yet, so the
        engine's configured ``max_pool_blocks`` soft budget stands in.
        """
        cache = self.engine.cache
        if cache is None:
            return self.engine.max_pool_blocks
        return getattr(cache, "available_blocks", lambda: None)()

    def _dispatch(self) -> None:
        budget = self._block_budget()
        while len(self._job_rid) < self.max_inflight:
            job = self.queue.next_queued()
            if job is None:
                break
            needed = self._blocks_for(len(job.prompt))
            # Pool-aware admission: dispatch only what the soft budget
            # can hold, but always let the head job through an idle
            # engine — serving one oversize job at a time beats
            # stalling (the engine's own trimming degrades gracefully).
            if budget is not None and needed > budget and self._job_rid:
                break
            try:
                rid = self.engine.submit_from_record(job)
            except ValueError as exc:
                # A journaled job the engine rejects (e.g. restored from
                # a journal written against a larger model) fails loudly
                # in the record instead of wedging the dispatch loop.
                self.queue.fail(job.job_id, str(exc))
                self._publish(job.job_id,
                              TokenUpdate(job.job_id, None, None, "failed"))
                continue
            self.queue.mark_running(job.job_id)
            self._job_rid[job.job_id] = rid
            self._rid_job[rid] = job.job_id
            self._emitted[job.job_id] = 0
            self._replay_len[job.job_id] = len(job.tokens)
            if budget is not None:
                budget = max(0, budget - needed)

    def _journal_events(self, events) -> None:
        to_append: dict[int, list[tuple[int, int]]] = {}
        for event in events:
            job_id = self._rid_job.get(event.request_id)
            if job_id is None:
                continue
            if event.token is None:
                # Tokenless terminal (a cancellation): the completion
                # drain settles the journal; tell subscribers now.
                if event.finish_reason is not None:
                    self._publish(job_id, TokenUpdate(
                        job_id, None, None, event.finish_reason))
                continue
            idx = self._emitted[job_id]
            self._emitted[job_id] = idx + 1
            if idx == 0:
                arrived = self._arrived.get(job_id)
                if arrived is not None:
                    self._first_token_s.append(
                        time.perf_counter() - arrived)
            if idx >= self._replay_len[job_id]:
                to_append.setdefault(job_id, []).append(
                    (idx, int(event.token)))
            self._publish(job_id, TokenUpdate(job_id, idx,
                                              int(event.token),
                                              event.finish_reason))
        for job_id, pairs in to_append.items():
            self.queue.append_tokens(job_id, pairs)

    def _drain_completions(self) -> None:
        for completion in self.engine.take_completions():
            job_id = self._rid_job.pop(completion.request_id, None)
            if job_id is None:
                continue
            self._job_rid.pop(job_id, None)
            self._emitted.pop(job_id, None)
            self._replay_len.pop(job_id, None)
            self._arrived.pop(job_id, None)
            self.queue.finish(job_id, completion.finish_reason)

    def _publish(self, job_id: int, update: TokenUpdate) -> None:
        for sub in self._subs.get(job_id, ()):
            sub.put_nowait(update)

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #
    async def stream(self, job_id: int):
        """Async-iterate a job's :class:`TokenUpdate`\\ s to the end.

        Journal first, live after: the subscriber queue is attached
        *before* the journal is read, and live updates whose index the
        replay already covered are dropped, so the merged stream has no
        gap and no duplicate whatever the interleaving — including a
        subscriber attaching to a recovered job mid-regeneration.
        Closing the generator early (a disconnecting client) cancels
        the job if it was the last subscriber and
        ``cancel_on_disconnect`` is set.
        """
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id}")
        sub: asyncio.Queue = asyncio.Queue()
        self._subs.setdefault(job_id, []).append(sub)
        finished = False
        try:
            next_idx = 0
            for token in self.queue.tokens(job_id):
                yield TokenUpdate(job_id, next_idx, int(token), None)
                next_idx += 1
            job = self.queue.get(job_id)
            if job.terminal:
                finished = True
                yield TokenUpdate(job_id, None, None,
                                  job.finish_reason or job.status)
                return
            while True:
                update = await sub.get()
                if update.index is not None:
                    if update.index < next_idx:
                        continue  # replay already covered this token
                    next_idx = update.index + 1
                yield update
                if update.finish_reason is not None:
                    finished = True
                    return
        finally:
            subs = self._subs.get(job_id, [])
            if sub in subs:
                subs.remove(sub)
            if not subs:
                self._subs.pop(job_id, None)
            if not finished and self.cancel_on_disconnect and not subs:
                self.cancel(job_id)

    async def result(self, job_id: int):
        """Wait for a job to finish; returns its final journal record."""
        async for _update in self.stream(job_id):
            pass
        return self.queue.get(job_id)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def metrics(self) -> dict:
        """The ``/metrics`` payload: engine stats + gateway gauges.

        ``engine`` is ``EngineStats.to_dict()`` verbatim — the same
        serialization the benchmark JSON exports use — so prefix/dequant
        hit rates, spec acceptance, preemptions, and the memory
        high-water marks are all one scrape away.
        """
        counts = self.queue.counts()
        latencies = np.asarray(self._first_token_s, dtype=np.float64)
        return {
            "model": self.engine.model.config.name,
            "kv_cache": self.engine.kv_cache,
            "engine": self.engine.stats.to_dict(),
            "queue": {
                "depth": counts["queued"] + counts["running"],
                "inflight": len(self._job_rid),
                "max_queue_depth": self.max_queue_depth,
                "max_inflight": self.max_inflight,
                **{f"jobs_{status}": n for status, n in counts.items()},
            },
            "latency": {
                "first_token_count": int(latencies.size),
                "first_token_mean_s":
                    float(latencies.mean()) if latencies.size else 0.0,
                "first_token_p50_s":
                    float(np.percentile(latencies, 50))
                    if latencies.size else 0.0,
                "first_token_p99_s":
                    float(np.percentile(latencies, 99))
                    if latencies.size else 0.0,
            },
        }
