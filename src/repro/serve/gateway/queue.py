"""Durable, restart-surviving request queue over a sqlite journal.

Every generation request the gateway accepts becomes a *job* row in a
sqlite database before the engine ever sees it, and every token the
engine emits for that job is journaled as it lands — so a crashed (or
deliberately killed) serving process loses nothing: reopening the same
journal path requeues every ``running`` job and replays its journaled
tokens, and because the engine's sampling is a pure function of
(prompt, params-with-seed), a re-dispatched job regenerates the exact
stream its journal already holds.  Clients reconnecting after a restart
see the journaled prefix first and the live continuation after it, with
no gaps and no duplicates.

The design is the classic lab-automation job queue — an in-memory
priority queue image over a sqlite-backed job lifecycle — specialised
to token streaming:

* ``jobs`` — one row per request: prompt and params as JSON, a
  ``priority`` column mirrored out of the params so claim order is a
  SQL ``ORDER BY`` (``priority DESC, job_id ASC``, the same order
  :func:`repro.serve.scheduler.admission_key` defines for the in-engine
  priority scheduler), and a status walking
  ``queued -> running -> completed | failed | cancelled``.
* ``tokens`` — ``(job_id, idx, token)`` rows, appended batch-wise once
  per engine step; the journal both feeds client replay and defines
  "how far" a recovered job already got.

The queue is a plain synchronous object (sqlite is); the asyncio
gateway calls it from its single engine-loop task, so no additional
locking is needed beyond sqlite's own.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.serve.engine import SamplingParams

#: Every state a job can be in.  ``queued`` and ``running`` are live;
#: the other three are terminal.
JOB_STATUSES = ("queued", "running", "completed", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATUSES = ("completed", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    prompt        TEXT NOT NULL,
    params        TEXT NOT NULL,
    priority      INTEGER NOT NULL DEFAULT 0,
    status        TEXT NOT NULL DEFAULT 'queued',
    finish_reason TEXT,
    error         TEXT,
    submitted_at  REAL NOT NULL,
    started_at    REAL,
    finished_at   REAL
);
CREATE INDEX IF NOT EXISTS jobs_claim_order
    ON jobs (status, priority DESC, job_id ASC);
CREATE TABLE IF NOT EXISTS tokens (
    job_id INTEGER NOT NULL,
    idx    INTEGER NOT NULL,
    token  INTEGER NOT NULL,
    PRIMARY KEY (job_id, idx)
);
"""


@dataclass(frozen=True)
class QueuedJob:
    """One journaled request, as read back from the database.

    ``tokens`` is the generated-token journal so far (never the
    prompt); for a terminal job it is the complete output.  The
    ``prompt``/``params`` pair is exactly what
    :meth:`repro.serve.engine.GenerationEngine.submit_from_record`
    consumes.
    """

    job_id: int
    prompt: np.ndarray
    params: SamplingParams
    status: str
    priority: int
    finish_reason: str | None
    error: str | None
    tokens: tuple[int, ...]

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES


class RequestQueue:
    """The sqlite-journaled job store (see module docstring).

    ``path`` may be ``":memory:"`` (tests, benchmarks that only need
    the lifecycle) or a filesystem path, which is what makes the queue
    durable: two ``RequestQueue`` instances opened on the same path —
    sequentially, as across a crash/restart — see the same jobs.
    """

    def __init__(self, path: str | Path = ":memory:"):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------ #
    # intake and recovery
    # ------------------------------------------------------------------ #
    def submit(self, prompt: np.ndarray, params: SamplingParams) -> int:
        """Journal a new job as ``queued``; returns its id.

        ``params.seed`` must be resolved (not ``None``): the journal is
        only a durability story if replaying the record regenerates the
        same tokens, which requires the sampling stream to be pinned at
        submit time rather than drawn from engine state at dispatch.
        """
        if params.seed is None:
            raise ValueError("resolve params.seed before journaling — a "
                             "durable job must regenerate its exact "
                             "stream on re-dispatch")
        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        if prompt.size == 0:
            raise ValueError("prompt must contain at least one token")
        cur = self._conn.execute(
            "INSERT INTO jobs (prompt, params, priority, status, "
            "submitted_at) VALUES (?, ?, ?, 'queued', ?)",
            (json.dumps([int(t) for t in prompt]),
             json.dumps(params.to_dict()), params.priority, time.time()))
        self._conn.commit()
        return int(cur.lastrowid)

    def recover(self) -> list[int]:
        """Requeue every job a dead process left ``running``.

        Called once when a gateway opens the journal: jobs mid-flight at
        the crash go back to ``queued`` with their token journal intact,
        so the next dispatch regenerates the stream and clients replay
        the journaled prefix seamlessly.  Returns the requeued ids.
        """
        rows = self._conn.execute(
            "SELECT job_id FROM jobs WHERE status = 'running' "
            "ORDER BY priority DESC, job_id ASC").fetchall()
        self._conn.execute(
            "UPDATE jobs SET status = 'queued', started_at = NULL "
            "WHERE status = 'running'")
        self._conn.commit()
        return [int(r[0]) for r in rows]

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def next_queued(self) -> QueuedJob | None:
        """The job the gateway should dispatch next (not yet claimed).

        Claim order is ``priority DESC, job_id ASC`` — byte-for-byte the
        order :func:`repro.serve.scheduler.admission_key` gives the
        in-engine priority scheduler.
        """
        row = self._conn.execute(
            "SELECT job_id FROM jobs WHERE status = 'queued' "
            "ORDER BY priority DESC, job_id ASC LIMIT 1").fetchone()
        return self.get(int(row[0])) if row is not None else None

    def mark_running(self, job_id: int) -> None:
        """Claim a queued job for the engine (``queued -> running``)."""
        cur = self._conn.execute(
            "UPDATE jobs SET status = 'running', started_at = ? "
            "WHERE job_id = ? AND status = 'queued'",
            (time.time(), job_id))
        self._conn.commit()
        if cur.rowcount != 1:
            raise ValueError(f"job {job_id} is not queued")

    # ------------------------------------------------------------------ #
    # the token journal
    # ------------------------------------------------------------------ #
    def append_tokens(self, job_id: int,
                      indexed_tokens: list[tuple[int, int]]) -> None:
        """Journal ``(idx, token)`` pairs for a running job.

        Batched per engine step (one transaction for the whole step's
        events) so journaling costs one commit per step, not per token.
        Idempotent per index: re-journaling a replayed index is a no-op
        rather than a duplicate, which keeps crash windows between
        "token journaled" and "job finished" harmless.
        """
        if not indexed_tokens:
            return
        self._conn.executemany(
            "INSERT OR IGNORE INTO tokens (job_id, idx, token) "
            "VALUES (?, ?, ?)",
            [(job_id, int(i), int(t)) for i, t in indexed_tokens])
        self._conn.commit()

    def tokens(self, job_id: int) -> list[int]:
        """The job's journaled generated tokens, in emission order."""
        rows = self._conn.execute(
            "SELECT token FROM tokens WHERE job_id = ? ORDER BY idx ASC",
            (job_id,)).fetchall()
        return [int(r[0]) for r in rows]

    # ------------------------------------------------------------------ #
    # terminal transitions
    # ------------------------------------------------------------------ #
    def finish(self, job_id: int, finish_reason: str) -> None:
        """Mark a live job terminal with the engine's finish reason.

        ``"cancelled"`` lands as status ``cancelled``, every other
        reason (``length``/``eos``/``stop``/``max_seq_len``) as
        ``completed``.  A job already terminal (e.g. cancelled through
        the API in the same step it finished) is left untouched.
        """
        status = "cancelled" if finish_reason == "cancelled" else "completed"
        self._conn.execute(
            "UPDATE jobs SET status = ?, finish_reason = ?, "
            "finished_at = ? WHERE job_id = ? AND status IN "
            "('queued', 'running')",
            (status, finish_reason, time.time(), job_id))
        self._conn.commit()

    def fail(self, job_id: int, error: str) -> None:
        """Mark a live job ``failed`` with a diagnostic message."""
        self._conn.execute(
            "UPDATE jobs SET status = 'failed', error = ?, finished_at = ? "
            "WHERE job_id = ? AND status IN ('queued', 'running')",
            (str(error), time.time(), job_id))
        self._conn.commit()

    def cancel(self, job_id: int) -> bool:
        """Cancel a live job; False when unknown or already terminal."""
        cur = self._conn.execute(
            "UPDATE jobs SET status = 'cancelled', "
            "finish_reason = 'cancelled', finished_at = ? "
            "WHERE job_id = ? AND status IN ('queued', 'running')",
            (time.time(), job_id))
        self._conn.commit()
        return cur.rowcount == 1

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def get(self, job_id: int) -> QueuedJob | None:
        row = self._conn.execute(
            "SELECT job_id, prompt, params, priority, status, "
            "finish_reason, error FROM jobs WHERE job_id = ?",
            (job_id,)).fetchone()
        if row is None:
            return None
        return QueuedJob(
            job_id=int(row[0]),
            prompt=np.asarray(json.loads(row[1]), dtype=np.int64),
            params=SamplingParams.from_dict(json.loads(row[2])),
            priority=int(row[3]), status=row[4], finish_reason=row[5],
            error=row[6], tokens=tuple(self.tokens(int(row[0]))))

    def counts(self) -> dict[str, int]:
        """Jobs per status (zero-filled over :data:`JOB_STATUSES`)."""
        out = {status: 0 for status in JOB_STATUSES}
        for status, n in self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"):
            out[status] = int(n)
        return out

    def depth(self) -> int:
        """Live jobs (queued + running) — the backpressure gauge."""
        row = self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE status IN "
            "('queued', 'running')").fetchone()
        return int(row[0])

    def job_ids(self, status: str | None = None) -> list[int]:
        """All job ids, optionally filtered by status, in id order."""
        if status is None:
            rows = self._conn.execute(
                "SELECT job_id FROM jobs ORDER BY job_id ASC").fetchall()
        else:
            if status not in JOB_STATUSES:
                raise ValueError(f"status must be one of {JOB_STATUSES}, "
                                 f"got {status!r}")
            rows = self._conn.execute(
                "SELECT job_id FROM jobs WHERE status = ? "
                "ORDER BY job_id ASC", (status,)).fetchall()
        return [int(r[0]) for r in rows]
