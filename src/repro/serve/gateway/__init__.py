"""Async serving gateway: durable request queue, engine loop, HTTP/SSE.

The front door of the serving stack (see ``gateway.py`` for the
architecture): a sqlite-journaled :class:`RequestQueue` that survives
restarts, a :class:`ServingGateway` pumping one
:class:`~repro.serve.engine.GenerationEngine` behind asyncio token
streams, and a dependency-free :class:`GatewayHTTPServer` exposing
generate/status/cancel/metrics over HTTP with server-sent-event
streaming.
"""

from repro.serve.gateway.bench import (GatewayPoint, GatewayReport,
                                       gateway_sweep)
from repro.serve.gateway.gateway import (QueueFullError, ServingGateway,
                                         TokenUpdate)
from repro.serve.gateway.http import GatewayHTTPServer, serve_forever
from repro.serve.gateway.queue import (JOB_STATUSES, TERMINAL_STATUSES,
                                       QueuedJob, RequestQueue)

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "GatewayHTTPServer",
    "GatewayPoint",
    "GatewayReport",
    "QueueFullError",
    "QueuedJob",
    "RequestQueue",
    "ServingGateway",
    "TokenUpdate",
    "gateway_sweep",
    "serve_forever",
]
