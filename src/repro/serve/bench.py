"""Decode/prefill throughput measurement for the serving engine.

``throughput_sweep`` compares the sequential one-sequence-at-a-time
decode loop (the seed baseline) against the batched engine at several
batch sizes, reporting prefill and decode tokens/sec.  Run directly for a
smoke report on an untrained tiny model (fast enough for CI):

    PYTHONPATH=src python -m repro.serve --smoke
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.nn.kv_cache import KVCache
from repro.nn.model import TransformerLM
from repro.serve.engine import GenerationEngine


@dataclass(frozen=True)
class ThroughputPoint:
    """One measured serving configuration."""

    label: str
    batch_size: int
    num_sequences: int
    prefill_tokens: int
    prefill_seconds: float
    decode_tokens: int
    decode_seconds: float

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0


@dataclass(frozen=True)
class ThroughputReport:
    """A sequential baseline plus engine measurements per batch size."""

    baseline: ThroughputPoint
    points: tuple[ThroughputPoint, ...]

    def speedup(self, point: ThroughputPoint) -> float:
        base = self.baseline.decode_tokens_per_s
        return point.decode_tokens_per_s / base if base else 0.0

    def rows(self) -> list[list[str]]:
        """Table rows: config, prefill tok/s, decode tok/s, speedup."""
        out = []
        for point in (self.baseline,) + self.points:
            out.append([point.label, str(point.batch_size),
                        f"{point.prefill_tokens_per_s:,.0f}",
                        f"{point.decode_tokens_per_s:,.0f}",
                        f"{self.speedup(point):.1f}x"])
        return out


def bench_prompts(vocab_size: int, num: int, max_prompt_len: int = 12,
                  min_prompt_len: int = 4, seed: int = 0) -> list[np.ndarray]:
    """Random token prompts of cycling lengths (exercises ragged batching)."""
    rng = np.random.default_rng(seed)
    lengths = [min_prompt_len + i % (max_prompt_len - min_prompt_len + 1)
               for i in range(num)]
    return [rng.integers(0, vocab_size, size=length) for length in lengths]


def sequential_throughput(model: TransformerLM, prompts: list[np.ndarray],
                          max_new_tokens: int) -> ThroughputPoint:
    """Time the seed decode discipline: one sequence at a time, greedily.

    Mirrors :meth:`TransformerLM.generate` phase by phase so prefill and
    decode are timed separately; like the engine, the token sampled from
    the prefill logits is attributed to prefill, and each decode forward
    produces one decode token.
    """
    prefill_seconds = decode_seconds = 0.0
    prefill_tokens = decode_tokens = 0
    with no_grad():
        for prompt in prompts:
            prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
            cache = KVCache(model.config.num_layers)
            start = time.perf_counter()
            logits = model(prompt[None, :], cache=cache)
            token = int(logits.data[0, -1].argmax())
            prefill_seconds += time.perf_counter() - start
            prefill_tokens += prompt.size
            start = time.perf_counter()
            for _ in range(max_new_tokens - 1):
                logits = model(np.array([[token]]), cache=cache)
                token = int(logits.data[0, -1].argmax())
                decode_tokens += 1
            decode_seconds += time.perf_counter() - start
    return ThroughputPoint(label="sequential", batch_size=1,
                           num_sequences=len(prompts),
                           prefill_tokens=prefill_tokens,
                           prefill_seconds=prefill_seconds,
                           decode_tokens=decode_tokens,
                           decode_seconds=decode_seconds)


def engine_throughput(model: TransformerLM, prompts: list[np.ndarray],
                      max_new_tokens: int, batch_size: int) -> ThroughputPoint:
    """Serve ``prompts`` through a fresh engine and report its stats."""
    engine = GenerationEngine(model, max_batch_size=batch_size)
    engine.generate_batch(prompts, max_new_tokens)
    stats = engine.stats
    return ThroughputPoint(label=f"engine b={batch_size}",
                           batch_size=batch_size,
                           num_sequences=len(prompts),
                           prefill_tokens=stats.prefill_tokens,
                           prefill_seconds=stats.prefill_seconds,
                           decode_tokens=stats.decode_tokens,
                           decode_seconds=stats.decode_seconds)


def throughput_sweep(model: TransformerLM, prompts: list[np.ndarray],
                     max_new_tokens: int = 32,
                     batch_sizes: tuple[int, ...] = (1, 4, 16)
                     ) -> ThroughputReport:
    """Sequential baseline + engine throughput at each batch size."""
    baseline = sequential_throughput(model, prompts, max_new_tokens)
    points = tuple(engine_throughput(model, prompts, max_new_tokens, size)
                   for size in batch_sizes)
    return ThroughputReport(baseline=baseline, points=points)


def main(argv: list[str] | None = None) -> None:
    import argparse

    from repro.eval.tables import format_table

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default=None,
                        help="zoo model name (default: untrained tiny model)")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal settings for CI (implies tiny model)")
    parser.add_argument("--num-prompts", type=int, default=16)
    parser.add_argument("--max-new-tokens", type=int, default=32)
    parser.add_argument("--batch-sizes", default="1,4,16")
    args = parser.parse_args(argv)

    if args.model and not args.smoke:
        from repro.models import load_model
        model = load_model(args.model).model
        name = args.model
    else:
        from repro.models.configs import tiny_config
        model = TransformerLM(tiny_config(vocab_size=256, seed=0))
        name = "tiny (untrained)"

    max_new = 8 if args.smoke else args.max_new_tokens
    num = min(args.num_prompts, 8) if args.smoke else args.num_prompts
    batch_sizes = tuple(int(b) for b in args.batch_sizes.split(","))
    prompts = bench_prompts(model.config.vocab_size, num)
    report = throughput_sweep(model, prompts, max_new_tokens=max_new,
                              batch_sizes=batch_sizes)
    print(f"decode throughput on {name} "
          f"({num} prompts x {max_new} new tokens)")
    print(format_table(["config", "batch", "prefill tok/s", "decode tok/s",
                        "speedup"], report.rows()))


if __name__ == "__main__":
    main()
