"""Throughput, cache-memory, and streaming-latency measurement.

All engine measurements drive the request-centric session API (``submit``
+ ``stream``), the same surface a serving client uses.
``throughput_sweep`` compares the sequential one-sequence-at-a-time
decode loop (the seed baseline) against the batched engine at several
batch sizes, reporting prefill and decode tokens/sec.  ``memory_sweep``
serves longer generations through the paged FP32 and FineQ-quantized
cache backends and reports bytes per cached token (at the live-token
high-water mark) next to decode tokens/sec — the numbers behind the
quantized-KV memory claim.  ``latency_sweep`` times the gaps between a
request's streamed :class:`~repro.serve.engine.TokenEvent`s and reports
mean/p95 inter-token seconds — the number a streaming consumer actually
experiences.  ``prefix_sweep`` serves a shared-prefix workload (system
prompt + per-request suffix) with prefix sharing off vs on and reports
prefill tokens avoided, resident bytes per cached token, decode tok/s,
and the decode trace projected onto the paper's accelerator.
``decode_sweep`` contrasts the block-resident decode read path against
the pre-change gather path at several context lengths — the fineq
1024-token point is the asserted block-attention speedup.
``mixed_latency_sweep`` serves short decoders with long prompts landing
mid-stream, one-shot vs chunked prefill, and reports the p95
inter-token latency both ways — the chunked tail improvement (with
token-identical output) is the asserted chunked-prefill number.
``spec_sweep`` pairs a draft model with the served target and measures
speculative decode tokens/sec against target-only decode over a
``k`` x batch grid — the small-batch latency lever the draft/verify
pipeline buys.  ``gateway_sweep`` (in :mod:`repro.serve.gateway.bench`)
measures the durable serving gateway against the raw engine: saturated
goodput overhead plus first-token p50/p99 under open-loop Poisson
arrivals.  Every ``--json`` export goes through :func:`export_report`,
which stamps the payload with the benched model, the cache backend(s),
and the repo's git commit; every report point serializes through
:func:`repro.serve.engine.dataclass_to_dict`, the same path
``GET /metrics`` uses, so gauges mean the same thing in CI artifacts
and scrapes.  Run directly for a smoke report on an untrained tiny
model (fast enough for CI):

    PYTHONPATH=src python -m repro.serve --smoke
    PYTHONPATH=src python -m repro.serve --mem --smoke --json BENCH_serve_mem.json
    PYTHONPATH=src python -m repro.serve --stream --smoke --json BENCH_serve_stream.json
    PYTHONPATH=src python -m repro.serve --prefix --smoke --json BENCH_serve_prefix.json
    PYTHONPATH=src python -m repro.serve --decode --smoke --json BENCH_serve_decode.json
    PYTHONPATH=src python -m repro.serve --latency --smoke --json BENCH_serve_latency.json
    PYTHONPATH=src python -m repro.serve --spec --smoke --json BENCH_serve_spec.json
    PYTHONPATH=src python -m repro.serve --gateway --smoke --json BENCH_serve_gateway.json
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.autograd import no_grad
from repro.nn.kv_cache import KVCache
from repro.nn.model import TransformerLM
from repro.serve.engine import GenerationEngine, dataclass_to_dict
from repro.serve.spec import SpeculativeConfig


def _git_sha() -> str:
    """Commit the benchmark ran at (``"unknown"`` outside a checkout)."""
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=Path(__file__).resolve().parent)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def export_report(report, path: str, model: str, kv_cache: str) -> None:
    """Write a sweep report as JSON, stamped with run provenance.

    The one JSON writer behind every ``--json`` mode: each exported
    ``BENCH_*.json`` payload carries the benched ``model`` name, the
    cache backend(s) the sweep exercised, and the repo's git commit,
    so archived CI artifacts stay attributable across runs.
    """
    payload = report.to_dict()
    payload["model"] = model
    payload["kv_cache"] = kv_cache
    payload["git_sha"] = _git_sha()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {path}")


@dataclass(frozen=True)
class ThroughputPoint:
    """One measured serving configuration."""

    label: str
    batch_size: int
    num_sequences: int
    prefill_tokens: int
    prefill_seconds: float
    decode_tokens: int
    decode_seconds: float

    @property
    def prefill_tokens_per_s(self) -> float:
        return self.prefill_tokens / self.prefill_seconds if self.prefill_seconds else 0.0

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0


@dataclass(frozen=True)
class ThroughputReport:
    """A sequential baseline plus engine measurements per batch size."""

    baseline: ThroughputPoint
    points: tuple[ThroughputPoint, ...]

    def speedup(self, point: ThroughputPoint) -> float:
        base = self.baseline.decode_tokens_per_s
        return point.decode_tokens_per_s / base if base else 0.0

    def rows(self) -> list[list[str]]:
        """Table rows: config, prefill tok/s, decode tok/s, speedup."""
        out = []
        for point in (self.baseline,) + self.points:
            out.append([point.label, str(point.batch_size),
                        f"{point.prefill_tokens_per_s:,.0f}",
                        f"{point.decode_tokens_per_s:,.0f}",
                        f"{self.speedup(point):.1f}x"])
        return out


def bench_prompts(vocab_size: int, num: int, max_prompt_len: int = 12,
                  min_prompt_len: int = 4, seed: int = 0) -> list[np.ndarray]:
    """Random token prompts of cycling lengths (exercises ragged batching)."""
    rng = np.random.default_rng(seed)
    lengths = [min_prompt_len + i % (max_prompt_len - min_prompt_len + 1)
               for i in range(num)]
    return [rng.integers(0, vocab_size, size=length) for length in lengths]


def corpus_prompts(tokenizer, num: int, prompt_len: int,
                   seed: int = 0) -> list[np.ndarray]:
    """In-distribution prompts: token windows of a held-out corpus slice.

    Speculative decoding's speedup rides on draft/target agreement, and
    zoo models only agree on text like the corpus they were trained on —
    random-token prompts would understate acceptance.  Uses a seed offset
    the training stream never saw so the windows are held out.
    """
    from repro.data.corpus import generate_corpus

    rng = np.random.default_rng(seed)
    sentences = generate_corpus("wikitext-sim", max(64, num * 8),
                                seed=100_000 + seed)
    stream = np.asarray(tokenizer.encode(sentences), dtype=np.int64)
    if stream.size < prompt_len + num:
        raise ValueError(f"corpus slice too short for {num} windows of "
                         f"{prompt_len} tokens")
    starts = rng.integers(0, stream.size - prompt_len, size=num)
    return [stream[s:s + prompt_len].copy() for s in starts]


def sequential_throughput(model: TransformerLM, prompts: list[np.ndarray],
                          max_new_tokens: int) -> ThroughputPoint:
    """Time the seed decode discipline: one sequence at a time, greedily.

    Mirrors :meth:`TransformerLM.generate` phase by phase so prefill and
    decode are timed separately; like the engine, the token sampled from
    the prefill logits is attributed to prefill, and each decode forward
    produces one decode token.
    """
    prefill_seconds = decode_seconds = 0.0
    prefill_tokens = decode_tokens = 0
    with no_grad():
        for prompt in prompts:
            prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
            cache = KVCache(model.config.num_layers)
            start = time.perf_counter()
            logits = model(prompt[None, :], cache=cache)
            token = int(logits.data[0, -1].argmax())
            prefill_seconds += time.perf_counter() - start
            prefill_tokens += prompt.size
            start = time.perf_counter()
            for _ in range(max_new_tokens - 1):
                logits = model(np.array([[token]]), cache=cache)
                token = int(logits.data[0, -1].argmax())
                decode_tokens += 1
            decode_seconds += time.perf_counter() - start
    return ThroughputPoint(label="sequential", batch_size=1,
                           num_sequences=len(prompts),
                           prefill_tokens=prefill_tokens,
                           prefill_seconds=prefill_seconds,
                           decode_tokens=decode_tokens,
                           decode_seconds=decode_seconds)


def serve_session(model: TransformerLM, prompts: list[np.ndarray],
                  max_new_tokens: int, batch_size: int,
                  kv_cache: str = "paged", block_size: int = 16,
                  **engine_kwargs) -> tuple[GenerationEngine,
                                            "StreamLatencyPoint"]:
    """Drive one full wave through a fresh session, timing the stream.

    The single drain loop behind every engine measurement: returns the
    drained engine (its ``stats`` carry throughput and memory numbers)
    plus the :class:`StreamLatencyPoint` observed on the event stream,
    so one serve yields every metric.

    Every event of a decode step shares that step's wall-clock arrival,
    so a request's inter-token gap is the engine step time it actually
    waited — the streaming analogue of decode tokens/sec, but measured
    per request instead of aggregated.
    """
    engine = GenerationEngine(model, max_batch_size=batch_size,
                              kv_cache=kv_cache, block_size=block_size,
                              **engine_kwargs)
    for prompt in prompts:
        engine.submit(prompt, max_new_tokens)
    last_seen: dict[int, float] = {}
    gaps: list[float] = []
    firsts: list[float] = []
    count = 0
    start = time.perf_counter()
    for event in engine.stream():
        now = time.perf_counter()
        count += 1
        previous = last_seen.get(event.request_id)
        if previous is None:
            firsts.append(now - start)
        else:
            gaps.append(now - previous)
        last_seen[event.request_id] = now
    engine.take_completions()
    latency = StreamLatencyPoint(
        batch_size=batch_size, num_sequences=len(prompts),
        max_new_tokens=max_new_tokens, num_events=count,
        mean_first_token_s=float(np.mean(firsts)) if firsts else 0.0,
        mean_inter_token_s=float(np.mean(gaps)) if gaps else 0.0,
        p95_inter_token_s=float(np.percentile(gaps, 95)) if gaps else 0.0)
    return engine, latency


def engine_throughput(model: TransformerLM, prompts: list[np.ndarray],
                      max_new_tokens: int, batch_size: int) -> ThroughputPoint:
    """Serve ``prompts`` through a fresh engine session and report stats."""
    engine, _latency = serve_session(model, prompts, max_new_tokens,
                                     batch_size)
    stats = engine.stats
    return ThroughputPoint(label=f"engine b={batch_size}",
                           batch_size=batch_size,
                           num_sequences=len(prompts),
                           prefill_tokens=stats.prefill_tokens,
                           prefill_seconds=stats.prefill_seconds,
                           decode_tokens=stats.decode_tokens,
                           decode_seconds=stats.decode_seconds)


def throughput_sweep(model: TransformerLM, prompts: list[np.ndarray],
                     max_new_tokens: int = 32,
                     batch_sizes: tuple[int, ...] = (1, 4, 16)
                     ) -> ThroughputReport:
    """Sequential baseline + engine throughput at each batch size."""
    baseline = sequential_throughput(model, prompts, max_new_tokens)
    points = tuple(engine_throughput(model, prompts, max_new_tokens, size)
                   for size in batch_sizes)
    return ThroughputReport(baseline=baseline, points=points)


@dataclass(frozen=True)
class MemoryPoint:
    """One engine run: cache backend x batch size, memory + throughput."""

    mode: str                    # "paged" | "fineq" | "dense"
    batch_size: int
    num_sequences: int
    max_new_tokens: int
    decode_tokens: int
    decode_seconds: float
    peak_cached_tokens: int      # live context tokens at the high-water mark
    peak_used_bytes: int         # cache bytes for those tokens
    peak_allocated_bytes: int    # physical pool footprint at the mark
    dense_fp32_bytes: int        # rectangular batch x max_len equivalent

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def bytes_per_cached_token(self) -> float:
        return self.peak_used_bytes / self.peak_cached_tokens if self.peak_cached_tokens else 0.0


@dataclass(frozen=True)
class MemoryReport:
    """Memory/throughput points for every measured (mode, batch) pair."""

    model: str
    block_size: int
    points: tuple[MemoryPoint, ...]

    def point(self, mode: str, batch_size: int) -> MemoryPoint:
        for candidate in self.points:
            if candidate.mode == mode and candidate.batch_size == batch_size:
                return candidate
        raise KeyError(f"no point for mode={mode!r} batch={batch_size}")

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            out.append([p.mode, str(p.batch_size),
                        f"{p.decode_tokens_per_s:,.0f}",
                        f"{p.bytes_per_cached_token:,.1f}",
                        f"{p.peak_allocated_bytes:,}",
                        f"{p.dense_fp32_bytes:,}"])
        return out

    def to_dict(self) -> dict:
        return {"model": self.model, "block_size": self.block_size,
                "points": [dataclass_to_dict(p) for p in self.points]}


def memory_point(model: TransformerLM, prompts: list[np.ndarray],
                 max_new_tokens: int, batch_size: int, mode: str,
                 block_size: int = 16) -> MemoryPoint:
    """Serve ``prompts`` through one cache backend and record memory stats."""
    engine, _latency = serve_session(model, prompts, max_new_tokens,
                                     batch_size, kv_cache=mode,
                                     block_size=block_size)
    stats = engine.stats
    config = model.config
    max_len = min(max(len(p) for p in prompts) + max_new_tokens,
                  config.max_seq_len)
    dense = KVCache.projected_bytes(
        config.num_layers, config.num_heads,
        config.d_model // config.num_heads, seq_len=max_len,
        batch=batch_size, bytes_per_element=4)
    return MemoryPoint(mode=mode, batch_size=batch_size,
                       num_sequences=len(prompts),
                       max_new_tokens=max_new_tokens,
                       decode_tokens=stats.decode_tokens,
                       decode_seconds=stats.decode_seconds,
                       peak_cached_tokens=stats.kv_peak_tokens,
                       peak_used_bytes=stats.kv_peak_used_bytes,
                       peak_allocated_bytes=stats.kv_peak_allocated_bytes,
                       dense_fp32_bytes=dense)


def memory_sweep(model: TransformerLM, max_new_tokens: int = 112,
                 batch_sizes: tuple[int, ...] = (16, 32, 64),
                 modes: tuple[str, ...] = ("paged", "fineq"),
                 block_size: int = 16, seed: int = 0) -> MemoryReport:
    """Bytes/cached-token + decode tokens/sec per cache mode and batch.

    Each batch size serves exactly ``batch_size`` prompts (one full wave)
    long enough that most tokens live in completed, quantizable blocks —
    the regime the paper's 2.33-bit memory story targets.
    """
    points = []
    for mode in modes:
        for batch_size in batch_sizes:
            prompts = bench_prompts(model.config.vocab_size, num=batch_size,
                                    max_prompt_len=16, min_prompt_len=8,
                                    seed=seed)
            points.append(memory_point(model, prompts, max_new_tokens,
                                       batch_size, mode,
                                       block_size=block_size))
    return MemoryReport(model=model.config.name, block_size=block_size,
                        points=tuple(points))


def prefix_prompts(vocab_size: int, num: int, prefix_len: int,
                   share_ratio: float = 1.0, suffix_len: int = 8,
                   seed: int = 0) -> list[np.ndarray]:
    """A shared-prefix workload: system prompt + per-request suffix.

    ``share_ratio`` of the ``num`` prompts start with one common
    ``prefix_len``-token prefix (a system prompt / few-shot template)
    followed by a unique ``suffix_len``-token user suffix; the rest are
    fully random prompts of the same total length.  Shared and unshared
    prompts interleave, mimicking mixed traffic.
    """
    if not 0.0 <= share_ratio <= 1.0:
        raise ValueError("share_ratio must be in [0, 1]")
    rng = np.random.default_rng(seed)
    prefix = rng.integers(0, vocab_size, size=prefix_len)
    num_shared = round(num * share_ratio)
    # Even spread of shared prompts through the arrival order.
    shared_flags = [(i * num_shared) // num < ((i + 1) * num_shared) // num
                    for i in range(num)]
    prompts = []
    for i in range(num):
        suffix = rng.integers(0, vocab_size, size=suffix_len)
        if shared_flags[i]:
            prompts.append(np.concatenate([prefix, suffix]))
        else:
            prompts.append(rng.integers(0, vocab_size,
                                        size=prefix_len + suffix_len))
    return prompts


@dataclass(frozen=True)
class PrefixPoint:
    """One engine run of the shared-prefix workload."""

    mode: str                    # "paged" | "fineq"
    batch_size: int
    sharing: bool                # prefix store enabled?
    share_ratio: float
    prefix_len: int
    num_sequences: int
    max_new_tokens: int
    prompt_tokens: int           # submitted prompt tokens
    prefill_tokens: int          # tokens actually forwarded by prefill
    shared_prompt_tokens: int    # prompt tokens adopted from cache
    prefill_seconds: float
    decode_tokens: int
    decode_seconds: float
    peak_cached_tokens: int
    peak_physical_bytes: int     # resident cache bytes (shared blocks once)
    preemptions: int
    dequant_cache_hit_rate: float = 0.0  # fineq dequant-memo hit rate
    projected: dict | None = None  # accelerator projection (hw cycle model)

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0

    @property
    def physical_bytes_per_cached_token(self) -> float:
        return self.peak_physical_bytes / self.peak_cached_tokens if self.peak_cached_tokens else 0.0

    @property
    def prefill_tokens_avoided(self) -> int:
        return self.prompt_tokens - self.prefill_tokens


@dataclass(frozen=True)
class PrefixReport:
    """Sharing-off vs sharing-on points per cache mode."""

    model: str
    block_size: int
    prefix_len: int
    share_ratio: float
    points: tuple[PrefixPoint, ...]

    def point(self, mode: str, sharing: bool) -> PrefixPoint:
        for candidate in self.points:
            if candidate.mode == mode and candidate.sharing == sharing:
                return candidate
        raise KeyError(f"no point for mode={mode!r} sharing={sharing}")

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            projected = (f"{p.projected['fineq']['tokens_per_s']:,.0f}"
                         if p.projected else "-")
            out.append([p.mode, "on" if p.sharing else "off",
                        f"{p.prefill_tokens:,}",
                        f"{p.prefill_tokens_avoided:,}",
                        f"{p.physical_bytes_per_cached_token:,.1f}",
                        f"{p.decode_tokens_per_s:,.0f}", projected])
        return out

    def to_dict(self) -> dict:
        return {"model": self.model, "block_size": self.block_size,
                "prefix_len": self.prefix_len,
                "share_ratio": self.share_ratio,
                "points": [dataclass_to_dict(p) for p in self.points]}


def prefix_point(model: TransformerLM, prompts: list[np.ndarray],
                 max_new_tokens: int, batch_size: int, mode: str,
                 sharing: bool, share_ratio: float, prefix_len: int,
                 block_size: int = 16, project: bool = True) -> PrefixPoint:
    """Serve the shared-prefix workload once and record every axis."""
    engine, _latency = serve_session(
        model, prompts, max_new_tokens, batch_size, kv_cache=mode,
        block_size=block_size, prefix_sharing=sharing,
        scheduler="prefix-affinity" if sharing else "fifo",
        record_trace=project)
    stats = engine.stats
    projected = None
    if project and engine.trace:
        from repro.hw.workloads import project_decode_trace
        projected = {
            design: project_decode_trace(model.config, engine.trace,
                                         design=design).to_dict()
            for design in ("baseline", "fineq")}
    return PrefixPoint(mode=mode, batch_size=batch_size, sharing=sharing,
                       share_ratio=share_ratio, prefix_len=prefix_len,
                       num_sequences=len(prompts),
                       max_new_tokens=max_new_tokens,
                       prompt_tokens=stats.prompt_tokens,
                       prefill_tokens=stats.prefill_tokens,
                       shared_prompt_tokens=stats.shared_prompt_tokens,
                       prefill_seconds=stats.prefill_seconds,
                       decode_tokens=stats.decode_tokens,
                       decode_seconds=stats.decode_seconds,
                       peak_cached_tokens=stats.kv_peak_tokens,
                       peak_physical_bytes=stats.kv_peak_physical_bytes,
                       preemptions=stats.preemptions,
                       dequant_cache_hit_rate=stats.dequant_cache_hit_rate,
                       projected=projected)


def prefix_sweep(model: TransformerLM, prefix_len: int = 64,
                 suffix_len: int = 8, batch_size: int = 16,
                 share_ratio: float = 1.0, max_new_tokens: int = 16,
                 modes: tuple[str, ...] = ("paged", "fineq"),
                 block_size: int = 16, seed: int = 0,
                 project: bool = True) -> PrefixReport:
    """Prefix sharing off vs on, per cache mode.

    Reports prefill tokens avoided, resident bytes per cached token, and
    decode tok/s, plus (``project=True``) decode throughput projected
    onto the paper's accelerator from the engine's step trace — the
    numbers behind the prefix-sharing serving claim.
    """
    points = []
    for mode in modes:
        prompts = prefix_prompts(model.config.vocab_size, num=batch_size,
                                 prefix_len=prefix_len,
                                 share_ratio=share_ratio,
                                 suffix_len=suffix_len, seed=seed)
        for sharing in (False, True):
            points.append(prefix_point(model, prompts, max_new_tokens,
                                       batch_size, mode, sharing,
                                       share_ratio, prefix_len,
                                       block_size=block_size,
                                       project=project))
    return PrefixReport(model=model.config.name, block_size=block_size,
                        prefix_len=prefix_len, share_ratio=share_ratio,
                        points=tuple(points))


@dataclass(frozen=True)
class DecodePoint:
    """One decode-path measurement: backend x read path x context length."""

    mode: str                    # "paged" | "fineq" | "dense"
    block_decode: bool           # block-resident path (False = gather)
    context_len: int             # prompt tokens per row at decode start
    batch_size: int
    max_new_tokens: int
    decode_tokens: int
    decode_seconds: float
    peak_scratch_bytes: int      # largest transient decode K/V scratch
    bytes_not_gathered: int      # dense-copy bytes the block path skipped
    dequant_cache_hit_rate: float

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds if self.decode_seconds else 0.0


@dataclass(frozen=True)
class DecodeReport:
    """Block-resident vs gather decode, per cache mode and context length."""

    model: str
    block_size: int
    batch_size: int
    points: tuple[DecodePoint, ...]

    def point(self, mode: str, context_len: int,
              block_decode: bool) -> DecodePoint:
        for candidate in self.points:
            if (candidate.mode == mode
                    and candidate.context_len == context_len
                    and candidate.block_decode == block_decode):
                return candidate
        raise KeyError(f"no point for mode={mode!r} context={context_len} "
                       f"block_decode={block_decode}")

    def speedup(self, mode: str, context_len: int) -> float:
        """Block-resident decode tok/s over the gather path's."""
        gather = self.point(mode, context_len, block_decode=False)
        block = self.point(mode, context_len, block_decode=True)
        base = gather.decode_tokens_per_s
        return block.decode_tokens_per_s / base if base else 0.0

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            speed = (f"{self.speedup(p.mode, p.context_len):.1f}x"
                     if p.block_decode else "-")
            out.append([p.mode, "block" if p.block_decode else "gather",
                        str(p.context_len),
                        f"{p.decode_tokens_per_s:,.0f}", speed,
                        f"{p.peak_scratch_bytes:,}",
                        f"{p.dequant_cache_hit_rate:.2f}"])
        return out

    def to_dict(self) -> dict:
        points = []
        for p in self.points:
            entry = dataclass_to_dict(p)
            if p.block_decode:
                entry["speedup_vs_gather"] = self.speedup(p.mode,
                                                          p.context_len)
            points.append(entry)
        return {"model": self.model, "block_size": self.block_size,
                "batch_size": self.batch_size, "points": points}


def decode_point(model: TransformerLM, context_len: int, batch_size: int,
                 max_new_tokens: int, mode: str, block_decode: bool,
                 block_size: int = 16, seed: int = 0) -> DecodePoint:
    """Serve one wave of ``context_len``-token prompts and time decode."""
    prompts = bench_prompts(model.config.vocab_size, num=batch_size,
                            max_prompt_len=context_len,
                            min_prompt_len=context_len, seed=seed)
    engine, _latency = serve_session(model, prompts, max_new_tokens,
                                     batch_size, kv_cache=mode,
                                     block_size=block_size,
                                     block_decode=block_decode)
    stats = engine.stats
    return DecodePoint(mode=mode, block_decode=block_decode,
                       context_len=context_len, batch_size=batch_size,
                       max_new_tokens=max_new_tokens,
                       decode_tokens=stats.decode_tokens,
                       decode_seconds=stats.decode_seconds,
                       peak_scratch_bytes=stats.decode_peak_scratch_bytes,
                       bytes_not_gathered=stats.decode_bytes_not_gathered,
                       dequant_cache_hit_rate=stats.dequant_cache_hit_rate)


def decode_sweep(model: TransformerLM,
                 context_lens: tuple[int, ...] = (64, 256, 1024),
                 batch_size: int = 8, max_new_tokens: int = 8,
                 modes: tuple[str, ...] = ("paged", "fineq"),
                 block_size: int = 16, seed: int = 0) -> DecodeReport:
    """Decode tok/s vs context length, block-resident vs gather path.

    Each point serves one full wave of exactly-``context_len``-token
    prompts so every decode step attends over at least that much
    context; the block/gather contrast at long contexts is the number
    behind the block-resident decode claim (the fineq 1024-token point
    is asserted >= 1.5x in ``benchmarks``/CI).
    """
    limit = model.config.max_seq_len
    for context_len in context_lens:
        if context_len + max_new_tokens > limit:
            raise ValueError(
                f"context {context_len} + {max_new_tokens} new tokens "
                f"exceeds the model's max_seq_len={limit}")
    points = []
    for mode in modes:
        for context_len in context_lens:
            for block_decode in (False, True):
                points.append(decode_point(model, context_len, batch_size,
                                           max_new_tokens, mode,
                                           block_decode,
                                           block_size=block_size,
                                           seed=seed))
    return DecodeReport(model=model.config.name, block_size=block_size,
                        batch_size=batch_size, points=tuple(points))


@dataclass(frozen=True)
class SpecPoint:
    """One speculative (or target-only baseline) serving measurement."""

    draft: str                   # draft model name; "-" = target-only
    k: int                       # tokens drafted per step; 0 = baseline
    batch_size: int
    max_new_tokens: int
    decode_tokens: int
    decode_seconds: float
    spec_proposed: int
    spec_accepted: int

    @property
    def decode_tokens_per_s(self) -> float:
        return self.decode_tokens / self.decode_seconds \
            if self.decode_seconds else 0.0

    @property
    def acceptance_rate(self) -> float:
        return self.spec_accepted / self.spec_proposed \
            if self.spec_proposed else 0.0


@dataclass(frozen=True)
class SpecReport:
    """Speculative vs target-only decode over a k x batch x pair grid."""

    target: str
    kv_cache: str
    policy: str
    draft_kv_cache: str
    points: tuple[SpecPoint, ...]

    def point(self, draft: str, k: int, batch_size: int) -> SpecPoint:
        for candidate in self.points:
            if (candidate.draft == draft and candidate.k == k
                    and candidate.batch_size == batch_size):
                return candidate
        raise KeyError(f"no point for draft={draft!r} k={k} "
                       f"batch={batch_size}")

    def speedup(self, draft: str, k: int, batch_size: int) -> float:
        """Speculative decode tok/s over the same-batch target-only run."""
        base = self.point("-", 0, batch_size).decode_tokens_per_s
        spec = self.point(draft, k, batch_size).decode_tokens_per_s
        return spec / base if base else 0.0

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            spec = p.k > 0
            out.append([p.draft, str(p.k) if spec else "-",
                        str(p.batch_size),
                        f"{p.decode_tokens_per_s:,.0f}",
                        f"{p.acceptance_rate:.2f}" if spec else "-",
                        (f"{self.speedup(p.draft, p.k, p.batch_size):.1f}x"
                         if spec else "-")])
        return out

    def to_dict(self) -> dict:
        points = []
        for p in self.points:
            entry = dataclass_to_dict(p)
            if p.k > 0:
                entry["speedup_vs_target_only"] = self.speedup(
                    p.draft, p.k, p.batch_size)
            points.append(entry)
        return {"target": self.target, "kv_cache": self.kv_cache,
                "policy": self.policy,
                "draft_kv_cache": self.draft_kv_cache, "points": points}


def spec_point(target: TransformerLM, draft: TransformerLM | None,
               prompts: list[np.ndarray], k: int, batch_size: int,
               max_new_tokens: int, kv_cache: str = "paged",
               policy: str = "exact", draft_kv_cache: str = "dense",
               block_size: int = 16, draft_name: str = "-") -> SpecPoint:
    """Serve one wave speculatively (or target-only when ``k == 0``)."""
    speculative = None
    if k > 0:
        if draft is None:
            raise ValueError("k > 0 needs a draft model")
        speculative = SpeculativeConfig(draft_model=draft, k=k,
                                        policy=policy,
                                        draft_kv_cache=draft_kv_cache)
    engine, _latency = serve_session(target, prompts[:batch_size],
                                     max_new_tokens, batch_size,
                                     kv_cache=kv_cache,
                                     block_size=block_size,
                                     speculative=speculative)
    stats = engine.stats
    return SpecPoint(draft=draft_name if k > 0 else "-", k=k,
                     batch_size=batch_size,
                     max_new_tokens=max_new_tokens,
                     decode_tokens=stats.decode_tokens,
                     decode_seconds=stats.decode_seconds,
                     spec_proposed=stats.spec_proposed,
                     spec_accepted=stats.spec_accepted)


def spec_sweep(target: TransformerLM,
               drafts: list[tuple[str, TransformerLM]],
               prompts: list[np.ndarray],
               ks: tuple[int, ...] = (2, 4, 8),
               batch_sizes: tuple[int, ...] = (1, 2, 4),
               max_new_tokens: int = 32, kv_cache: str = "paged",
               policy: str = "exact", draft_kv_cache: str = "dense",
               block_size: int = 16) -> SpecReport:
    """Speculative vs target-only decode tok/s over a k x batch grid.

    Each batch size first serves a target-only baseline wave, then the
    same wave with every ``(draft, k)`` combination; the report's
    speedups divide matching waves, so the draft/verify pipeline is the
    only variable.  Prompts should be in-distribution for the model
    pair (see :func:`corpus_prompts`) — acceptance, and therefore the
    speedup, collapses on token sequences neither model has modelled.
    """
    limit = target.config.max_seq_len
    longest = max(len(p) for p in prompts)
    if longest + max_new_tokens > limit:
        raise ValueError(f"prompt length {longest} + {max_new_tokens} new "
                         f"tokens exceeds the target's "
                         f"max_seq_len={limit}")
    points = []
    for batch_size in batch_sizes:
        points.append(spec_point(target, None, prompts, 0, batch_size,
                                 max_new_tokens, kv_cache=kv_cache,
                                 block_size=block_size))
        for draft_name, draft in drafts:
            for k in ks:
                points.append(spec_point(
                    target, draft, prompts, k, batch_size,
                    max_new_tokens, kv_cache=kv_cache, policy=policy,
                    draft_kv_cache=draft_kv_cache, block_size=block_size,
                    draft_name=draft_name))
    return SpecReport(target=target.config.name, kv_cache=kv_cache,
                      policy=policy, draft_kv_cache=draft_kv_cache,
                      points=tuple(points))


@dataclass(frozen=True)
class StreamLatencyPoint:
    """Inter-token latency of one streamed engine configuration."""

    batch_size: int
    num_sequences: int
    max_new_tokens: int
    num_events: int
    mean_first_token_s: float   # stream start -> a request's first event
    mean_inter_token_s: float   # gap between a request's adjacent events
    p95_inter_token_s: float

    @property
    def streamed_tokens_per_s(self) -> float:
        return 1.0 / self.mean_inter_token_s if self.mean_inter_token_s else 0.0


@dataclass(frozen=True)
class StreamLatencyReport:
    """Streaming latency per measured batch size."""

    model: str
    points: tuple[StreamLatencyPoint, ...]

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            out.append([str(p.batch_size), str(p.num_events),
                        f"{1e3 * p.mean_first_token_s:,.1f}",
                        f"{1e3 * p.mean_inter_token_s:,.2f}",
                        f"{1e3 * p.p95_inter_token_s:,.2f}",
                        f"{p.streamed_tokens_per_s:,.0f}"])
        return out

    def to_dict(self) -> dict:
        return {"model": self.model,
                "points": [dataclass_to_dict(p) for p in self.points]}


def stream_latency(model: TransformerLM, prompts: list[np.ndarray],
                   max_new_tokens: int, batch_size: int,
                   kv_cache: str = "paged") -> StreamLatencyPoint:
    """Time the token-event stream a serving client would consume."""
    _engine, latency = serve_session(model, prompts, max_new_tokens,
                                     batch_size, kv_cache=kv_cache)
    return latency


def latency_sweep(model: TransformerLM, max_new_tokens: int = 32,
                  batch_sizes: tuple[int, ...] = (4, 16),
                  num_prompts: int | None = None,
                  seed: int = 0) -> StreamLatencyReport:
    """Mean/p95 inter-token seconds at each batch size (one full wave)."""
    points = []
    for batch_size in batch_sizes:
        prompts = bench_prompts(model.config.vocab_size,
                                num=num_prompts or batch_size, seed=seed)
        points.append(stream_latency(model, prompts, max_new_tokens,
                                     batch_size))
    return StreamLatencyReport(model=model.config.name, points=tuple(points))


@dataclass(frozen=True)
class MixedLatencyPoint:
    """One mixed-traffic run: cache mode x prefill chunking setting."""

    mode: str                        # "paged" | "fineq"
    prefill_chunk_tokens: int | None  # None = one-shot prefill
    batch_size: int
    num_short: int
    num_long: int
    long_prompt_len: int
    num_events: int
    mean_inter_token_s: float
    p95_inter_token_s: float
    max_inter_token_s: float
    prefill_chunks: int
    prefill_tokens_deferred: int
    prefill_dequant_hit_rate: float

    @property
    def label(self) -> str:
        chunk = self.prefill_chunk_tokens
        return "one-shot" if chunk is None else f"chunk={chunk}"


@dataclass(frozen=True)
class MixedLatencyReport:
    """One-shot vs chunked prefill under mixed traffic, per cache mode.

    ``tokens_identical`` records whether every request's completed
    tokens matched between the chunked and one-shot runs of the same
    mode — chunking is a latency knob, not a numerics knob, and the
    sweep verifies that claim on every run.
    """

    model: str
    max_new_tokens: int
    prefill_chunk_tokens: int
    points: tuple[MixedLatencyPoint, ...]
    tokens_identical: bool

    def point(self, mode: str,
              chunk: int | None) -> MixedLatencyPoint:
        for candidate in self.points:
            if (candidate.mode == mode
                    and candidate.prefill_chunk_tokens == chunk):
                return candidate
        raise KeyError(f"no point for mode={mode!r} chunk={chunk}")

    def p95_ratio(self, mode: str) -> float:
        """One-shot p95 inter-token seconds over chunked p95 (>1 means
        chunking improved the tail)."""
        oneshot = self.point(mode, None)
        chunked = self.point(mode, self.prefill_chunk_tokens)
        base = chunked.p95_inter_token_s
        return oneshot.p95_inter_token_s / base if base else 0.0

    def rows(self) -> list[list[str]]:
        out = []
        for p in self.points:
            better = ("-" if p.prefill_chunk_tokens is None
                      else f"{self.p95_ratio(p.mode):.1f}x")
            out.append([p.mode, p.label,
                        f"{1e3 * p.mean_inter_token_s:,.2f}",
                        f"{1e3 * p.p95_inter_token_s:,.2f}",
                        f"{1e3 * p.max_inter_token_s:,.2f}", better,
                        str(p.prefill_chunks),
                        f"{p.prefill_dequant_hit_rate:.2f}"])
        return out

    def to_dict(self) -> dict:
        points = []
        for p in self.points:
            entry = dataclass_to_dict(p)
            if p.prefill_chunk_tokens is not None:
                entry["p95_improvement_vs_oneshot"] = self.p95_ratio(p.mode)
            points.append(entry)
        return {"model": self.model,
                "max_new_tokens": self.max_new_tokens,
                "prefill_chunk_tokens": self.prefill_chunk_tokens,
                "tokens_identical": self.tokens_identical,
                "points": points}


def mixed_traffic_session(model: TransformerLM, shorts: list[np.ndarray],
                          longs: list[np.ndarray], max_new_tokens: int,
                          batch_size: int,
                          prefill_chunk_tokens: int | None,
                          kv_cache: str = "paged", block_size: int = 16,
                          inject_every: int = 2,
                          **engine_kwargs) -> tuple[GenerationEngine,
                                                    MixedLatencyPoint,
                                                    list[tuple[int, ...]]]:
    """Serve short decoders with long prompts landing mid-stream.

    The short prompts submit up front and start decoding; each long
    prompt arrives ``inject_every`` steps after the previous one, while
    the shorts are still streaming — the workload whose tail latency
    one-shot prefill wrecks (every short waits out the full prompt
    forward) and chunked prefill bounds (at most a chunk's worth of
    extra work per step).  Returns the drained engine, the timing
    point, and every request's completed tokens in submission order
    (shorts first) so callers can verify chunked/one-shot parity.
    """
    engine = GenerationEngine(model, max_batch_size=batch_size,
                              kv_cache=kv_cache, block_size=block_size,
                              prefill_chunk_tokens=prefill_chunk_tokens,
                              **engine_kwargs)
    ids = [engine.submit(prompt, max_new_tokens) for prompt in shorts]
    pending = list(longs)
    last_seen: dict[int, float] = {}
    gaps: list[float] = []
    count = step = 0
    while engine.has_work() or pending:
        if pending and step >= inject_every * (len(longs)
                                               - len(pending) + 1):
            ids.append(engine.submit(pending.pop(0), max_new_tokens))
        events = engine.step()
        now = time.perf_counter()
        step += 1
        for event in events:
            count += 1
            previous = last_seen.get(event.request_id)
            if previous is not None:
                gaps.append(now - previous)
            last_seen[event.request_id] = now
    done = {c.request_id: tuple(int(t) for t in c.tokens)
            for c in engine.take_completions()}
    stats = engine.stats
    point = MixedLatencyPoint(
        mode=kv_cache, prefill_chunk_tokens=prefill_chunk_tokens,
        batch_size=batch_size, num_short=len(shorts), num_long=len(longs),
        long_prompt_len=max(len(p) for p in longs) if longs else 0,
        num_events=count,
        mean_inter_token_s=float(np.mean(gaps)) if gaps else 0.0,
        p95_inter_token_s=float(np.percentile(gaps, 95)) if gaps else 0.0,
        max_inter_token_s=float(np.max(gaps)) if gaps else 0.0,
        prefill_chunks=stats.prefill_chunks,
        prefill_tokens_deferred=stats.prefill_tokens_deferred,
        prefill_dequant_hit_rate=stats.prefill_dequant_hit_rate)
    return engine, point, [done[rid] for rid in ids]


def mixed_latency_sweep(model: TransformerLM, batch_size: int = 16,
                        num_long: int = 2, long_prompt_len: int = 384,
                        max_new_tokens: int = 24,
                        prefill_chunk_tokens: int = 128,
                        modes: tuple[str, ...] = ("paged", "fineq"),
                        block_size: int = 16,
                        seed: int = 0) -> MixedLatencyReport:
    """One-shot vs chunked prefill under mixed traffic, per cache mode.

    ``batch_size - num_long`` short prompts stream while ``num_long``
    ``long_prompt_len``-token prompts arrive mid-decode; the report
    carries p95 inter-token latency for both prefill disciplines (the
    chunked p95 improvement is the asserted serving number) and whether
    the two runs' completed tokens matched exactly.
    """
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    shorts = bench_prompts(vocab, num=batch_size - num_long,
                           max_prompt_len=12, min_prompt_len=4, seed=seed)
    longs = [rng.integers(0, vocab, size=long_prompt_len)
             for _ in range(num_long)]
    points = []
    identical = True
    for mode in modes:
        outputs = {}
        for chunk in (None, prefill_chunk_tokens):
            _engine, point, tokens = mixed_traffic_session(
                model, shorts, longs, max_new_tokens, batch_size, chunk,
                kv_cache=mode, block_size=block_size)
            points.append(point)
            outputs[chunk] = tokens
        identical &= outputs[None] == outputs[prefill_chunk_tokens]
    return MixedLatencyReport(model=model.config.name,
                              max_new_tokens=max_new_tokens,
                              prefill_chunk_tokens=prefill_chunk_tokens,
                              points=tuple(points),
                              tokens_identical=identical)


def main(argv: list[str] | None = None) -> None:
    import argparse

    from repro.eval.tables import format_table

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default=None,
                        help="zoo model name (default: untrained tiny model)")
    parser.add_argument("--smoke", action="store_true",
                        help="minimal settings for CI (implies tiny model)")
    parser.add_argument("--mem", action="store_true",
                        help="run the paged/quantized cache memory sweep "
                             "instead of the throughput sweep")
    parser.add_argument("--stream", action="store_true",
                        help="run the streaming inter-token latency sweep "
                             "instead of the throughput sweep")
    parser.add_argument("--prefix", action="store_true",
                        help="run the prefix-sharing sweep (sharing off vs "
                             "on per cache mode, with accelerator "
                             "projection) instead of the throughput sweep")
    parser.add_argument("--decode", action="store_true",
                        help="run the decode-path sweep (block-resident vs "
                             "gather reads per cache mode and context "
                             "length) instead of the throughput sweep")
    parser.add_argument("--latency", action="store_true",
                        help="run the mixed-traffic latency sweep (one-shot "
                             "vs chunked prefill p95 inter-token latency "
                             "while long prompts land mid-decode) instead "
                             "of the throughput sweep")
    parser.add_argument("--spec", action="store_true",
                        help="run the speculative-decoding sweep (draft/"
                             "target pairs over a k x batch grid, vs "
                             "target-only decode) instead of the "
                             "throughput sweep")
    parser.add_argument("--gateway", action="store_true",
                        help="run the serving-gateway sweep (raw engine vs "
                             "durable gateway goodput, plus first-token "
                             "p50/p99 under Poisson arrivals) instead of "
                             "the throughput sweep")
    parser.add_argument("--load", type=float, default=0.7,
                        help="Poisson arrival rate as a fraction of the "
                             "saturated gateway service rate for "
                             "--gateway (default 0.7)")
    parser.add_argument("--drafts", default=None,
                        help="comma list of zoo draft model names for "
                             "--spec (default llama-sim-3b; ignored with "
                             "--smoke, which pairs two untrained tiny "
                             "models)")
    parser.add_argument("--ks", default=None,
                        help="comma list of draft lengths k for --spec "
                             "(default 2,4,8; 2 with --smoke)")
    parser.add_argument("--chunk-tokens", type=int, default=128,
                        help="prefill chunk budget for --latency "
                             "(default 128)")
    parser.add_argument("--long-prompt-len", type=int, default=384,
                        help="long prompt length for --latency "
                             "(default 384)")
    parser.add_argument("--context-lens", default=None,
                        help="comma list of context lengths for --decode "
                             "(default 64,256,1024)")
    parser.add_argument("--prefix-len", type=int, default=64,
                        help="shared prefix length for --prefix "
                             "(default 64)")
    parser.add_argument("--share-ratio", type=float, default=1.0,
                        help="fraction of prompts sharing the prefix for "
                             "--prefix (default 1.0)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON "
                             "(--mem, --stream, or --prefix only)")
    parser.add_argument("--num-prompts", type=int, default=None,
                        help="prompts to serve (default 16; fixed at one "
                             "full wave per batch size with --mem)")
    parser.add_argument("--max-new-tokens", type=int, default=None,
                        help="tokens per sequence (default 32; 112 with "
                             "--mem so most tokens sit in full blocks)")
    parser.add_argument("--batch-sizes", default=None,
                        help="comma list (default 1,4,16; 16,32,64 with "
                             "--mem; 4,16 with --stream)")
    args = parser.parse_args(argv)

    if args.model and not args.smoke:
        from repro.models import load_model
        model = load_model(args.model).model
        name = args.model
    else:
        from repro.models.configs import tiny_config
        model = TransformerLM(tiny_config(vocab_size=256, seed=0))
        name = "tiny (untrained)"

    if sum((args.mem, args.stream, args.prefix, args.decode,
            args.latency, args.spec, args.gateway)) > 1:
        parser.error("--mem, --stream, --prefix, --decode, --latency, "
                     "--spec, and --gateway are separate sweeps; pick one")
    if args.context_lens and not args.decode:
        parser.error("--context-lens only applies to --decode")
    if (args.drafts or args.ks) and not args.spec:
        parser.error("--drafts/--ks only apply to --spec")
    if args.json and not (args.mem or args.stream or args.prefix
                          or args.decode or args.latency or args.spec
                          or args.gateway):
        parser.error("--json requires --mem, --stream, --prefix, --decode, "
                     "--latency, --spec, or --gateway (the throughput "
                     "sweep has no JSON report)")
    if args.gateway:
        from repro.serve.gateway.bench import gateway_sweep
        batches = (args.batch_sizes or ("4" if args.smoke else "16")) \
            .split(",")
        if len(batches) != 1:
            parser.error("--gateway sweeps a single batch size; pass one "
                         "value to --batch-sizes")
        batch = int(batches[0])
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (8 if args.smoke else 16))
        num = (args.num_prompts if args.num_prompts is not None
               else (8 if args.smoke else 2 * batch))
        report = gateway_sweep(model, num_requests=num,
                               max_new_tokens=max_new, batch_size=batch,
                               load=args.load)
        print(f"serving gateway on {name} ({num} requests x {max_new} "
              f"new tokens, batch {batch}, Poisson load {args.load:.0%})")
        print(format_table(["path", "completed", "goodput tok/s",
                            "first-token p50 ms", "p99 ms"],
                           report.rows()))
        print(f"gateway overhead vs raw engine: "
              f"{report.overhead_ratio:.2f}x")
        if args.json:
            export_report(report, args.json, name, "paged")
        return
    if args.spec:
        if args.num_prompts is not None:
            parser.error("--num-prompts has no effect with --spec (each "
                         "point serves one full wave of batch-size "
                         "prompts); use --batch-sizes")
        batch_sizes = tuple(int(b) for b in
                            (args.batch_sizes
                             or ("1,2" if args.smoke else "1,2,4"))
                            .split(","))
        ks = tuple(int(k) for k in
                   (args.ks or ("2" if args.smoke else "2,4,8"))
                   .split(","))
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (8 if args.smoke else 48))
        if args.smoke:
            # Mechanics-only pairing: two untrained tiny models sharing a
            # vocabulary.  Acceptance is near zero (their argmaxes are
            # unrelated), which exercises the rollback path hard — the
            # point of the smoke run is the machinery, not the speedup.
            from repro.models.configs import tiny_config
            target, target_name = model, name
            drafts = [("tiny-draft (untrained)", TransformerLM(
                tiny_config(vocab_size=256, seed=1)))]
            prompts = bench_prompts(target.config.vocab_size,
                                    num=max(batch_sizes))
        else:
            from repro.models import load_model
            target_name = args.model or "llama-sim-13b"
            zoo = load_model(target_name)
            target = zoo.model
            draft_names = (args.drafts or "llama-sim-3b").split(",")
            drafts = [(d, load_model(d).model) for d in draft_names]
            prompt_len = min(
                256, target.config.max_seq_len - max_new - max(ks) - 1)
            prompts = corpus_prompts(zoo.tokenizer, num=max(batch_sizes),
                                     prompt_len=prompt_len)
        report = spec_sweep(target, drafts, prompts, ks=ks,
                            batch_sizes=batch_sizes,
                            max_new_tokens=max_new)
        print(f"speculative decoding on {target_name} "
              f"({max_new} new tokens per sequence)")
        print(format_table(["draft", "k", "batch", "decode tok/s",
                            "accept", "speedup"], report.rows()))
        if args.json:
            export_report(report, args.json, target_name, "paged")
        return
    if args.latency:
        if args.num_prompts is not None:
            parser.error("--num-prompts has no effect with --latency (the "
                         "sweep serves batch-size short prompts plus the "
                         "injected long ones); use --batch-sizes")
        batches = (args.batch_sizes or ("8" if args.smoke else "16")) \
            .split(",")
        if len(batches) != 1:
            parser.error("--latency sweeps a single batch size; pass one "
                         "value to --batch-sizes")
        batch = int(batches[0])
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (16 if args.smoke else 24))
        needed = args.long_prompt_len + max_new
        if model.config.max_seq_len < needed:
            if args.model:
                parser.error(f"model {name} caps max_seq_len at "
                             f"{model.config.max_seq_len}; the sweep needs "
                             f"{needed} (shrink --long-prompt-len)")
            # The default tiny model only reaches 128 positions; rebuild
            # it with a RoPE table long enough for the long prompts.
            from dataclasses import replace as config_replace

            from repro.models.configs import tiny_config
            model = TransformerLM(config_replace(
                tiny_config(vocab_size=256, seed=0,
                            max_seq_len=max(needed, 128)),
                name="tiny-long (untrained)"))
            name = model.config.name
        report = mixed_latency_sweep(model, batch_size=batch,
                                     long_prompt_len=args.long_prompt_len,
                                     max_new_tokens=max_new,
                                     prefill_chunk_tokens=args.chunk_tokens)
        print(f"mixed-traffic inter-token latency on {name} (batch {batch}, "
              f"{args.long_prompt_len}-token long prompts, chunk budget "
              f"{args.chunk_tokens})")
        print(format_table(["mode", "prefill", "inter-token ms", "p95 ms",
                            "max ms", "p95 better", "chunks",
                            "dequant hit"], report.rows()))
        print(f"chunked tokens identical to one-shot: "
              f"{report.tokens_identical}")
        if args.json:
            export_report(report, args.json, name, "paged,fineq")
        return
    if args.decode:
        if args.num_prompts is not None:
            parser.error("--num-prompts has no effect with --decode (each "
                         "point serves one full wave of batch-size "
                         "prompts); use --batch-sizes to scale the sweep")
        batches = (args.batch_sizes or "8").split(",")
        if len(batches) != 1:
            parser.error("--decode sweeps a single batch size; pass one "
                         "value to --batch-sizes")
        batch = int(batches[0])
        context_lens = tuple(int(c) for c in
                             (args.context_lens or "64,256,1024").split(","))
        # Enough decode steps that the dequant memo's steady state (the
        # serving regime) outweighs the first step's cold misses.
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (16 if args.smoke else 24))
        needed = max(context_lens) + max_new
        if model.config.max_seq_len < needed:
            if args.model:
                parser.error(f"model {name} caps max_seq_len at "
                             f"{model.config.max_seq_len}; the sweep needs "
                             f"{needed} (shrink --context-lens)")
            # The default tiny model only reaches 128 positions; rebuild
            # it with a RoPE table long enough for the sweep's contexts.
            from dataclasses import replace as config_replace

            from repro.models.configs import tiny_config
            model = TransformerLM(config_replace(
                tiny_config(vocab_size=256, seed=0,
                            max_seq_len=max(needed, 128)),
                name="tiny-long (untrained)"))
            name = model.config.name
        report = decode_sweep(model, context_lens=context_lens,
                              batch_size=batch, max_new_tokens=max_new)
        print(f"decode read path on {name} (batch {batch}, "
              f"{max_new} new tokens per sequence)")
        print(format_table(["mode", "read path", "context", "decode tok/s",
                            "speedup", "peak scratch B", "dequant hit"],
                           report.rows()))
        if args.json:
            export_report(report, args.json, name, "paged,fineq")
        return
    if args.prefix:
        if args.num_prompts is not None:
            parser.error("--num-prompts has no effect with --prefix (each "
                         "point serves one full wave of batch-size "
                         "prompts); use --batch-sizes to scale the sweep")
        batches = (args.batch_sizes or "16").split(",")
        if len(batches) != 1:
            parser.error("--prefix sweeps a single batch size; pass one "
                         "value to --batch-sizes")
        batch = int(batches[0])
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (8 if args.smoke else 16))
        report = prefix_sweep(model, prefix_len=args.prefix_len,
                              batch_size=batch,
                              share_ratio=args.share_ratio,
                              max_new_tokens=max_new)
        print(f"prefix sharing on {name} (prefix {args.prefix_len} tokens, "
              f"share ratio {args.share_ratio:.0%}, batch {batch})")
        print(format_table(["mode", "sharing", "prefill tok", "avoided",
                            "bytes/token", "decode tok/s", "accel tok/s"],
                           report.rows()))
        if args.json:
            export_report(report, args.json, name, "paged,fineq")
        return
    if args.stream:
        batches = tuple(int(b) for b in
                        (args.batch_sizes or "4,16").split(","))
        max_new = (args.max_new_tokens if args.max_new_tokens is not None
                   else (8 if args.smoke else 32))
        report = latency_sweep(model, max_new_tokens=max_new,
                               batch_sizes=batches,
                               num_prompts=args.num_prompts)
        print(f"streaming inter-token latency on {name} "
              f"({max_new} new tokens per sequence)")
        print(format_table(["batch", "events", "first-token ms",
                            "inter-token ms", "p95 ms", "stream tok/s"],
                           report.rows()))
        if args.json:
            export_report(report, args.json, name, "paged")
        return
    if args.mem:
        if args.num_prompts is not None:
            parser.error("--num-prompts has no effect with --mem "
                         "(each point serves one full wave of batch-size "
                         "prompts); use --batch-sizes to scale the sweep")
        batches = tuple(int(b) for b in
                        (args.batch_sizes or "16,32,64").split(","))
        max_new = ((24 if args.smoke else 112)
                   if args.max_new_tokens is None else args.max_new_tokens)
        report = memory_sweep(model, max_new_tokens=max_new,
                              batch_sizes=batches)
        print(f"paged/quantized KV cache memory on {name} "
              f"({max_new} new tokens per sequence)")
        print(format_table(["mode", "batch", "decode tok/s", "bytes/token",
                            "allocated", "dense fp32"], report.rows()))
        if args.json:
            export_report(report, args.json, name, "paged,fineq")
        return

    # `is None` (not `or`): an explicit 0 must reach the engine's loud
    # validation instead of silently becoming a default.  Explicit values
    # always win over --smoke's scaled-down defaults, as in --mem mode.
    max_new = (args.max_new_tokens if args.max_new_tokens is not None
               else (8 if args.smoke else 32))
    num = (args.num_prompts if args.num_prompts is not None
           else (8 if args.smoke else 16))
    batch_sizes = tuple(int(b) for b in
                        (args.batch_sizes or "1,4,16").split(","))
    prompts = bench_prompts(model.config.vocab_size, num)
    report = throughput_sweep(model, prompts, max_new_tokens=max_new,
                              batch_sizes=batch_sizes)
    print(f"decode throughput on {name} "
          f"({num} prompts x {max_new} new tokens)")
    print(format_table(["config", "batch", "prefill tok/s", "decode tok/s",
                        "speedup"], report.rows()))


if __name__ == "__main__":
    main()
