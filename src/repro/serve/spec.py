"""Speculative decoding: cheap draft proposals, batched target verify.

Batch-1–4 decode is latency-bound: every emitted token costs one full
single-token target forward, and none of the serving machinery (batching,
prefix sharing, block-resident reads, chunked prefill) can shorten that
dependency chain.  Speculative decoding does: a small *draft* model
autoregressively proposes ``k`` tokens against its own private cache,
and the target model verifies all ``k + 1`` positions in **one**
multi-token forward over the existing block-resident prefill read path —
one target forward now emits ``accepted + 1`` tokens instead of one.

This module owns the draft side and the acceptance math; the engine
(:meth:`repro.serve.engine.GenerationEngine._spec_decode_step`) owns the
verify forward, commit/rollback against the target cache, and event
emission.  The split keeps every target-cache invariant in one place
while the draft remains a self-contained model+cache pipeline:

* :class:`SpeculativeConfig` — the user-facing knob (draft model, ``k``,
  acceptance policy, draft cache backend).
* :class:`SpeculativeDecoder` — per-row draft state: a private draft KV
  cache (dense rectangle by default, FP32 paged optional — never
  quantized, the draft is supposed to be cheap *and* exact), per-row
  drafted-extent counters, and per-request draft RNG streams.

Determinism: draft proposals for non-greedy requests are sampled from a
*separate* per-request RNG stream (derived from ``params.seed`` with a
fixed salt), never from the request's sampling stream.  Under the
default ``"exact"`` policy the emitted tokens are drawn from the target
logits with the request's own RNG — one draw per emitted token, in
stream order — so the emitted stream is a pure function of the target
logits and ``params.seed``, and speculative sampled output equals
target-only sampled output token for token whatever the draft proposes.
The ``"leftover"`` policy instead applies the standard
accept-with-``min(1, p/q)`` + residual-distribution correction
(Leviathan et al.): it preserves the target distribution exactly but
consumes RNG draws on a different schedule, so its streams are
reproducible (same seed, same stream) yet not token-identical to
target-only runs.

The draft cache never rolls back: after a verify the drafted extent is
clamped to the committed prefix (``commit``), stale positions beyond it
are masked by the next catch-up's causal mask and overwritten in place,
and ``drop_rows`` (retire/cancel/preempt) frees the row outright — on a
paged draft cache that returns real pool blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.kv_cache import KVCache
from repro.nn.model import TransformerLM
from repro.nn.paged_kv_cache import PagedKVCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.serve.engine import GenerationEngine

#: Acceptance policies: ``"exact"`` re-samples every position from the
#: target (greedy rows: argmax prefix match; sampled rows: the request's
#: own RNG stream, draw-for-draw identical to target-only decode);
#: ``"leftover"`` is the standard speculative-sampling correction.
SPEC_POLICIES = ("exact", "leftover")

#: Draft cache backends.  The draft stays full precision by design —
#: quantizing the *draft* would lower acceptance to save memory nobody
#: is short of (the draft model is the small one).
DRAFT_KV_CACHE_MODES = ("dense", "paged")

#: Salt mixed into ``params.seed`` for the draft-proposal RNG stream, so
#: draft draws can never collide with (or perturb) the request's own
#: sampling stream.
_DRAFT_SEED_SALT = 0x5BEC


@dataclass(frozen=True)
class SpeculativeConfig:
    """Speculative-decoding knobs for :class:`GenerationEngine`.

    Parameters
    ----------
    draft_model:
        The proposal model.  Must share the target's vocabulary; should
        be much cheaper per forward (``llama-sim-3b`` drafting for
        ``llama-sim-13b`` is the intended pairing).
    k:
        Tokens drafted per decode step.  Each step then emits between 1
        and ``k + 1`` tokens per row; larger ``k`` amortises the target
        forward further but wastes draft work once the acceptance run
        length is exceeded.
    policy:
        ``"exact"`` (default): emitted tokens are the target's own
        choices at every position — greedy output is token-identical to
        target-only decode, sampled output is draw-for-draw identical.
        ``"leftover"``: classic speculative sampling (accept draft token
        ``d`` with probability ``min(1, p(d)/q(d))``, else sample the
        normalised residual ``max(0, p - q)``); target-distribution
        exact, but the RNG consumption schedule differs from
        target-only decode.
    draft_kv_cache:
        ``"dense"`` (default) or ``"paged"`` — the draft's private FP32
        cache backend.
    """

    draft_model: TransformerLM
    k: int = 4
    policy: str = "exact"
    draft_kv_cache: str = "dense"

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1 (tokens drafted per step)")
        if self.policy not in SPEC_POLICIES:
            raise ValueError(f"policy must be one of {SPEC_POLICIES}, "
                             f"got {self.policy!r}")
        if self.draft_kv_cache not in DRAFT_KV_CACHE_MODES:
            raise ValueError(
                f"draft_kv_cache must be one of {DRAFT_KV_CACHE_MODES}, "
                f"got {self.draft_kv_cache!r}")

    def validate_target(self, target: TransformerLM) -> None:
        """Reject draft/target pairs that cannot verify each other."""
        draft_vocab = self.draft_model.config.vocab_size
        target_vocab = target.config.vocab_size
        if draft_vocab != target_vocab:
            raise ValueError(
                "draft and target must share a vocabulary: draft has "
                f"{draft_vocab} tokens, target has {target_vocab}")


def sample_from_probs(probs: np.ndarray, rng: np.random.Generator) -> int:
    """Invert the CDF of one probability vector at one RNG draw.

    The scalar form of the engine's vectorized masked-CDF inversion:
    zero-mass tokens can never be selected (their cumsum is flat) and
    float rounding near 1.0 clamps onto the last kept token.
    """
    draw = rng.random()
    sampled = int((np.cumsum(probs) <= draw).sum())
    last_kept = len(probs) - 1 - int(np.argmax(probs[::-1] > 0))
    return min(sampled, last_kept)


def leftover_accept(target_probs: np.ndarray, draft_probs: np.ndarray,
                    token: int, rng: np.random.Generator
                    ) -> tuple[int, bool]:
    """Speculative-sampling acceptance for one drafted token.

    Accept ``token`` with probability ``min(1, p(token)/q(token))``;
    on rejection, emit a sample from the normalised leftover
    distribution ``max(0, p - q)`` (Leviathan et al.) — the emitted
    marginal is exactly the target distribution ``p``.  Returns
    ``(emitted_token, accepted)``; both branches consume exactly one
    draw from ``rng`` (the rejection branch draws once more for the
    residual sample).
    """
    p_d = float(target_probs[token])
    q_d = float(draft_probs[token])
    # u < min(1, p/q)  <=>  u * q < p  (q > 0 always: the draft sampled
    # this token, so it carried mass; guard anyway).
    if q_d > 0.0 and rng.random() * q_d < p_d:
        return int(token), True
    leftover = np.maximum(target_probs - draft_probs, 0.0)
    mass = float(leftover.sum())
    if mass <= 0.0:
        # p <= q everywhere means p == q: the residual is empty and any
        # target sample is already exact.
        return sample_from_probs(target_probs, rng), False
    return sample_from_probs(leftover / mass, rng), False


class SpeculativeDecoder:
    """Draft-side state of a speculative serving session.

    One instance per engine, sized to the engine's slot pool: row ``r``
    of the draft cache mirrors engine row ``r``.  ``_len[r]`` is the
    drafted extent — how many of the request's tokens the draft model
    has processed into its cache; it trails the engine's committed
    length and is caught up with one ragged span forward at the start of
    every :meth:`propose`.
    """

    def __init__(self, engine: "GenerationEngine",
                 config: SpeculativeConfig):
        self._engine = engine
        self.config = config
        self.draft = config.draft_model
        batch = engine.max_batch_size
        self._cache: KVCache | PagedKVCache | None = None
        self._len = np.zeros(batch, dtype=np.int64)
        self._req = np.full(batch, -1, dtype=np.int64)
        self._rng: list[np.random.Generator | None] = [None] * batch

    @property
    def cache(self) -> KVCache | PagedKVCache | None:
        """The draft's private KV cache (None until the first propose)."""
        return self._cache

    def _make_cache(self) -> KVCache | PagedKVCache:
        engine = self._engine
        num_layers = self.draft.config.num_layers
        batch = engine.max_batch_size
        if self.config.draft_kv_cache == "dense":
            return KVCache(num_layers, batch=batch,
                           initial_capacity=engine.initial_capacity)
        initial_blocks = batch * max(
            1, engine.initial_capacity // engine.block_size)
        return PagedKVCache(num_layers, batch=batch,
                            block_size=engine.block_size,
                            initial_blocks=initial_blocks,
                            block_decode=True)

    def drop_rows(self, rows: np.ndarray) -> None:
        """Forget a row's draft state (retire/cancel/preempt).

        On a paged draft cache this returns the row's blocks to the
        draft pool immediately; the RNG is discarded too, so a restored
        request re-derives its draft stream from ``params.seed`` (draft
        draws only steer *proposals*, never emitted tokens, so this
        cannot perturb the request's output stream).
        """
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        self._len[rows] = 0
        self._req[rows] = -1
        for row in rows:
            self._rng[int(row)] = None
        if self._cache is not None:
            self._cache.free_rows(rows)
            self._cache.trim(int(self._len.max()))

    def propose(self, rows: np.ndarray, slots: list, lengths: np.ndarray,
                k_eff: np.ndarray):
        """Draft up to ``k_eff[j]`` proposal tokens for each row.

        ``rows`` are engine cache rows, ``slots`` the matching engine
        slots, ``lengths`` each row's committed context length ``L``
        (so the row's pending token sits at token index ``L``), and
        ``k_eff`` the per-row draft budget (all ``>= 1``).

        Returns ``(proposals, qvecs, draft_tokens)``: per-row proposal
        arrays of ``k_eff[j]`` tokens, per-row ``(k_eff[j], vocab)``
        proposal-probability stacks (``None`` unless the policy is
        ``"leftover"``), and the total number of token positions the
        draft model forwarded (for accelerator-projection accounting).
        """
        if self._cache is None:
            self._cache = self._make_cache()
        cache = self._cache
        config = self.draft.config
        rows = np.asarray(rows, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        k_eff = np.asarray(k_eff, dtype=np.int64)
        n = len(rows)
        params = [slot.request.params for slot in slots]
        rngs: list[np.random.Generator] = []
        for j in range(n):
            row = int(rows[j])
            rid = slots[j].request.request_id
            if self._req[row] != rid or self._rng[row] is None:
                # A fresh (or restored) request in this row: start its
                # draft stream and cache from scratch.
                self._req[row] = rid
                self._len[row] = 0
                self._rng[row] = np.random.default_rng(
                    (_DRAFT_SEED_SALT, params[j].seed))
            rngs.append(self._rng[row])

        # --- catch-up: one ragged span forward over every token the ---
        # --- draft has not yet seen (through the pending token at L) ---
        starts = self._len[rows].copy()
        widths = lengths + 1 - starts            # >= 1: _len trails L
        width = int(widths.max())
        toks = np.zeros((n, width), dtype=np.int64)
        positions = np.zeros((n, width), dtype=np.int64)
        max_pos = config.max_seq_len - 1
        offsets = np.arange(width)
        for j in range(n):
            s, w = int(starts[j]), int(widths[j])
            full = np.concatenate(
                [slots[j].request.prompt,
                 np.asarray(slots[j].generated, dtype=np.int64)])
            toks[j, :w] = full[s:s + w]
            positions[j] = np.minimum(s + offsets, max_pos)
        total = max(int((starts + widths).max()), cache.seq_len)
        query_pos = starts[:, None] + offsets[None, :]
        allow = np.arange(total)[None, None, :] <= query_pos[:, :, None]
        kv_mask = np.where(allow, 0.0, -np.inf).astype(np.float32)[:, None]
        out = self.draft(toks, cache=cache, cache_rows=rows,
                         cache_lens=widths, cache_starts=starts,
                         positions=positions, kv_mask=kv_mask,
                         logits_positions=widths - 1)
        logits_now = np.array(out.data[:, 0])     # (n, vocab)
        draft_tokens = int(widths.sum())

        # --- autoregressive proposals: sample d_{i+1}, forward it as a
        # single-token decode to get the logits for d_{i+2} (the last
        # proposal is never forwarded — the target's verify supersedes
        # the draft's opinion of what follows it) ---
        need_probs = self.config.policy == "leftover"
        proposals: list[list[int]] = [[] for _ in range(n)]
        qvecs: list[list[np.ndarray]] | None = \
            [[] for _ in range(n)] if need_probs else None
        for i in range(int(k_eff.max())):
            sub = np.flatnonzero(k_eff > i)
            res = self._engine._sample_with(
                logits_now[sub], [params[j] for j in sub],
                [rngs[j] for j in sub], return_probs=need_probs)
            drafted, probs = res if need_probs else (res, None)
            for jj, j in enumerate(sub):
                proposals[j].append(int(drafted[jj]))
                if need_probs:
                    qvecs[j].append(probs[jj])
            nxt = np.flatnonzero(k_eff > i + 1)
            if len(nxt) == 0:
                break
            pos = lengths[nxt] + i + 1
            tok = np.array([proposals[j][-1] for j in nxt], dtype=np.int64)
            total = max(cache.seq_len, int(pos.max()) + 1)
            mask = np.where(
                np.arange(total)[None, :] < (pos + 1)[:, None],
                0.0, -np.inf).astype(np.float32)[:, None, None, :]
            out = self.draft(tok[:, None], cache=cache,
                             positions=pos[:, None], kv_mask=mask,
                             decode_rows=rows[nxt])
            draft_tokens += len(nxt)
            logits_now[nxt] = out.data[:, -1]

        self._len[rows] = lengths + k_eff
        props = [np.asarray(p, dtype=np.int64) for p in proposals]
        qout = None
        if need_probs:
            qout = [np.stack(q) if q else None for q in qvecs]
        return props, qout, draft_tokens

    def commit(self, rows: np.ndarray, committed: np.ndarray) -> None:
        """Clamp drafted extents to the verify's committed lengths.

        A draft position is valid while the token it caches is still on
        the request's committed path — accepted proposals stay, the
        first rejected position and everything after it are clamped off.
        On a paged draft cache the clamp releases whole uncovered blocks
        via :meth:`PagedKVCache.truncate_rows`; stale tail positions
        inside kept storage are masked by the next catch-up's causal
        mask and overwritten in place.
        """
        if self._cache is None:
            return
        rows = np.asarray(rows, dtype=np.int64)
        new_lens = np.minimum(self._len[rows],
                              np.asarray(committed, dtype=np.int64))
        self._cache.truncate_rows(rows, new_lens)
        self._len[rows] = new_lens
        self._cache.trim(int(self._len.max()))
