"""Adam optimizer, cosine LR schedule, gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Adam:
    """AdamW: Adam with bias correction and *decoupled* weight decay.

    Decoupling matters here: coupled L2 is normalised away by Adam's
    per-parameter scaling and fails to control weight magnitudes, which
    this reproduction relies on (weight decay tames the scattered extreme
    weights adaptive optimizers otherwise grow).
    """

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.99), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        bc1 = 1.0 - self.beta1 ** self.step_count
        bc2 = 1.0 - self.beta2 ** self.step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class CosineSchedule:
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr = base_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, max(0.0, progress))
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
