"""Deterministic training loop for the simulation model zoo."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import functional as F, no_grad
from repro.data.loader import BatchLoader
from repro.nn.model import TransformerLM
from repro.train.optim import Adam, CosineSchedule, clip_grad_norm


@dataclass
class TrainConfig:
    """Hyper-parameters for one training run."""

    steps: int = 500
    batch_size: int = 16
    seq_len: int = 128
    lr: float = 3e-3
    warmup_steps: int = 50
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    log_every: int = 100
    seed: int = 0


class Trainer:
    """Trains a :class:`TransformerLM` on a token stream."""

    def __init__(self, model: TransformerLM, train_stream: np.ndarray,
                 config: TrainConfig, val_stream: np.ndarray | None = None,
                 verbose: bool = False):
        self.model = model
        self.config = config
        self.verbose = verbose
        self.loader = BatchLoader(train_stream, config.batch_size,
                                  config.seq_len, seed=config.seed)
        self.val_stream = val_stream
        self.optimizer = Adam(model.parameters(), lr=config.lr,
                              weight_decay=config.weight_decay)
        self.schedule = CosineSchedule(config.lr, config.warmup_steps,
                                       config.steps, min_lr=config.lr * 0.1)
        self.history: list[dict] = []

    def _loss(self, inputs: np.ndarray, targets: np.ndarray):
        vocab = self.model.config.vocab_size
        logits = self.model(inputs)
        return F.cross_entropy(logits.reshape(-1, vocab), targets.reshape(-1))

    def train(self) -> dict:
        """Run the configured number of steps; return summary metrics."""
        batches = self.loader.forever()
        for step in range(self.config.steps):
            inputs, targets = next(batches)
            self.optimizer.lr = self.schedule.lr_at(step)
            self.optimizer.zero_grad()
            loss = self._loss(inputs, targets)
            loss.backward()
            clip_grad_norm(self.optimizer.params, self.config.grad_clip)
            self.optimizer.step()
            if step % self.config.log_every == 0 or step == self.config.steps - 1:
                record = {"step": step, "loss": loss.item(),
                          "lr": self.optimizer.lr}
                self.history.append(record)
                if self.verbose:
                    print(f"step {step:5d}  loss {record['loss']:.4f}  "
                          f"lr {record['lr']:.2e}")
        summary = {"final_loss": self.history[-1]["loss"]}
        if self.val_stream is not None:
            summary["val_loss"] = self.evaluate(self.val_stream)
        return summary

    def evaluate(self, stream: np.ndarray, max_batches: int = 8) -> float:
        """Mean cross-entropy on held-out data."""
        loader = BatchLoader(stream, self.config.batch_size,
                             self.config.seq_len, seed=self.config.seed + 1)
        losses = []
        with no_grad():
            for i, (inputs, targets) in enumerate(loader.epoch(0)):
                if i >= max_batches:
                    break
                losses.append(self._loss(inputs, targets).item())
        return float(np.mean(losses))
