"""Training utilities: optimizers, schedules, and a deterministic trainer."""

from repro.train.optim import Adam, CosineSchedule, clip_grad_norm
from repro.train.trainer import Trainer, TrainConfig

__all__ = ["Adam", "CosineSchedule", "clip_grad_norm", "Trainer", "TrainConfig"]
