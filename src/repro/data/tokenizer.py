"""Word-level tokenizer with a fixed special-token header."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

import numpy as np

PAD, UNK, BOS, EOS = "<pad>", "<unk>", "<bos>", "<eos>"
SPECIALS = (PAD, UNK, BOS, EOS)


class WordTokenizer:
    """Maps whitespace tokens to integer ids.

    Built from one or more corpora; the most frequent ``vocab_size - 4``
    words are kept, everything else maps to ``<unk>``.
    """

    def __init__(self, vocab: list[str]):
        if list(vocab[:4]) != list(SPECIALS):
            raise ValueError("vocabulary must start with the special tokens")
        self.vocab = list(vocab)
        self._ids = {word: i for i, word in enumerate(self.vocab)}

    @classmethod
    def train(cls, corpora: Iterable[list[str]], vocab_size: int) -> "WordTokenizer":
        counts: Counter[str] = Counter()
        for tokens in corpora:
            counts.update(tokens)
        budget = vocab_size - len(SPECIALS)
        # Sort by (-count, word) for determinism across runs.
        kept = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:budget]
        return cls(list(SPECIALS) + [word for word, _ in kept])

    def __len__(self) -> int:
        return len(self.vocab)

    @property
    def unk_id(self) -> int:
        return self._ids[UNK]

    def encode(self, tokens: list[str]) -> np.ndarray:
        unk = self.unk_id
        return np.asarray([self._ids.get(t, unk) for t in tokens], dtype=np.int64)

    def decode(self, ids: Iterable[int]) -> list[str]:
        return [self.vocab[int(i)] for i in ids]

    def coverage(self, tokens: list[str]) -> float:
        """Fraction of tokens that are in-vocabulary."""
        if not tokens:
            return 1.0
        known = sum(1 for t in tokens if t in self._ids)
        return known / len(tokens)
