"""Token-stream batching utilities for training and evaluation."""

from __future__ import annotations

import numpy as np


def token_stream(tokens: np.ndarray) -> np.ndarray:
    """Validate and return a 1-D int64 token stream."""
    stream = np.asarray(tokens, dtype=np.int64).reshape(-1)
    if stream.size == 0:
        raise ValueError("empty token stream")
    return stream


def split_stream(stream: np.ndarray, val_fraction: float = 0.1) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic train/validation split of a token stream."""
    stream = token_stream(stream)
    cut = int(len(stream) * (1.0 - val_fraction))
    if cut == 0 or cut == len(stream):
        raise ValueError("val_fraction leaves an empty split")
    return stream[:cut], stream[cut:]


class BatchLoader:
    """Yields ``(inputs, targets)`` windows from a token stream.

    Windows are length ``seq_len`` with next-token targets; window start
    offsets are shuffled deterministically per epoch.
    """

    def __init__(self, stream: np.ndarray, batch_size: int, seq_len: int,
                 seed: int = 0):
        self.stream = token_stream(stream)
        if len(self.stream) < seq_len + 1:
            raise ValueError(
                f"stream of {len(self.stream)} tokens too short for seq_len={seq_len}")
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.seed = seed
        self._starts = np.arange(0, len(self.stream) - seq_len - 1, seq_len)

    @property
    def batches_per_epoch(self) -> int:
        return max(1, len(self._starts) // self.batch_size)

    def epoch(self, epoch_index: int):
        """Iterate one epoch of shuffled ``(inputs, targets)`` batches."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, epoch_index]))
        order = rng.permutation(self._starts)
        for i in range(self.batches_per_epoch):
            starts = order[i * self.batch_size:(i + 1) * self.batch_size]
            if len(starts) == 0:
                return
            idx = starts[:, None] + np.arange(self.seq_len + 1)[None, :]
            window = self.stream[idx]
            yield window[:, :-1], window[:, 1:]

    def forever(self):
        """Endless batch iterator cycling through reshuffled epochs."""
        epoch_index = 0
        while True:
            yield from self.epoch(epoch_index)
            epoch_index += 1
