"""Deterministic synthetic corpora standing in for WikiText2 and C4.

Both generators emit whitespace-separated lowercase tokens (punctuation is
its own token, WikiText-style).  They are deterministic in ``(name, seed,
num_sentences)`` so experiments are exactly repeatable.
"""

from __future__ import annotations

import numpy as np

from repro.data import vocab as V

CORPUS_NAMES = ("wikitext-sim", "c4-sim")


def _wiki_sentence(rng: np.random.Generator) -> list[str]:
    """One encyclopedic sentence from a small template grammar."""
    kind = rng.integers(4)
    adj = V.zipf_choice(rng, V.ADJECTIVES, 2)
    noun = V.zipf_choice(rng, V.NOUNS, 3)
    prep = V.PREPOSITIONS[rng.integers(len(V.PREPOSITIONS))]
    year = str(int(1500 + rng.integers(520)))
    name = V.proper_noun(rng)
    if kind == 0:
        verb = V.zipf_choice(rng, V.VERBS_PRESENT, 1)[0]
        return [name, verb, "a", adj[0], noun[0], prep, "the",
                adj[1], noun[1], "of", V.proper_noun(rng), "."]
    if kind == 1:
        verb = V.zipf_choice(rng, V.VERBS_PAST, 1)[0]
        return ["the", noun[0], "of", name, verb,
                V.ADVERBS[rng.integers(len(V.ADVERBS))], "in", year, "."]
    if kind == 2:
        verb = V.zipf_choice(rng, V.VERBS_PAST, 1)[0]
        return ["in", year, ",", "the", adj[0], noun[0], verb, "and",
                "the", noun[1], verb2(rng), prep, "the", noun[2], "."]
    verb = V.zipf_choice(rng, V.VERBS_PRESENT, 1)[0]
    return ["it", verb, "the", adj[0], noun[0], ",",
            "which", V.zipf_choice(rng, V.VERBS_PAST, 1)[0],
            prep, "the", noun[1], "."]


def verb2(rng: np.random.Generator) -> str:
    return V.zipf_choice(rng, V.VERBS_PAST, 1)[0]


def _wiki_heading(rng: np.random.Generator) -> list[str]:
    noun = V.zipf_choice(rng, V.NOUNS, 1)[0]
    return ["=", "=", noun, "=", "="]


def wikitext_sim(num_sentences: int, seed: int = 0) -> list[str]:
    """Clean encyclopedic token stream (WikiText2 stand-in)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x11]))
    tokens: list[str] = []
    for i in range(num_sentences):
        if i % 24 == 0:
            tokens.extend(_wiki_heading(rng))
        tokens.extend(_wiki_sentence(rng))
    return tokens


def _c4_sentence(rng: np.random.Generator) -> list[str]:
    """One noisy web-style sentence."""
    kind = rng.integers(5)
    noun = V.zipf_choice(rng, V.NOUNS, 2)
    web = V.zipf_choice(rng, V.WEB_PHRASES, 3, exponent=0.9)
    adj = V.zipf_choice(rng, V.ADJECTIVES, 1)[0]
    if kind == 0:
        return [web[0], web[1], "to", web[2], "our", noun[0], "!"]
    if kind == 1:
        return ["posted", "by", V.proper_noun(rng), "on",
                str(int(1 + rng.integers(12))), "/",
                str(int(1 + rng.integers(28))), ":",
                "great", noun[0], ",", "really", adj, "."]
    if kind == 2:
        verb = V.zipf_choice(rng, V.VERBS_PRESENT, 1)[0]
        return ["our", adj, noun[0], verb, V.WEB_PHRASES[rng.integers(len(V.WEB_PHRASES))],
                "for", "all", noun[1], "."]
    if kind == 3:
        return ["www", ".", V.proper_noun(rng), ".", "com", "/",
                web[0], "?", web[1], "=", str(int(rng.integers(100))), "."]
    verb = V.zipf_choice(rng, V.VERBS_PAST, 1)[0]
    return ["i", verb, "the", noun[0], "and", "it", "was",
            adj, ",", web[0], web[1], "."]


def c4_sim(num_sentences: int, seed: int = 0) -> list[str]:
    """Noisy web-crawl token stream (C4 stand-in)."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xC4]))
    tokens: list[str] = []
    for _ in range(num_sentences):
        tokens.extend(_c4_sentence(rng))
    return tokens


def generate_corpus(name: str, num_sentences: int, seed: int = 0) -> list[str]:
    """Generate a corpus by name (``wikitext-sim`` or ``c4-sim``)."""
    if name == "wikitext-sim":
        return wikitext_sim(num_sentences, seed=seed)
    if name == "c4-sim":
        return c4_sim(num_sentences, seed=seed)
    raise ValueError(f"unknown corpus {name!r}; expected one of {CORPUS_NAMES}")
