"""Synthetic evaluation corpora and tokenization.

The paper evaluates perplexity on WikiText2 and C4.  Offline, we generate
two deterministic English-like corpora with deliberately different
statistics (see DESIGN.md, substitution table):

* ``wikitext-sim`` — clean, encyclopedic, templated prose (low entropy);
* ``c4-sim`` — noisy web-crawl style text with boilerplate, URLs and
  fragments (higher entropy).
"""

from repro.data.corpus import generate_corpus, CORPUS_NAMES, wikitext_sim, c4_sim
from repro.data.tokenizer import WordTokenizer
from repro.data.loader import BatchLoader, token_stream, split_stream

__all__ = [
    "generate_corpus", "CORPUS_NAMES", "wikitext_sim", "c4_sim",
    "WordTokenizer", "BatchLoader", "token_stream", "split_stream",
]
