"""Word inventories for the synthetic corpus generators.

Words are grouped by grammatical role so the template grammars in
:mod:`repro.data.corpus` can produce plausible English-like sentences.
Within each group, generators sample with a Zipf-like distribution so the
resulting token frequencies mimic natural-language skew.
"""

from __future__ import annotations

import numpy as np

DETERMINERS = ["the", "a", "this", "that", "its", "their", "each", "every"]

ADJECTIVES = [
    "small", "large", "ancient", "modern", "northern", "southern", "eastern",
    "western", "famous", "notable", "major", "minor", "early", "late",
    "central", "local", "national", "historic", "industrial", "rural",
    "coastal", "remote", "popular", "traditional", "primary", "secondary",
    "rapid", "gradual", "significant", "extensive", "narrow", "broad",
]

NOUNS = [
    "city", "river", "mountain", "village", "region", "district", "station",
    "bridge", "church", "castle", "school", "university", "museum", "library",
    "company", "factory", "railway", "road", "harbor", "island", "forest",
    "valley", "lake", "battle", "treaty", "empire", "kingdom", "dynasty",
    "album", "novel", "film", "series", "festival", "team", "club", "league",
    "species", "family", "genus", "population", "economy", "industry",
    "government", "council", "parliament", "election", "war", "revolution",
    "century", "decade", "system", "network", "project", "program",
]

VERBS_PAST = [
    "was", "became", "remained", "served", "appeared", "developed",
    "expanded", "declined", "emerged", "operated", "opened", "closed",
    "moved", "returned", "won", "lost", "founded", "established",
    "constructed", "completed", "destroyed", "restored", "recorded",
    "released", "published", "described", "discovered", "introduced",
    "produced", "received", "gained", "reached", "covered", "included",
]

VERBS_PRESENT = [
    "is", "remains", "serves", "includes", "covers", "contains", "features",
    "lies", "stands", "runs", "flows", "connects", "borders", "hosts",
    "produces", "supports", "attracts", "provides", "operates", "offers",
]

ADVERBS = [
    "quickly", "slowly", "eventually", "originally", "formally", "largely",
    "mostly", "partly", "notably", "briefly", "widely", "locally",
    "officially", "primarily", "roughly", "approximately",
]

PREPOSITIONS = ["in", "on", "near", "along", "across", "within", "around",
                "between", "through", "under", "over", "beside"]

PROPER_STEMS = [
    "avon", "berg", "cester", "dale", "field", "ford", "gate", "ham",
    "holm", "hurst", "land", "mere", "mouth", "ness", "port", "shire",
    "stead", "stoke", "ton", "vale", "wick", "worth", "bury", "by",
]

PROPER_PREFIXES = [
    "ald", "ash", "black", "bright", "cold", "deep", "east", "fair",
    "glen", "green", "high", "kings", "long", "mill", "new", "north",
    "oak", "old", "red", "rock", "south", "spring", "stone", "west",
    "white", "wood",
]

WEB_PHRASES = [
    "click", "here", "subscribe", "newsletter", "free", "shipping",
    "login", "account", "password", "cookie", "policy", "privacy",
    "terms", "conditions", "share", "comment", "reply", "posted",
    "update", "review", "rating", "price", "sale", "offer", "deal",
    "download", "install", "version", "browser", "mobile", "app",
]

FUNCTION_WORDS = ["and", "or", "but", "of", "to", "for", "with", "by",
                  "as", "at", "from", "which", "who", "it", "also", "not"]


def zipf_choice(rng: np.random.Generator, words: list[str], size: int,
                exponent: float = 1.1) -> list[str]:
    """Sample ``size`` words with Zipf-like rank frequencies."""
    ranks = np.arange(1, len(words) + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    idx = rng.choice(len(words), size=size, p=probs)
    return [words[i] for i in idx]


def proper_noun(rng: np.random.Generator) -> str:
    """Compose a synthetic place/person name (e.g. ``stoneham``)."""
    return (PROPER_PREFIXES[rng.integers(len(PROPER_PREFIXES))]
            + PROPER_STEMS[rng.integers(len(PROPER_STEMS))])
