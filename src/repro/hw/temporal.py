"""Temporal (unary) coding of weight magnitudes (paper Sec. IV-C).

Temporal coding is a lossless encoding where the number of ones in a
bitstream equals the encoded value: 2 -> ``11``, 1 -> ``01`` (Fig. 7).
The hardware encoder holds the value, compares it against a running
counter and emits one bit per cycle; a termination signal from the
control unit stops generation once every encoder in the group has
drained — that early termination is why all-2-bit weight groups cost a
single cycle instead of three.
"""

from __future__ import annotations

import numpy as np

#: Largest magnitude of a 3-bit sign-magnitude weight.
MAX_MAGNITUDE = 3


def encode_magnitudes(magnitudes: np.ndarray,
                      num_cycles: int | None = None) -> np.ndarray:
    """Unary-encode ``magnitudes`` into a ``(cycles, n)`` bit matrix.

    Cycle ``t`` carries ``1`` for every element whose magnitude exceeds
    ``t`` — exactly the comparator-vs-counter behaviour of the hardware
    encoder.  ``num_cycles`` defaults to the early-termination length
    ``max(magnitudes)``.
    """
    mags = np.asarray(magnitudes, dtype=np.int64)
    if mags.size and (mags.min() < 0 or mags.max() > MAX_MAGNITUDE):
        raise ValueError(f"magnitudes must be in [0, {MAX_MAGNITUDE}]")
    if num_cycles is None:
        num_cycles = int(mags.max()) if mags.size else 0
    counters = np.arange(num_cycles)[:, None]
    return (mags[None, :] > counters).astype(np.uint8)


def decode_bitstream(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_magnitudes` (popcount per column)."""
    return np.asarray(bits, dtype=np.int64).sum(axis=0)


class TemporalEncoder:
    """Cycle-accurate model of one hardware temporal encoder.

    Mirrors Fig. 5(c): a register holding the magnitude, a counter, and a
    comparator producing the output bit; ``stop`` models the control
    unit's termination signal.
    """

    def __init__(self, value: int):
        if not 0 <= value <= MAX_MAGNITUDE:
            raise ValueError(f"value {value} outside [0, {MAX_MAGNITUDE}]")
        self.value = int(value)
        self.counter = 0
        self.stopped = False

    def step(self) -> int:
        """Advance one cycle; return the emitted bit."""
        if self.stopped:
            return 0
        bit = 1 if self.value > self.counter else 0
        self.counter += 1
        return bit

    @property
    def exhausted(self) -> bool:
        """True once all ones have been emitted."""
        return self.counter >= self.value

    def stop(self) -> None:
        self.stopped = True
