"""Extract exact FineQ code magnitudes from a model.

The cycle/energy models accept per-GEMM ``(M, K)`` magnitude matrices for
exact temporal-cycle accounting (instead of the outlier-ratio estimate).
This module produces them by running the FineQ quantizer over a model's
quantization surface.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantizer import FineQQuantizer
from repro.nn.model import TransformerLM


def layer_code_magnitudes(weight: np.ndarray,
                          quantizer: FineQQuantizer | None = None) -> np.ndarray:
    """``|code|`` matrix with the same ``(out, in)`` orientation as the weight."""
    quantizer = quantizer or FineQQuantizer()
    _, artifacts = quantizer.quantize_with_artifacts(weight)
    codes = artifacts["codes"]           # (channels, clusters, 3)
    channels = codes.shape[0]
    flat = np.abs(codes).reshape(channels, -1)
    if artifacts["channel_axis"] == "input":
        flat = flat[:, :weight.shape[0]]  # strip cluster padding (out dim)
        return flat.T                     # back to (out, in)
    return flat[:, :weight.shape[1]]


def model_code_magnitudes(model: TransformerLM) -> dict[str, np.ndarray]:
    """Exact code magnitudes for every quantizable GEMM of ``model``.

    Keys match :func:`repro.hw.workloads.model_gemms` names.
    """
    quantizer = FineQQuantizer()
    result = {}
    for name, layer in model.quantizable_linears():
        result[name] = layer_code_magnitudes(layer.weight.data, quantizer)
    return result
