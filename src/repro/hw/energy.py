"""Workload energy model and the Fig. 9 energy-efficiency comparison.

Energy per workload combines:

* **core energy** — block power (from :class:`AreaPowerModel`, calibrated
  to Table III) integrated over the cycle count of the pipeline model;
* **SRAM energy** — on-chip buffer traffic (weights re-read per tile
  pass, activations per use);
* **DRAM energy** — off-chip traffic: FP16 activations both ways for both
  designs, FP16 weights for the baseline vs packed 2.33-bit weights (plus
  scales) for FineQ.

Efficiency is work per joule (MACs/J); Fig. 9 reports FineQ's efficiency
normalised to the baseline accelerator on the same workload.  The DRAM
energy-per-bit constant is the usual 45 nm-era planning number; with it,
the model lands in the paper's 1.76-1.82x band across the model zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.area_power import AreaPowerModel
from repro.hw.cycle_model import (PipelineConfig, simulate_gemm,
                                  FINEQ_BITS_PER_WEIGHT, FP16_BITS)
from repro.hw.workloads import GEMMShape, model_gemms
from repro.nn.model import ModelConfig


@dataclass
class WorkloadEnergy:
    """Energy breakdown of one workload on one design (microjoules)."""

    design: str
    core_uj: float = 0.0
    sram_uj: float = 0.0
    dram_uj: float = 0.0
    cycles: int = 0
    macs: int = 0

    @property
    def total_uj(self) -> float:
        return self.core_uj + self.sram_uj + self.dram_uj

    @property
    def macs_per_uj(self) -> float:
        return self.macs / self.total_uj if self.total_uj else 0.0


class EnergyModel:
    """Composable energy model for both accelerator designs."""

    def __init__(self, pipeline: PipelineConfig | None = None,
                 dram_pj_per_bit: float = 18.0,
                 sram_pj_per_byte: float = 1.2,
                 outlier_cluster_ratio: float = 0.15):
        self.pipeline = pipeline or PipelineConfig()
        self.dram_pj_per_bit = dram_pj_per_bit
        self.sram_pj_per_byte = sram_pj_per_byte
        self.outlier_cluster_ratio = outlier_cluster_ratio
        self.costs = AreaPowerModel(clock_mhz=self.pipeline.clock_mhz)

    # ------------------------------------------------------------------ #
    def _core_power_mw(self, design: str) -> float:
        if design == "baseline":
            return self.costs.systolic_array(self.pipeline.array_rows,
                                             self.pipeline.array_cols).power_mw
        array = self.costs.fineq_pe_array(self.pipeline.array_rows,
                                          self.pipeline.array_cols).power_mw
        decoder = self.costs.decoder_bank(self.pipeline.num_decoders).power_mw
        return array + decoder

    def gemm_energy(self, shape: GEMMShape, design: str,
                    code_magnitudes: np.ndarray | None = None
                    ) -> WorkloadEnergy:
        """Energy of one GEMM on one design."""
        report = simulate_gemm(shape, design, self.pipeline,
                               code_magnitudes=code_magnitudes,
                               outlier_cluster_ratio=self.outlier_cluster_ratio)
        cycles = report.total_cycles
        seconds = cycles / (self.pipeline.clock_mhz * 1e6)
        core_uj = self._core_power_mw(design) * 1e-3 * seconds * 1e6

        weight_bits = (FP16_BITS if design == "baseline"
                       else FINEQ_BITS_PER_WEIGHT)
        weight_bytes = shape.weight_count * weight_bits / 8
        activation_bytes = shape.k * shape.n * 2
        output_bytes = shape.m * shape.n * 2
        dram_bytes = weight_bytes + activation_bytes + output_bytes
        dram_uj = dram_bytes * 8 * self.dram_pj_per_bit * 1e-6

        # On-chip reuse: weights re-read once per N tile, activations once
        # per K tile (input-stationary).
        n_tiles = -(-shape.n // self.pipeline.array_cols)
        k_tiles = -(-shape.k // self.pipeline.array_rows)
        sram_bytes = weight_bytes * n_tiles + activation_bytes * k_tiles
        sram_uj = sram_bytes * self.sram_pj_per_byte * 1e-6

        return WorkloadEnergy(design=design, core_uj=core_uj,
                              sram_uj=sram_uj, dram_uj=dram_uj,
                              cycles=cycles, macs=shape.macs)

    def model_energy(self, config: ModelConfig, seq_len: int, design: str,
                     code_magnitudes: dict[str, np.ndarray] | None = None
                     ) -> WorkloadEnergy:
        """Energy of a full prefill forward pass of a model."""
        total = WorkloadEnergy(design=design)
        for shape in model_gemms(config, seq_len):
            mags = None
            if code_magnitudes is not None:
                mags = code_magnitudes.get(shape.name)
            part = self.gemm_energy(shape, design, code_magnitudes=mags)
            total.core_uj += part.core_uj
            total.sram_uj += part.sram_uj
            total.dram_uj += part.dram_uj
            total.cycles += part.cycles
            total.macs += part.macs
        return total


def energy_efficiency(config: ModelConfig, seq_len: int,
                      model: EnergyModel | None = None,
                      code_magnitudes: dict[str, np.ndarray] | None = None
                      ) -> float:
    """FineQ energy efficiency normalised to the baseline (Fig. 9)."""
    model = model or EnergyModel()
    baseline = model.model_energy(config, seq_len, "baseline")
    fineq = model.model_energy(config, seq_len, "fineq",
                               code_magnitudes=code_magnitudes)
    return fineq.macs_per_uj / baseline.macs_per_uj
