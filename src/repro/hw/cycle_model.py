"""Cycle-level model of the six-stage FineQ pipeline (paper Sec. IV-A).

Stages: (1) off-chip DMA in, (2) decode, (3) input preload, (4) matrix
multiply, (5) vector processing, (6) DMA write-back.  Tiles stream
through the pipeline, so total latency is the bottleneck stage's total
plus a fill term — the standard throughput model for tiled accelerators.

The baseline design shares every stage except decode (bypassed) and
consumes FP16 weights; the FineQ design consumes the packed 2.33-bit
format and spends 1-3 matmul cycles per weight row chunk (temporal
coding with early termination).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hw.array import TemporalCodingArray
from repro.hw.systolic import BaselineSystolicArray
from repro.hw.decoder import FineQStreamDecoder
from repro.hw.workloads import GEMMShape

#: Packed FineQ weight bits per weight (7 bytes / 24 weights).
FINEQ_BITS_PER_WEIGHT = 7.0 * 8.0 / 24.0
FP16_BITS = 16.0


@dataclass(frozen=True)
class PipelineConfig:
    """Shared machine parameters (both designs)."""

    array_rows: int = 64
    array_cols: int = 64
    num_decoders: int = 64
    # Sized so the MAC baseline is not DMA-starved: a 64-wide array
    # consumes 64 FP16 weights (128 B) per cycle.
    dma_bytes_per_cycle: float = 128.0
    vector_lanes: int = 64
    clock_mhz: float = 400.0


@dataclass
class CycleReport:
    """Per-stage cycle totals for one GEMM."""

    design: str
    stage_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def bottleneck(self) -> str:
        return max(self.stage_cycles, key=self.stage_cycles.get)

    @property
    def total_cycles(self) -> int:
        """Pipelined latency: bottleneck total + fill by the other stages."""
        peak = max(self.stage_cycles.values())
        fill = sum(self.stage_cycles.values()) - peak
        # Fill amortises over tiles; charge 1/8 of the residual stages.
        return int(peak + fill / 8)

    def runtime_us(self, clock_mhz: float) -> float:
        return self.total_cycles / clock_mhz


def _expected_row_chunk_cycles(outlier_cluster_ratio: float,
                               chunk_weights: int) -> float:
    """Expected temporal cycles for one row chunk without explicit codes.

    A chunk costs 3 cycles if it contains any 3-bit (outlier) cluster,
    else 1 cycle (all magnitudes <= 1).  Clusters are 3 weights.
    """
    clusters = max(1, chunk_weights // 3)
    p_no_outlier = (1.0 - outlier_cluster_ratio) ** clusters
    return 3.0 * (1.0 - p_no_outlier) + 1.0 * p_no_outlier


def simulate_gemm(shape: GEMMShape, design: str,
                  config: PipelineConfig | None = None,
                  code_magnitudes: np.ndarray | None = None,
                  outlier_cluster_ratio: float = 0.15) -> CycleReport:
    """Cycle totals for one GEMM on ``design`` ("baseline" or "fineq").

    For FineQ, ``code_magnitudes`` (an ``(M, K)`` |code| matrix from the
    quantizer artifacts) gives exact temporal cycle counts; without it an
    expectation based on ``outlier_cluster_ratio`` is used.
    """
    config = config or PipelineConfig()
    if design not in ("baseline", "fineq"):
        raise ValueError(f"unknown design {design!r}")

    k_tiles = -(-shape.k // config.array_rows)
    n_tiles = -(-shape.n // config.array_cols)
    activation_bytes = shape.k * shape.n * 2
    output_bytes = shape.m * shape.n * 2  # FP16 partial sums written back

    report = CycleReport(design=design)
    if design == "baseline":
        weight_bytes = shape.weight_count * FP16_BITS / 8
        matmul = BaselineSystolicArray(
            config.array_rows, config.array_cols).compute_cycles(
                shape.m, shape.k, shape.n)
        decode = 0
    else:
        weight_bytes = shape.weight_count * FINEQ_BITS_PER_WEIGHT / 8
        if code_magnitudes is not None:
            array = TemporalCodingArray(config.array_rows, config.array_cols)
            matmul = array.compute_cycles(code_magnitudes) * n_tiles
        else:
            per_chunk = _expected_row_chunk_cycles(
                outlier_cluster_ratio, min(config.array_rows, shape.k))
            matmul = int(round(shape.m * k_tiles * n_tiles * per_chunk))
        total_clusters = shape.m * (-(-shape.k // 3))
        decode = -(-total_clusters // config.num_decoders)

    report.stage_cycles = {
        "dma_in": int(np.ceil((weight_bytes + activation_bytes)
                              / config.dma_bytes_per_cycle)),
        "decode": decode,
        "preload": k_tiles * config.array_rows * n_tiles,
        "matmul": int(matmul),
        "vector": int(np.ceil(shape.m * shape.n / config.vector_lanes)),
        "writeback": int(np.ceil(output_bytes / config.dma_bytes_per_cycle)),
    }
    return report
