"""FineQ accelerator model (paper Sec. IV).

Functional components (bit-exact, cross-checked against integer matmul):

* :mod:`repro.hw.temporal` — unary/temporal encoder with early termination;
* :mod:`repro.hw.pe` — select-and-add PE and sign-aware ACC adder tree;
* :mod:`repro.hw.array` — the temporal-coding PE array (Fig. 7);
* :mod:`repro.hw.decoder` — cluster-format stream decoder (Fig. 6);
* :mod:`repro.hw.systolic` — baseline MAC systolic array.

Performance/cost models:

* :mod:`repro.hw.cycle_model` — six-stage-pipeline cycle-level simulator;
* :mod:`repro.hw.area_power` — 45 nm component model calibrated to the
  paper's Table III;
* :mod:`repro.hw.energy` — workload energy and the Fig. 9 efficiency
  comparison;
* :mod:`repro.hw.workloads` — GEMM traces of the simulation models.
"""

from repro.hw.temporal import TemporalEncoder, encode_magnitudes, decode_bitstream
from repro.hw.pe import ProcessingElement, AccumulatorUnit
from repro.hw.array import TemporalCodingArray, temporal_matmul
from repro.hw.decoder import FineQStreamDecoder
from repro.hw.systolic import BaselineSystolicArray
from repro.hw.cycle_model import PipelineConfig, CycleReport, simulate_gemm
from repro.hw.area_power import AreaPowerModel, TABLE3_REFERENCE
from repro.hw.energy import EnergyModel, WorkloadEnergy, energy_efficiency
from repro.hw.workloads import GEMMShape, model_gemms
from repro.hw.codes import layer_code_magnitudes, model_code_magnitudes

__all__ = [
    "TemporalEncoder", "encode_magnitudes", "decode_bitstream",
    "ProcessingElement", "AccumulatorUnit", "TemporalCodingArray",
    "temporal_matmul", "FineQStreamDecoder", "BaselineSystolicArray",
    "PipelineConfig", "CycleReport", "simulate_gemm", "AreaPowerModel",
    "TABLE3_REFERENCE", "EnergyModel", "WorkloadEnergy",
    "energy_efficiency", "GEMMShape", "model_gemms",
    "layer_code_magnitudes", "model_code_magnitudes",
]
