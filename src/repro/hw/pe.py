"""Processing element and accumulator unit (paper Fig. 5b/c).

The temporal-coding PE is radically simpler than a MAC: it stores one
activation value and, each cycle, outputs either that value or zero
depending on the incoming 1-bit weight stream (a mux, no multiplier).
The accumulator unit (ACC) applies the weight's sign and sums a whole PE
row through an adder tree — this is where the paper's power concentrates
(71.8 % of the PE-array power in Fig. 8).
"""

from __future__ import annotations

import numpy as np


class ProcessingElement:
    """One select-and-forward PE (cycle-accurate toy model)."""

    def __init__(self, activation: float = 0.0):
        self.activation = float(activation)

    def load(self, activation: float) -> None:
        self.activation = float(activation)

    def step(self, weight_bit: int) -> float:
        """Output the stored activation when the weight bit is set."""
        return self.activation if weight_bit else 0.0


class AccumulatorUnit:
    """Sign-aware adder tree + running accumulator for one output row."""

    def __init__(self):
        self.value = 0.0

    def step(self, pe_outputs: np.ndarray, sign: int) -> float:
        """Accumulate one cycle of gated PE outputs with the weight sign.

        ``sign`` is +1/-1 for the weight group feeding this cycle (the
        hardware folds per-weight signs in the tree; see
        :func:`repro.hw.array.temporal_matmul` for the vectorised exact
        model with per-weight signs).
        """
        self.value += sign * float(np.sum(pe_outputs))
        return self.value

    def reset(self) -> None:
        self.value = 0.0
