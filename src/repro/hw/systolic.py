"""Baseline MAC systolic array (the paper's comparison accelerator).

Same buffers, same input-stationary dataflow as the FineQ array, but each
PE is a 16-bit multiply-accumulate unit, so one weight row is consumed
per cycle regardless of weight values, and weights arrive from memory at
full FP16 width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SystolicRunResult:
    output: np.ndarray
    cycles: int
    macs: int


class BaselineSystolicArray:
    """Input-stationary ``rows x cols`` MAC array."""

    def __init__(self, rows: int = 64, cols: int = 64):
        self.rows = rows
        self.cols = cols

    def run(self, weights: np.ndarray, activations: np.ndarray
            ) -> SystolicRunResult:
        """Exact ``weights @ activations`` with cycle accounting."""
        w = np.asarray(weights, dtype=np.float64)
        x = np.asarray(activations, dtype=np.float64)
        if w.shape[1] != x.shape[0]:
            raise ValueError(f"shape mismatch: {w.shape} @ {x.shape}")
        output = w @ x
        cycles = self.compute_cycles(w.shape[0], w.shape[1], x.shape[1])
        macs = w.shape[0] * w.shape[1] * x.shape[1]
        return SystolicRunResult(output=output, cycles=cycles, macs=macs)

    def compute_cycles(self, m: int, k: int, n: int) -> int:
        """One cycle per weight row per (K, N) tile."""
        k_tiles = -(-k // self.rows)
        n_tiles = -(-n // self.cols)
        return m * k_tiles * n_tiles
