"""FineQ weight-stream decoder (paper Fig. 6).

Consumes the aligned packed format of :mod:`repro.core.packing` — one
index byte followed by six data bytes per group of eight clusters — and
emits, for every cluster, three 3-bit sign-magnitude weights: 2-bit
fields are zero-padded to 3 bits and the position zeroed by the encoding
scheme is materialised as 0, exactly like the MUX network in the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packing import (PackedMatrix, unpack_matrix,
                                CLUSTERS_PER_GROUP, GROUP_BYTES)


@dataclass
class DecodeResult:
    """Decoded weights plus decoder activity statistics."""

    codes: np.ndarray       # (channels, clusters, 3) signed ints in [-3, 3]
    schemes: np.ndarray     # (channels, clusters)
    dequantized: np.ndarray
    groups_decoded: int
    bytes_consumed: int


class FineQStreamDecoder:
    """Bank of ``num_decoders`` cluster decoders.

    Each decoder retires one cluster per cycle (a mux network has no
    iteration), so a bank of 64 sustains 192 weights/cycle — comfortably
    ahead of the 64 weights/cycle the PE array consumes, which is why the
    pipeline model treats decode as a non-bottleneck stage.
    """

    def __init__(self, num_decoders: int = 64):
        if num_decoders <= 0:
            raise ValueError("num_decoders must be positive")
        self.num_decoders = num_decoders

    def decode(self, packed: PackedMatrix) -> DecodeResult:
        codes, schemes, dequantized = unpack_matrix(packed)
        groups = packed.payload.shape[1] // GROUP_BYTES * packed.payload.shape[0]
        return DecodeResult(codes=codes, schemes=schemes,
                            dequantized=dequantized,
                            groups_decoded=groups,
                            bytes_consumed=int(packed.payload.size))

    def decode_cycles(self, packed: PackedMatrix) -> int:
        """Cycles to decode a packed matrix through the decoder bank."""
        rows = packed.payload.shape[0]
        groups_per_row = packed.payload.shape[1] // GROUP_BYTES
        total_clusters = rows * groups_per_row * CLUSTERS_PER_GROUP
        return -(-total_clusters // self.num_decoders)
