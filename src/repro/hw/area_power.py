"""45 nm area/power component model (paper Table III and Fig. 8).

The paper synthesises the design with Synopsys DC at 45 nm / 400 MHz and
reports block-level area and power.  We rebuild those numbers from a
component-level model — per-cell costs for a 16-bit MAC, a select-and-
forward PE, an adder-tree ACC slice, a temporal encoder, and a cluster
decoder — with the per-cell constants *calibrated* so the 64x64 reference
configuration reproduces Table III exactly (the standard arch-modelling
methodology of Accelergy/Timeloop: component costs from a reference
library, composition analytically).  Scaling to other array sizes is
then available to the ablation benches.

Reference points (Table III):

========================  ===========  ==========
block                     area (mm^2)  power (mW)
========================  ===========  ==========
systolic array 64x64      0.954        88.793
FineQ decoder x64         0.008        0.187
FineQ PE array 64x64      0.370        32.891
========================  ===========  ==========

Fig. 8 splits FineQ PE-array power: ACC 71.8 %, PE 25.9 %, encoder 2.3 %.
"""

from __future__ import annotations

from dataclasses import dataclass

TABLE3_REFERENCE = {
    "systolic_array": {"setup": "64x64 PEs", "area_mm2": 0.954,
                       "power_mw": 88.793},
    "fineq_decoder": {"setup": "64", "area_mm2": 0.008, "power_mw": 0.187},
    "fineq_pe_array": {"setup": "64x64 PEs", "area_mm2": 0.370,
                       "power_mw": 32.891},
}

FIG8_POWER_SPLIT = {"acc": 0.718, "pe_array": 0.259, "temporal_encoder": 0.023}

_REF_ROWS = _REF_COLS = 64


@dataclass(frozen=True)
class BlockCost:
    """Area/power of one hardware block."""

    area_mm2: float
    power_mw: float


class AreaPowerModel:
    """Component-level cost model at 45 nm, 400 MHz.

    ``clock_mhz`` scales dynamic power linearly relative to the 400 MHz
    calibration point (leakage is folded into the dynamic coefficient —
    adequate at this granularity).
    """

    def __init__(self, clock_mhz: float = 400.0):
        self.clock_mhz = clock_mhz
        ref = TABLE3_REFERENCE
        split = FIG8_POWER_SPLIT

        # --- baseline MAC array: per-PE cost dominates; the row
        # accumulators are modelled as 10% of the array budget.
        self._mac_cell_area = 0.9 * ref["systolic_array"]["area_mm2"] / (_REF_ROWS * _REF_COLS)
        self._mac_acc_row_area = 0.1 * ref["systolic_array"]["area_mm2"] / _REF_ROWS
        self._mac_cell_power = 0.9 * ref["systolic_array"]["power_mw"] / (_REF_ROWS * _REF_COLS)
        self._mac_acc_row_power = 0.1 * ref["systolic_array"]["power_mw"] / _REF_ROWS

        # --- FineQ array: split per Fig. 8 (power) and the same ratios
        # for area (adder trees dominate both).
        total_area = ref["fineq_pe_array"]["area_mm2"]
        total_power = ref["fineq_pe_array"]["power_mw"]
        self._pe_cell_area = split["pe_array"] * total_area / (_REF_ROWS * _REF_COLS)
        self._pe_cell_power = split["pe_array"] * total_power / (_REF_ROWS * _REF_COLS)
        # One ACC adder tree per row, cost ~ linear in row width.
        self._acc_row_area = split["acc"] * total_area / _REF_ROWS
        self._acc_row_power = split["acc"] * total_power / _REF_ROWS
        # One temporal encoder per column.
        self._te_area = split["temporal_encoder"] * total_area / _REF_COLS
        self._te_power = split["temporal_encoder"] * total_power / _REF_COLS

        self._decoder_area = ref["fineq_decoder"]["area_mm2"] / 64
        self._decoder_power = ref["fineq_decoder"]["power_mw"] / 64

    def _scale_power(self, power_mw: float) -> float:
        return power_mw * (self.clock_mhz / 400.0)

    # ------------------------------------------------------------------ #
    def systolic_array(self, rows: int = 64, cols: int = 64) -> BlockCost:
        """Baseline MAC systolic array."""
        area = rows * cols * self._mac_cell_area + rows * self._mac_acc_row_area
        power = rows * cols * self._mac_cell_power + rows * self._mac_acc_row_power
        return BlockCost(area_mm2=area, power_mw=self._scale_power(power))

    def fineq_pe_array(self, rows: int = 64, cols: int = 64) -> BlockCost:
        """Temporal-coding PE array (PEs + ACC trees + encoders)."""
        width_scale = cols / _REF_COLS  # adder tree grows with row width
        area = (rows * cols * self._pe_cell_area
                + rows * self._acc_row_area * width_scale
                + cols * self._te_area)
        power = (rows * cols * self._pe_cell_power
                 + rows * self._acc_row_power * width_scale
                 + cols * self._te_power)
        return BlockCost(area_mm2=area, power_mw=self._scale_power(power))

    def fineq_power_breakdown(self, rows: int = 64, cols: int = 64
                              ) -> dict[str, float]:
        """Per-component power split of the FineQ array (Fig. 8)."""
        width_scale = cols / _REF_COLS
        parts = {
            "pe_array": rows * cols * self._pe_cell_power,
            "acc": rows * self._acc_row_power * width_scale,
            "temporal_encoder": cols * self._te_power,
        }
        total = sum(parts.values())
        return {name: value / total for name, value in parts.items()}

    def decoder_bank(self, num_decoders: int = 64) -> BlockCost:
        return BlockCost(area_mm2=num_decoders * self._decoder_area,
                         power_mw=self._scale_power(num_decoders * self._decoder_power))

    # ------------------------------------------------------------------ #
    def area_reduction(self, rows: int = 64, cols: int = 64) -> float:
        """Fractional array-area saving of FineQ vs the MAC baseline."""
        base = self.systolic_array(rows, cols).area_mm2
        ours = self.fineq_pe_array(rows, cols).area_mm2
        return 1.0 - ours / base

    def power_reduction(self, rows: int = 64, cols: int = 64) -> float:
        base = self.systolic_array(rows, cols).power_mw
        ours = self.fineq_pe_array(rows, cols).power_mw
        return 1.0 - ours / base
