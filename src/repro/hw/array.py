"""Temporal-coding PE array: functional model and cycle accounting.

Input-stationary dataflow (paper Sec. IV-A): an activation tile
``X (K x N)`` is preloaded into the PE array; quantized weight rows
``w (M x K)`` are streamed one row at a time as unary bitstreams.  During
cycle ``t`` of row ``m``, every PE whose weight bit is set forwards its
activation, the ACC applies the weight sign and accumulates — after
``max(|w_m|)`` cycles (early termination) the row's output
``w_m @ X`` is complete.  Temporal coding is lossless, so the result
equals the exact integer matmul; tests assert this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.temporal import encode_magnitudes, MAX_MAGNITUDE


@dataclass
class ArrayRunResult:
    """Output of one tile execution."""

    output: np.ndarray   # (M, N) accumulated results
    cycles: int          # compute cycles consumed (with early termination)
    broadcasts: int      # total 1-bit weight broadcasts


def temporal_matmul(weights: np.ndarray, activations: np.ndarray,
                    early_termination: bool = True) -> ArrayRunResult:
    """Compute ``weights @ activations`` via temporal coding.

    ``weights``: integer ``(M, K)`` in ``[-3, 3]`` (FineQ decoded codes);
    ``activations``: ``(K, N)``.  Exact (lossless unary coding).
    """
    w = np.asarray(weights, dtype=np.int64)
    x = np.asarray(activations, dtype=np.float64)
    if w.ndim != 2 or x.ndim != 2 or w.shape[1] != x.shape[0]:
        raise ValueError(f"shape mismatch: {w.shape} @ {x.shape}")
    if np.abs(w).max(initial=0) > MAX_MAGNITUDE:
        raise ValueError(f"weights exceed magnitude {MAX_MAGNITUDE}")

    output = np.zeros((w.shape[0], x.shape[1]))
    cycles = 0
    broadcasts = 0
    signs = np.sign(w)
    mags = np.abs(w)
    for m in range(w.shape[0]):
        row_cycles = int(mags[m].max()) if early_termination else MAX_MAGNITUDE
        bits = encode_magnitudes(mags[m], num_cycles=row_cycles)
        for t in range(row_cycles):
            gated = bits[t][:, None] * x          # PE select
            output[m] += (signs[m][:, None] * gated).sum(axis=0)  # ACC
        cycles += max(row_cycles, 1)  # a zero row still spends its slot
        broadcasts += row_cycles * w.shape[1]
    return ArrayRunResult(output=output, cycles=cycles, broadcasts=broadcasts)


class TemporalCodingArray:
    """Tiled execution of large GEMMs on a fixed-size PE array.

    The array holds ``rows x cols`` PEs (default 64 x 64, the paper's
    configuration: K-tile of 64 input channels by N-tile of 64 tokens).
    """

    def __init__(self, rows: int = 64, cols: int = 64):
        self.rows = rows
        self.cols = cols

    def run(self, weights: np.ndarray, activations: np.ndarray
            ) -> ArrayRunResult:
        """Tile ``weights (M,K) @ activations (K,N)`` over the array."""
        w = np.asarray(weights, dtype=np.int64)
        x = np.asarray(activations, dtype=np.float64)
        m_total, k_total = w.shape
        n_total = x.shape[1]
        output = np.zeros((m_total, n_total))
        cycles = 0
        broadcasts = 0
        for k0 in range(0, k_total, self.rows):
            k1 = min(k0 + self.rows, k_total)
            for n0 in range(0, n_total, self.cols):
                n1 = min(n0 + self.cols, n_total)
                result = temporal_matmul(w[:, k0:k1], x[k0:k1, n0:n1])
                output[:, n0:n1] += result.output
                cycles += result.cycles
                broadcasts += result.broadcasts
        return ArrayRunResult(output=output, cycles=cycles,
                              broadcasts=broadcasts)

    def compute_cycles(self, code_magnitudes: np.ndarray) -> int:
        """Closed-form cycle count for streaming ``(M, K)`` magnitudes.

        Equals the cycles :meth:`run` would consume, without touching
        activations: for every K-tile, each weight row costs
        ``max(magnitudes in its 64-wide chunk)`` cycles (>= 1), repeated
        for every N-tile.
        """
        mags = np.abs(np.asarray(code_magnitudes, dtype=np.int64))
        m_total, k_total = mags.shape
        total = 0
        for k0 in range(0, k_total, self.rows):
            chunk = mags[:, k0:min(k0 + self.rows, k_total)]
            total += int(np.maximum(chunk.max(axis=1), 1).sum())
        return total
