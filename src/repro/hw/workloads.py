"""GEMM workload extraction from the simulation models.

The accelerator experiments (Table III context, Fig. 9) run the linear
layers of the quantized models as GEMM traces: for a prefill of ``seq``
tokens, every block contributes Q/K/V/O projections and the two FFN
matmuls.  Embeddings and the LM head stay on the host in both designs
(they are not quantized), matching the paper's quantization surface.

:func:`project_decode_trace` closes the loop with the serving engine: a
session run with ``record_trace=True`` produces per-step
``(rows, tokens, kv_bytes, ...)`` tuples — decode steps (one token per
row) and prefill-chunk steps (a ragged multi-token chunk wave) alike —
and the adapter replays each step's linear layers through the six-stage
cycle model (GEMMs have ``N = tokens forwarded``, which for decode *is*
the batch width) plus the step's KV-cache traffic over the DMA lane,
projecting measured serving tokens/sec onto the paper's accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.nn.model import ModelConfig


@dataclass(frozen=True)
class GEMMShape:
    """One weight-stationary GEMM: ``(M, K) @ (K, N)``.

    ``M`` = output channels, ``K`` = input channels, ``N`` = tokens.
    """

    name: str
    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def weight_count(self) -> int:
        return self.m * self.k


def block_gemms(config: ModelConfig, seq_len: int) -> list[GEMMShape]:
    """GEMMs of a single transformer block at the given prefill length."""
    d, ff = config.d_model, config.d_ff
    # Names match TransformerLM.quantizable_linears so exact FineQ code
    # magnitudes (repro.hw.codes) can be joined onto the trace.
    return [
        GEMMShape("attn.wq", d, d, seq_len),
        GEMMShape("attn.wk", d, d, seq_len),
        GEMMShape("attn.wv", d, d, seq_len),
        GEMMShape("attn.wo", d, d, seq_len),
        GEMMShape("ffn.up", ff, d, seq_len),
        GEMMShape("ffn.down", d, ff, seq_len),
    ]


def model_gemms(config: ModelConfig, seq_len: int) -> list[GEMMShape]:
    """All quantized GEMMs of a full forward pass (prefill)."""
    gemms = []
    for layer in range(config.num_layers):
        for shape in block_gemms(config, seq_len):
            gemms.append(GEMMShape(f"blocks.{layer}.{shape.name}",
                                   shape.m, shape.k, shape.n))
    return gemms


def total_macs(config: ModelConfig, seq_len: int) -> int:
    return sum(g.macs for g in model_gemms(config, seq_len))


def total_weight_count(config: ModelConfig) -> int:
    return sum(g.weight_count for g in model_gemms(config, seq_len=1))


# ---------------------------------------------------------------------- #
# serving-engine decode traces -> accelerator projection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DecodeProjection:
    """Decode throughput projected onto the paper's accelerator.

    ``compute_cycles`` replays every traced step's linear layers through
    the six-stage pipeline model; ``kv_dma_cycles`` streams each step's
    KV-cache bytes over the DMA lane (where the quantized cache's ~4.7x
    smaller footprint directly buys cycles).  The two overlap in the real
    pipeline no better than their sum's bottleneck, so the projection
    charges them additively — a conservative serving-side bound.
    """

    design: str                  # "baseline" (FP16) or "fineq" (2.33-bit)
    clock_mhz: float
    steps: int
    tokens: int
    compute_cycles: int
    kv_dma_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.kv_dma_cycles

    @property
    def seconds(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def tokens_per_s(self) -> float:
        return self.tokens / self.seconds if self.seconds else 0.0

    def to_dict(self) -> dict:
        return {"design": self.design, "clock_mhz": self.clock_mhz,
                "steps": self.steps, "tokens": self.tokens,
                "compute_cycles": self.compute_cycles,
                "kv_dma_cycles": self.kv_dma_cycles,
                "total_cycles": self.total_cycles,
                "tokens_per_s": self.tokens_per_s}


def decode_step_cycles(config: ModelConfig, batch: int, design: str,
                       pipeline=None) -> int:
    """Pipeline cycles for one serving step forwarding ``batch`` tokens.

    A decode step runs every quantized GEMM with ``N = batch`` (one
    token per row; a prefill-chunk step passes its granted token count
    instead), so the whole forward is ``model_gemms(seq_len = batch)``
    through :func:`repro.hw.cycle_model.simulate_gemm`.
    """
    # Imported lazily: cycle_model imports GEMMShape from this module.
    from repro.hw.cycle_model import PipelineConfig, simulate_gemm

    pipeline = pipeline or PipelineConfig()
    return sum(simulate_gemm(shape, design, pipeline).total_cycles
               for shape in model_gemms(config, seq_len=max(1, batch)))


def project_decode_trace(config: ModelConfig,
                         trace: Iterable[Sequence[int]],
                         design: str = "fineq",
                         pipeline=None,
                         draft_config: ModelConfig | None = None
                         ) -> DecodeProjection:
    """Project a serving-engine decode trace onto the accelerator.

    ``trace`` is an iterable of per-step ``(rows, tokens, kv_bytes[,
    kv_bytes_streamed[, prefill_tokens[, spec_proposed, spec_accepted,
    spec_draft_tokens, spec_verify_tokens]]])`` records (the engine's
    ``StepTrace`` tuples).  A step's linear layers run with ``N =
    tokens`` — the batch width on decode steps, the granted chunk
    tokens on prefill-chunk steps — so every forward is charged at its
    real GEMM width; on speculative steps the target forward is
    charged at ``spec_verify_tokens`` (the verify positions actually
    forwarded) while ``tokens`` counts what the step emitted, so
    ``tokens_per_s`` stays tokens a consumer saw.  When a step carries
    the fourth field (non-negative), that is the *post-dequant-cache*
    byte count the block-resident read actually fetched from cache
    storage — the DMA lane is charged with it instead of the logical
    gather bytes, so the projection credits reuse of memoised
    dequantized blocks.  Steps with equal token width share one cycle
    simulation, so long traces stay cheap.

    ``draft_config`` prices the draft model of a speculative trace on
    the same pipeline: the ``spec_proposed`` tokens are the
    autoregressive proposal loop — ``ceil(proposed / rows)`` sequential
    draft forwards of up to ``rows`` tokens each — and the remainder of
    ``spec_draft_tokens`` is the draft's catch-up over freshly
    committed context, one ragged multi-token forward per step.
    Without it, draft work is not charged (a target-only projection).
    """
    from repro.hw.cycle_model import PipelineConfig

    pipeline = pipeline or PipelineConfig()
    cycles_by_width: dict[int, int] = {}
    draft_cycles_by_width: dict[int, int] = {}

    def draft_forward(width: int) -> int:
        if width not in draft_cycles_by_width:
            draft_cycles_by_width[width] = decode_step_cycles(
                draft_config, width, design, pipeline)
        return draft_cycles_by_width[width]

    steps = tokens = compute = kv_bytes_total = 0
    for record in trace:
        rows, step_tokens, kv_bytes = (int(record[0]), int(record[1]),
                                       int(record[2]))
        if len(record) > 3 and int(record[3]) >= 0:
            kv_bytes = int(record[3])
        width = step_tokens
        if len(record) > 8 and int(record[8]) > 0:
            width = int(record[8])
        if width not in cycles_by_width:
            cycles_by_width[width] = decode_step_cycles(
                config, width, design, pipeline)
        compute += cycles_by_width[width]
        if (draft_config is not None and len(record) > 7
                and int(record[7]) > 0):
            draft_tokens = int(record[7])
            proposed = (int(record[5])
                        if len(record) > 5 else draft_tokens)
            per = max(1, rows)
            loop = min(proposed, draft_tokens)
            widths = [per] * (loop // per)
            if loop % per:
                widths.append(loop % per)
            catchup = draft_tokens - loop
            if catchup > 0:
                widths.append(catchup)
            for w in widths:
                compute += draft_forward(w)
        kv_bytes_total += kv_bytes
        tokens += step_tokens
        steps += 1
    kv_dma = -(-kv_bytes_total // int(pipeline.dma_bytes_per_cycle))
    return DecodeProjection(design=design, clock_mhz=pipeline.clock_mhz,
                            steps=steps, tokens=tokens,
                            compute_cycles=int(compute),
                            kv_dma_cycles=int(kv_dma))
