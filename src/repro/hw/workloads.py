"""GEMM workload extraction from the simulation models.

The accelerator experiments (Table III context, Fig. 9) run the linear
layers of the quantized models as GEMM traces: for a prefill of ``seq``
tokens, every block contributes Q/K/V/O projections and the two FFN
matmuls.  Embeddings and the LM head stay on the host in both designs
(they are not quantized), matching the paper's quantization surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.model import ModelConfig


@dataclass(frozen=True)
class GEMMShape:
    """One weight-stationary GEMM: ``(M, K) @ (K, N)``.

    ``M`` = output channels, ``K`` = input channels, ``N`` = tokens.
    """

    name: str
    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def weight_count(self) -> int:
        return self.m * self.k


def block_gemms(config: ModelConfig, seq_len: int) -> list[GEMMShape]:
    """GEMMs of a single transformer block at the given prefill length."""
    d, ff = config.d_model, config.d_ff
    # Names match TransformerLM.quantizable_linears so exact FineQ code
    # magnitudes (repro.hw.codes) can be joined onto the trace.
    return [
        GEMMShape("attn.wq", d, d, seq_len),
        GEMMShape("attn.wk", d, d, seq_len),
        GEMMShape("attn.wv", d, d, seq_len),
        GEMMShape("attn.wo", d, d, seq_len),
        GEMMShape("ffn.up", ff, d, seq_len),
        GEMMShape("ffn.down", d, ff, seq_len),
    ]


def model_gemms(config: ModelConfig, seq_len: int) -> list[GEMMShape]:
    """All quantized GEMMs of a full forward pass (prefill)."""
    gemms = []
    for layer in range(config.num_layers):
        for shape in block_gemms(config, seq_len):
            gemms.append(GEMMShape(f"blocks.{layer}.{shape.name}",
                                   shape.m, shape.k, shape.n))
    return gemms


def total_macs(config: ModelConfig, seq_len: int) -> int:
    return sum(g.macs for g in model_gemms(config, seq_len))


def total_weight_count(config: ModelConfig) -> int:
    return sum(g.weight_count for g in model_gemms(config, seq_len=1))
