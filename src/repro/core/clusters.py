"""Cluster partitioning, outlier detection, and initial bit allocation.

Implements Algorithm 1 lines 1-14: each weight channel (matrix row) is
divided into clusters of three consecutive values; a cluster is an
*outlier cluster* when its maximum magnitude exceeds ``OUTLIER_RATIO``
times its minimum magnitude, in which case the two largest magnitudes are
encoded with 3 bits and the smallest is zeroed.

Encoding schemes (paper Sec. III-B):

====== =========== ===========================
index  bit widths  meaning
====== =========== ===========================
``00``  (2, 2, 2)  all three values 2-bit
``01``  (0, 3, 3)  first value zeroed
``10``  (3, 0, 3)  second value zeroed
``11``  (3, 3, 0)  third value zeroed
====== =========== ===========================

Every scheme occupies exactly 6 data bits, which is what makes the
paper's aligned 7-byte / 24-weight memory layout possible.
"""

from __future__ import annotations

import numpy as np

#: Weights per cluster (the paper's fine granularity).
CLUSTER_SIZE = 3
#: Outlier rule: max magnitude > OUTLIER_RATIO x min magnitude.
OUTLIER_RATIO = 4.0

#: Bit width of each value position under each encoding scheme.
SCHEME_WIDTHS = np.array([
    [2, 2, 2],  # '00' : normal cluster
    [0, 3, 3],  # '01' : first value sacrificed
    [3, 0, 3],  # '10' : second value sacrificed
    [3, 3, 0],  # '11' : third value sacrificed
], dtype=np.int64)

SCHEME_NAMES = ("00", "01", "10", "11")

#: Largest representable magnitude per bit width (sign-magnitude coding).
_QMAX_BY_WIDTH = {0: 0, 2: 1, 3: 3}


def qmax_for_widths(widths: np.ndarray) -> np.ndarray:
    """Map bit widths {0,2,3} to their max representable magnitudes."""
    lookup = np.zeros(4, dtype=np.int64)
    for width, qmax in _QMAX_BY_WIDTH.items():
        lookup[width] = qmax
    return lookup[widths]


def cluster_weights(weights: np.ndarray, cluster_size: int = CLUSTER_SIZE
                    ) -> tuple[np.ndarray, int]:
    """Reshape ``(rows, cols)`` weights into ``(rows, clusters, size)``.

    The final cluster of each channel is zero-padded when ``cols`` is not
    a multiple of ``cluster_size``; returns the padded view and the number
    of padding columns (needed to undo the padding later).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"expected 2-D weights, got shape {w.shape}")
    rows, cols = w.shape
    pad = (-cols) % cluster_size
    if pad:
        w = np.concatenate([w, np.zeros((rows, pad))], axis=1)
    return w.reshape(rows, -1, cluster_size), pad


def detect_outlier_clusters(clusters: np.ndarray,
                            ratio: float = OUTLIER_RATIO) -> np.ndarray:
    """Boolean ``(rows, clusters)`` mask of clusters needing protection.

    The comparison is on magnitudes (the paper's walking example is
    all-positive); a zero minimum fires the rule whenever the maximum is
    non-zero, which is the conservative, protective choice.
    """
    magnitude = np.abs(clusters)
    max_val = magnitude.max(axis=-1)
    min_val = magnitude.min(axis=-1)
    return max_val > ratio * min_val


def initial_schemes(clusters: np.ndarray, ratio: float = OUTLIER_RATIO
                    ) -> np.ndarray:
    """Per-cluster scheme before pair harmonization.

    Outlier clusters zero their smallest-magnitude position (scheme
    ``position + 1``); normal clusters use scheme 0.
    """
    outlier = detect_outlier_clusters(clusters, ratio=ratio)
    smallest = np.abs(clusters).argmin(axis=-1)
    return np.where(outlier, smallest + 1, 0).astype(np.int64)
