"""The FineQ quantizer (paper Algorithm 1 end-to-end).

Pipeline per weight matrix (Fig. 4): partition each channel into clusters
of three -> detect outlier clusters (4x magnitude rule) -> initial scheme
allocation -> pair harmonization (shared 2-bit index per cluster pair) ->
per-channel Eq. 1 scale -> round/clip to per-position grids.

Average bits: 6 data bits per 3 weights (2.0) + 2 index bits per 6
weights (0.333) + one FP16 scale per channel = the paper's 2.33.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clusters import CLUSTER_SIZE, OUTLIER_RATIO, cluster_weights
from repro.core.encoding import encode_channels, dequantize_codes
from repro.quant.base import Quantizer, QuantRecord


@dataclass(frozen=True)
class FineQConfig:
    """Algorithm knobs (paper defaults; ablations sweep them).

    ``channel_axis`` selects the direction of the paper's "channels":
    ``"input"`` (default) treats matrix *columns* as channels, matching
    the channel-concentrated outlier structure of LLM weights (outliers
    align with input channels); ``"output"`` treats rows as channels,
    which is the orientation of the paper's Fig. 4 walking example.
    """

    cluster_size: int = CLUSTER_SIZE
    outlier_ratio: float = OUTLIER_RATIO
    harmonize: bool = True
    channel_axis: str = "input"


class FineQQuantizer(Quantizer):
    """Fine-grained intra-cluster mixed-precision quantization."""

    name = "fineq"

    def __init__(self, cluster_size: int = CLUSTER_SIZE,
                 outlier_ratio: float = OUTLIER_RATIO,
                 harmonize: bool = True, channel_axis: str = "input"):
        if cluster_size != CLUSTER_SIZE:
            # The 6-bit cluster format and 4-scheme index are specific to
            # clusters of three; other sizes use the generalised ablation
            # path in repro.experiments.ablations.
            raise ValueError("FineQQuantizer implements the paper's "
                             "3-element clusters; use ablations for others")
        if channel_axis not in ("input", "output"):
            raise ValueError("channel_axis must be 'input' or 'output'")
        self.config = FineQConfig(cluster_size=cluster_size,
                                  outlier_ratio=outlier_ratio,
                                  harmonize=harmonize,
                                  channel_axis=channel_axis)

    # ------------------------------------------------------------------ #
    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        dequantized, artifacts = self.quantize_with_artifacts(weight)
        channels, num_clusters = artifacts["schemes"].shape
        index_bits = 2.0 * np.ceil(num_clusters / 2.0) * channels
        record = QuantRecord(
            method=self.name,
            bits_payload=6.0 * num_clusters * channels / weight.size,
            bits_metadata=(index_bits + 16.0 * channels) / weight.size,
            weight_shape=weight.shape,
            detail={
                "outlier_cluster_ratio": float((artifacts["schemes"] > 0).mean()),
                "scheme_histogram": np.bincount(
                    artifacts["schemes"].reshape(-1), minlength=4).tolist(),
                "harmonize": self.config.harmonize,
                "outlier_ratio_threshold": self.config.outlier_ratio,
            },
        )
        return dequantized, record

    def quantize_with_artifacts(self, weight: np.ndarray
                                ) -> tuple[np.ndarray, dict]:
        """Quantize and expose codes/schemes/scales (used by packing/hw).

        Internally channels are always laid out as rows; with
        ``channel_axis="input"`` the matrix is transposed on the way in
        and out, so artifacts are in channel-major order either way.
        """
        w = np.asarray(weight, dtype=np.float64)
        transposed = self.config.channel_axis == "input"
        if transposed:
            w = w.T.copy()
        rows, cols = w.shape
        clusters, pad = cluster_weights(w, self.config.cluster_size)
        codes, schemes, scales = encode_channels(
            clusters, outlier_ratio=self.config.outlier_ratio,
            harmonize=self.config.harmonize)
        dequantized = dequantize_codes(codes, scales).reshape(rows, -1)
        if pad:
            dequantized = dequantized[:, :-pad]
        if transposed:
            dequantized = dequantized.T
        artifacts = {
            "codes": codes,                      # (channels, clusters, 3) ints
            "schemes": schemes,                  # (channels, clusters) in 0..3
            "scales": scales.reshape(rows),      # per-channel scale
            "pad": pad,
            "channel_axis": self.config.channel_axis,
        }
        return dequantized.astype(np.float32), artifacts
