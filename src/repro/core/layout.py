"""Serving-memory layout accounting (paper Fig. 2b).

Models the memory pools of an LLM serving deployment: weights, KV cache
and "others" (activation workspace, I/O buffers).  The paper's Fig. 2(b)
reports ~65 % weights / ~30 % KV cache / ~5 % others for LLaMA-2-13B on a
40 GB A100; the same accounting applied to the simulation models (scaled
batch/context) reproduces that split, and re-running it with FineQ's
2.33 bits/weight shows the footprint reduction motivating the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.kv_cache import KVCache
from repro.nn.model import ModelConfig, TransformerLM


@dataclass(frozen=True)
class ServingMemoryLayout:
    """Byte budget of one serving configuration."""

    weight_bytes: int
    kv_cache_bytes: int
    other_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.kv_cache_bytes + self.other_bytes

    @property
    def fractions(self) -> dict[str, float]:
        total = self.total_bytes
        return {
            "weights": self.weight_bytes / total,
            "kv_cache": self.kv_cache_bytes / total,
            "others": self.other_bytes / total,
        }


def serving_memory_layout(model: TransformerLM | ModelConfig,
                          batch: int, seq_len: int,
                          weight_bits: float = 16.0,
                          kv_bits: int = 16,
                          activation_copies: float = 4.0) -> ServingMemoryLayout:
    """Compute the serving byte budget.

    ``activation_copies`` approximates the number of live
    ``batch x seq x d_model`` activation buffers (hidden states, residual,
    attention workspace) a serving engine keeps per layer pipeline stage.
    """
    config = model.config if isinstance(model, TransformerLM) else model
    if isinstance(model, TransformerLM):
        num_params = model.num_parameters()
    else:
        num_params = _parameter_count(config)

    weight_bytes = int(num_params * weight_bits / 8)
    head_dim = config.d_model // config.num_heads
    kv_cache_bytes = KVCache.projected_bytes(
        config.num_layers, config.num_heads, head_dim, seq_len,
        batch=batch, bytes_per_element=kv_bits // 8)
    other_bytes = int(activation_copies * batch * seq_len * config.d_model * 2)
    return ServingMemoryLayout(weight_bytes=weight_bytes,
                               kv_cache_bytes=kv_cache_bytes,
                               other_bytes=other_bytes)


def _parameter_count(config: ModelConfig) -> int:
    """Closed-form parameter count of :class:`TransformerLM`."""
    d, v = config.d_model, config.vocab_size
    per_block = 4 * d * d + 2 * d * config.d_ff + 2 * d  # attn + ffn + norms
    return v * d + config.num_layers * per_block + d + d * v + v * 0
