"""Generalised FineQ used by the design-space ablations.

The paper fixes cluster size 3, a 4x outlier rule and 3-bit protection;
this variant exposes each choice so the ablation bench can quantify why
the paper's operating point is where it is:

* ``cluster_size`` — weights per cluster (2/3/6 ...);
* ``outlier_ratio`` — the detection threshold;
* ``protect_bits`` — outlier code width; 16 models the OWQ/LLM-MQ-style
  FP16 passthrough (the paper argues 3 bits suffice);
* ``harmonize`` — whether adjacent clusters must share an encoding.

Bit accounting is exact for each configuration (payload + per-cluster
index + per-channel scale), so the memory/accuracy trade-off curve is
honest even for non-paper points.
"""

from __future__ import annotations

import numpy as np

from repro.quant.base import Quantizer, QuantRecord
from repro.core.encoding import round_half_away


class GeneralizedFineQ(Quantizer):
    """FineQ with configurable cluster size / threshold / protection."""

    name = "fineq-gen"

    def __init__(self, cluster_size: int = 3, outlier_ratio: float = 4.0,
                 protect_bits: int = 3, harmonize: bool = True,
                 channel_axis: str = "input"):
        if cluster_size < 2:
            raise ValueError("cluster_size must be >= 2")
        if protect_bits not in (3, 4, 16):
            raise ValueError("protect_bits must be 3, 4 or 16")
        if channel_axis not in ("input", "output"):
            raise ValueError("channel_axis must be 'input' or 'output'")
        self.cluster_size = cluster_size
        self.outlier_ratio = outlier_ratio
        self.protect_bits = protect_bits
        self.harmonize = harmonize
        self.channel_axis = channel_axis

    # ------------------------------------------------------------------ #
    def quantize_weight(self, weight: np.ndarray,
                        inputs: np.ndarray | None = None
                        ) -> tuple[np.ndarray, QuantRecord]:
        w = np.asarray(weight, dtype=np.float64)
        transposed = self.channel_axis == "input"
        if transposed:
            w = w.T.copy()
        rows, cols = w.shape
        size = self.cluster_size
        pad = (-cols) % size
        if pad:
            w = np.concatenate([w, np.zeros((rows, pad))], axis=1)
        clusters = w.reshape(rows, -1, size)

        magnitude = np.abs(clusters)
        outlier = magnitude.max(-1) > self.outlier_ratio * magnitude.min(-1)
        if self.harmonize and outlier.shape[1] >= 2:
            # Pair constraint: a pair is outlier-coded iff either member is.
            even = outlier.shape[1] - (outlier.shape[1] % 2)
            paired = outlier[:, :even].reshape(rows, -1, 2).any(axis=2)
            outlier[:, :even] = np.repeat(paired, 2, axis=1)

        # Budget-preserving generalisation of the paper's scheme: in an
        # outlier cluster the TOP-2 magnitudes are protected, the smallest
        # is sacrificed, and any middle values stay on the 2-bit grid —
        # for size 3 this reduces exactly to the paper's (0/3/3) layouts.
        order = np.argsort(magnitude, axis=-1)
        protected_count = min(2, size - 1)
        sacrifice = np.zeros_like(clusters, dtype=bool)
        protected = np.zeros_like(clusters, dtype=bool)
        rows_idx = np.arange(rows)[:, None]
        cl_idx = np.arange(clusters.shape[1])[None, :]
        sacrifice[rows_idx, cl_idx, order[..., 0]] = True
        for rank in range(protected_count):
            protected[rows_idx, cl_idx, order[..., -1 - rank]] = True

        out_mask = outlier[:, :, None]
        is_protected = out_mask & protected
        is_sacrificed = out_mask & sacrifice

        if self.protect_bits == 16:
            # FP16 passthrough: the channel grid only needs to cover the
            # values that are NOT stored exactly.
            covered = np.where(is_protected, 0.0, magnitude)
            max_abs = covered.reshape(rows, -1).max(axis=1)
            scales = np.where(max_abs > 0, max_abs, 1.0).reshape(rows, 1, 1)
            codes = round_half_away(clusters / scales)
            rec_protected = clusters.copy()
            rec_other = np.clip(codes, -1, 1) * scales
        else:
            qmax = 2 ** (self.protect_bits - 1) - 1
            has_outlier = outlier.any(axis=1)
            max_abs = magnitude.reshape(rows, -1).max(axis=1)
            qmax_channel = np.where(has_outlier, float(qmax), 1.0)
            scales = np.where(max_abs > 0, max_abs / qmax_channel, 1.0)
            scales = scales.reshape(rows, 1, 1)
            codes = round_half_away(clusters / scales)
            rec_protected = np.clip(codes, -qmax, qmax) * scales
            rec_other = np.clip(codes, -1, 1) * scales

        reconstructed = np.where(
            is_sacrificed, 0.0,
            np.where(is_protected, rec_protected, rec_other))

        dequantized = reconstructed.reshape(rows, -1)
        if pad:
            dequantized = dequantized[:, :-pad]
        if transposed:
            dequantized = dequantized.T

        record = self._record(weight, outlier, rows, clusters.shape[1],
                              protected_count)
        return dequantized.astype(np.float32), record

    def _record(self, weight: np.ndarray, outlier: np.ndarray,
                channels: int, num_clusters: int,
                protected_count: int) -> QuantRecord:
        size = self.cluster_size
        outlier_clusters = int(outlier.sum())
        normal_clusters = channels * num_clusters - outlier_clusters
        normal_bits = 2.0 * size
        middle = size - 1 - protected_count  # 2-bit positions in outliers
        if self.protect_bits == 16:
            outlier_bits = 16.0 * protected_count + 2.0 * middle
        else:
            outlier_bits = (float(self.protect_bits) * protected_count
                            + 2.0 * middle)
        payload = normal_clusters * normal_bits + outlier_clusters * outlier_bits
        # Index: 2 bits per cluster pair (as in the paper's layout) plus
        # position-of-zero information for larger clusters.
        index_bits_per_cluster = 1.0 if size == 3 else np.ceil(np.log2(size + 1)) / 2 + 0.5
        index = channels * num_clusters * index_bits_per_cluster
        scales_bits = 16.0 * channels
        total_weights = weight.size
        return QuantRecord(
            method=self.name,
            bits_payload=payload / total_weights,
            bits_metadata=(index + scales_bits) / total_weights,
            weight_shape=weight.shape,
            detail={"cluster_size": size,
                    "outlier_ratio": self.outlier_ratio,
                    "protect_bits": self.protect_bits,
                    "harmonize": self.harmonize,
                    "outlier_cluster_ratio":
                        outlier_clusters / max(1, channels * num_clusters)},
        )
