"""Scheme selection, pair harmonization, and (de)quantization on scales.

Implements Algorithm 1 lines 15-26 and the paper's Eq. 1:

* adjacent clusters form *pairs* that must share one 2-bit encoding index
  (that is what lets one index byte describe eight clusters); pairs whose
  members disagree pick the scheme minimising the summed reconstruction
  error (``argmin_l Loss(Ci, Cj, l)``);
* each channel then gets one symmetric scale
  ``s_c = max(|w_c|) / (2^(b_c - 1) - 1)`` where ``b_c`` is 3 if the
  channel contains any outlier cluster and 2 otherwise — this reproduces
  the scales of the paper's Fig. 4 walking example exactly;
* values are rounded to their per-position grids and clipped to the
  allocated magnitude range ({-1,0,1} at 2 bits, {-3..3} at 3 bits,
  forced 0 at 0 bits).
"""

from __future__ import annotations

import numpy as np

from repro.core.clusters import (OUTLIER_RATIO, SCHEME_WIDTHS,
                                 initial_schemes, qmax_for_widths)


def round_half_away(x: np.ndarray) -> np.ndarray:
    """Round halves away from zero (matches the paper's Fig. 4 example,
    where 0.02/0.04 = 0.5 quantizes to 1, unlike numpy's banker rounding)."""
    return np.sign(x) * np.floor(np.abs(x) + 0.5)


def channel_scales(clusters: np.ndarray, schemes: np.ndarray) -> np.ndarray:
    """Per-channel scale from Eq. 1; ``(rows, 1, 1)`` for broadcasting.

    Channels containing at least one outlier cluster use the 3-bit grid
    (``qmax = 3``); all-normal channels use the 2-bit grid (``qmax = 1``).
    """
    rows = clusters.shape[0]
    max_abs = np.abs(clusters).reshape(rows, -1).max(axis=1)
    has_outlier = (schemes > 0).any(axis=1)
    qmax = np.where(has_outlier, 3.0, 1.0)
    scale = np.where(max_abs > 0, max_abs / qmax, 1.0)
    return scale.reshape(rows, 1, 1)


def quantize_codes(clusters: np.ndarray, schemes: np.ndarray,
                   scales: np.ndarray) -> np.ndarray:
    """Integer codes ``(rows, clusters, 3)`` under the given schemes."""
    widths = SCHEME_WIDTHS[schemes]            # (rows, clusters, 3)
    qmax = qmax_for_widths(widths)
    codes = round_half_away(clusters / scales)
    return np.clip(codes, -qmax, qmax).astype(np.int64)


def dequantize_codes(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Reconstruct real values from integer codes and channel scales."""
    return codes * scales


def encode_channels(clusters: np.ndarray,
                    outlier_ratio: float = OUTLIER_RATIO,
                    harmonize: bool = True
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The full FineQ encode pipeline for pre-clustered channels.

    Scheme selection -> Eq. 1 channel scales -> pair harmonization (with
    the scale recompute only when harmonization changed a scheme) -> grid
    rounding.  Single source of truth shared by the weight quantizer and
    the quantized KV cache, so the two formats cannot drift.  Returns
    ``(codes, schemes, scales)`` with ``scales`` shaped ``(rows, 1, 1)``.
    """
    schemes = initial_schemes(clusters, ratio=outlier_ratio)
    scales = channel_scales(clusters, schemes)
    if harmonize:
        harmonized = harmonize_pairs(clusters, schemes, scales)
        if harmonized is not schemes:
            schemes = harmonized
            scales = channel_scales(clusters, schemes)
    codes = quantize_codes(clusters, schemes, scales)
    return codes, schemes, scales


def scheme_reconstruction_error(clusters: np.ndarray, scales: np.ndarray
                                ) -> np.ndarray:
    """Squared reconstruction error of every scheme for every cluster.

    Returns ``(4, rows, clusters)``: entry ``l`` is the error if scheme
    ``l`` were used for that cluster at the given channel scale.  Rounding
    is scheme-independent, so it is hoisted out of the scheme loop (only
    the clip bounds differ between schemes).
    """
    rounded = round_half_away(clusters / scales)
    errors = np.empty((len(SCHEME_WIDTHS),) + clusters.shape[:2])
    for scheme_index in range(len(SCHEME_WIDTHS)):
        qmax = qmax_for_widths(SCHEME_WIDTHS[scheme_index])
        residual = clusters - np.clip(rounded, -qmax, qmax) * scales
        errors[scheme_index] = (residual ** 2).sum(axis=-1)
    return errors


def _pair_scheme_errors(pair_values: np.ndarray, pair_scales: np.ndarray
                        ) -> np.ndarray:
    """Summed per-pair error of every scheme, for disagreeing pairs only.

    ``pair_values`` is ``(pairs, 2, cluster)`` (both members of each
    pair), ``pair_scales`` the matching ``(pairs,)`` channel scales;
    returns ``(4, pairs)``.
    """
    scales = pair_scales[:, None, None]
    rounded = round_half_away(pair_values / scales)
    qmax = qmax_for_widths(SCHEME_WIDTHS)            # (4, cluster)
    codes = np.clip(rounded[None], -qmax[:, None, None, :],
                    qmax[:, None, None, :])          # (4, pairs, 2, cluster)
    residual = pair_values[None] - codes * scales[None]
    return (residual ** 2).sum(axis=(-1, -2))


def harmonize_pairs(clusters: np.ndarray, schemes: np.ndarray,
                    scales: np.ndarray) -> np.ndarray:
    """Force adjacent cluster pairs to share one encoding scheme.

    Pairs are ``(0,1), (2,3), ...``; an odd trailing cluster keeps its own
    scheme (it gets a dedicated index field whose second slot is padding).
    Agreeing pairs are untouched; disagreeing pairs take the
    error-minimising scheme over both members (Algorithm 1 line 22).

    Reconstruction errors are evaluated only for the disagreeing pairs
    (typically a small fraction of all clusters), not for every cluster
    under every scheme.  When no pair disagrees the input ``schemes``
    array is returned unchanged — callers can use identity to skip
    recomputing scales.
    """
    rows, num_clusters = schemes.shape
    even_count = num_clusters - (num_clusters % 2)
    if even_count == 0:
        return schemes

    left = schemes[:, 0:even_count:2]
    right = schemes[:, 1:even_count:2]
    disagree = left != right
    if not disagree.any():
        return schemes

    row_idx, pair_idx = np.nonzero(disagree)
    left_idx = 2 * pair_idx
    pair_values = np.stack([clusters[row_idx, left_idx],
                            clusters[row_idx, left_idx + 1]], axis=1)
    pair_scales = scales.reshape(-1)[row_idx]
    errors = _pair_scheme_errors(pair_values, pair_scales)  # (4, pairs)
    best = errors.argmin(axis=0)

    result = schemes.copy()
    result[row_idx, left_idx] = best
    result[row_idx, left_idx + 1] = best
    return result
