"""FineQ: fine-grained intra-cluster mixed-precision quantization.

The paper's contribution (Sec. III): weights are processed per channel in
clusters of three values; clusters whose max/min magnitude ratio exceeds
4x get the intra-cluster outlier protection (two 3-bit codes, smallest
value sacrificed), all others use three 2-bit codes.  A 2-bit index per
*pair* of clusters selects the layout, yielding an aligned memory format
of 7 bytes per 24 weights = 2.33 bits/weight.
"""

from repro.core.clusters import (CLUSTER_SIZE, OUTLIER_RATIO, cluster_weights,
                                 detect_outlier_clusters, initial_schemes,
                                 SCHEME_WIDTHS, SCHEME_NAMES)
from repro.core.encoding import (encode_channels, harmonize_pairs,
                                 scheme_reconstruction_error,
                                 channel_scales, quantize_codes,
                                 dequantize_codes)
from repro.core.quantizer import FineQQuantizer, FineQConfig
from repro.core.generalized import GeneralizedFineQ
from repro.core.packing import PackedMatrix, pack_matrix, unpack_matrix
from repro.core.layout import ServingMemoryLayout, serving_memory_layout

from repro.quant.registry import register as _register

_register("fineq", FineQQuantizer)
_register("fineq-gen", GeneralizedFineQ)

__all__ = [
    "CLUSTER_SIZE", "OUTLIER_RATIO", "cluster_weights",
    "detect_outlier_clusters", "initial_schemes", "SCHEME_WIDTHS",
    "SCHEME_NAMES", "encode_channels", "harmonize_pairs",
    "scheme_reconstruction_error",
    "channel_scales", "quantize_codes", "dequantize_codes",
    "FineQQuantizer", "FineQConfig", "GeneralizedFineQ", "PackedMatrix",
    "pack_matrix", "unpack_matrix", "ServingMemoryLayout",
    "serving_memory_layout",
]
