"""Byte-exact packed memory format (paper Fig. 4 step 5).

Every cluster occupies exactly 6 data bits regardless of scheme:

* scheme ``00``: three 2-bit sign-magnitude fields
  ``[s0 m0 s1 m1 s2 m2]`` with magnitudes in {0, 1};
* schemes ``01/10/11``: two 3-bit sign-magnitude fields for the surviving
  positions (in ascending position order)
  ``[sa ma1 ma0 sb mb1 mb0]`` with magnitudes in {0..3}.

Rows are padded to groups of eight clusters; each group is stored as one
index byte (four 2-bit pair indices) followed by six data bytes — the
paper's aligned layout of 7 bytes per 24 weights (2.333 bits/weight),
plus one FP16 scale per channel.

``pack_matrix`` / ``unpack_matrix`` round-trip exactly (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Surviving positions (ascending) for outlier schemes indexed by the
#: zeroed position: zero pos 0 -> keep (1, 2), 1 -> (0, 2), 2 -> (0, 1).
_KEEP_A = np.array([1, 0, 0])
_KEEP_B = np.array([2, 2, 1])

CLUSTERS_PER_GROUP = 8
GROUP_DATA_BYTES = 6
GROUP_BYTES = 1 + GROUP_DATA_BYTES  # index byte + data bytes


@dataclass
class PackedMatrix:
    """A FineQ-packed weight matrix."""

    shape: tuple[int, int]           # original (rows, cols)
    num_clusters: int                # clusters per row before group padding
    scales: np.ndarray               # (rows,) float16 channel scales
    payload: np.ndarray              # (rows, groups * GROUP_BYTES) uint8

    @property
    def total_bytes(self) -> int:
        """Stored bytes: payload plus FP16 scales."""
        return self.payload.size + 2 * self.shape[0]

    @property
    def bits_per_weight(self) -> float:
        return 8.0 * self.total_bytes / (self.shape[0] * self.shape[1])


def _cluster_bits(codes: np.ndarray, schemes: np.ndarray) -> np.ndarray:
    """Encode ``(n, 3)`` codes + ``(n,)`` schemes into ``(n, 6)`` bits."""
    signs = (codes < 0).astype(np.uint8)
    mags = np.abs(codes).astype(np.uint8)

    # Normal layout: [s0 m0 s1 m1 s2 m2].
    normal = np.empty((codes.shape[0], 6), dtype=np.uint8)
    normal[:, 0::2] = signs
    normal[:, 1::2] = mags

    # Outlier layout: two 3-bit fields for surviving positions.
    zero_pos = np.clip(schemes - 1, 0, 2)
    pos_a = _KEEP_A[zero_pos][:, None]
    pos_b = _KEEP_B[zero_pos][:, None]
    sign_a = np.take_along_axis(signs, pos_a, axis=1)[:, 0]
    mag_a = np.take_along_axis(mags, pos_a, axis=1)[:, 0]
    sign_b = np.take_along_axis(signs, pos_b, axis=1)[:, 0]
    mag_b = np.take_along_axis(mags, pos_b, axis=1)[:, 0]
    outlier = np.stack([sign_a, (mag_a >> 1) & 1, mag_a & 1,
                        sign_b, (mag_b >> 1) & 1, mag_b & 1], axis=1)

    is_outlier = (schemes > 0)[:, None]
    return np.where(is_outlier, outlier, normal).astype(np.uint8)


def _bits_to_clusters(bits: np.ndarray, schemes: np.ndarray) -> np.ndarray:
    """Decode ``(n, 6)`` bits + schemes back to ``(n, 3)`` integer codes.

    Reference per-bit implementation; the hot path decodes through
    :data:`_DECODE_LUT` (built from this function) instead.
    """
    n = bits.shape[0]
    codes = np.zeros((n, 3), dtype=np.int64)

    normal_mags = bits[:, 1::2].astype(np.int64)
    normal_signs = bits[:, 0::2].astype(np.int64)
    normal = np.where(normal_signs == 1, -normal_mags, normal_mags)

    mag_a = (bits[:, 1].astype(np.int64) << 1) | bits[:, 2]
    mag_b = (bits[:, 4].astype(np.int64) << 1) | bits[:, 5]
    val_a = np.where(bits[:, 0] == 1, -mag_a, mag_a)
    val_b = np.where(bits[:, 3] == 1, -mag_b, mag_b)

    zero_pos = np.clip(schemes - 1, 0, 2)
    outlier = np.zeros((n, 3), dtype=np.int64)
    rows = np.arange(n)
    outlier[rows, _KEEP_A[zero_pos]] = val_a
    outlier[rows, _KEEP_B[zero_pos]] = val_b

    is_outlier = (schemes > 0)[:, None]
    return np.where(is_outlier, outlier, normal)


def _build_decode_lut() -> np.ndarray:
    """``(4, 64, 3)`` table: integer codes for every (scheme, 6-bit pattern).

    There are only 64 possible data-bit patterns per cluster and 4 schemes,
    so the whole decode space is enumerated once at import through the
    reference :func:`_bits_to_clusters` and decoding becomes a single fancy
    index instead of per-bit arithmetic.
    """
    patterns = np.arange(64)
    bits = ((patterns[:, None] >> np.arange(5, -1, -1)[None, :]) & 1).astype(np.uint8)
    lut = np.empty((4, 64, 3), dtype=np.int8)
    for scheme in range(4):
        lut[scheme] = _bits_to_clusters(bits, np.full(64, scheme, dtype=np.int64))
    return lut


#: Codes for every (scheme, 6-bit cluster pattern); the decode hot path.
_DECODE_LUT = _build_decode_lut()


def decode_payload(payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode packed group bytes via the pattern lookup table.

    ``payload`` is ``(rows, groups * GROUP_BYTES)`` uint8 in the
    :func:`pack_matrix` layout; returns ``(codes, schemes)`` of shapes
    ``(rows, groups * 8, 3)`` (int8) and ``(rows, groups * 8)`` (uint8),
    group padding still included.  6-bit cluster patterns are reassembled
    with byte shifts (three data bytes hold four clusters) and looked up
    in :data:`_DECODE_LUT`, replacing the per-bit ``unpackbits``/``where``
    decode (see the micro-benchmark in ``benchmarks/test_kernels.py``).
    All arithmetic stays in uint8 — every intermediate fits in 6 bits, so
    the quantized-KV hot path never materialises widened copies.
    """
    rows = payload.shape[0]
    grouped = np.ascontiguousarray(payload).reshape(rows, -1, GROUP_BYTES)

    index = grouped[:, :, 0]
    pairs = np.stack([(index >> 6) & 3, (index >> 4) & 3,
                      (index >> 2) & 3, index & 3], axis=-1)
    schemes = np.repeat(pairs.reshape(rows, -1), 2, axis=1)

    data = grouped[:, :, 1:].reshape(rows, -1, 2, 3)  # two byte-triplets/group
    b0, b1, b2 = data[..., 0], data[..., 1], data[..., 2]
    patterns = np.stack([b0 >> 2,
                         ((b0 & 0x03) << 4) | (b1 >> 4),
                         ((b1 & 0x0F) << 2) | (b2 >> 6),
                         b2 & 0x3F], axis=-1).reshape(rows, -1)

    codes = _DECODE_LUT[schemes, patterns]
    return codes, schemes


def decode_payload_bitwise(payload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-bit reference decode (the pre-LUT implementation).

    Kept for the equivalence property test and as the baseline of the
    pack/unpack micro-benchmark; production decode is :func:`decode_payload`.
    """
    rows = payload.shape[0]
    grouped = payload.reshape(rows, -1, GROUP_BYTES)
    groups = grouped.shape[1]
    padded = groups * CLUSTERS_PER_GROUP

    index_bytes = grouped[:, :, 0]
    pair_bits = np.unpackbits(np.ascontiguousarray(index_bytes), axis=1)
    pair_schemes = ((pair_bits[:, 0::2].astype(np.int64) << 1)
                    | pair_bits[:, 1::2])[:, :padded // 2]
    schemes = np.repeat(pair_schemes, 2, axis=1)

    data_bytes = grouped[:, :, 1:].reshape(rows, groups * GROUP_DATA_BYTES)
    bits = np.unpackbits(np.ascontiguousarray(data_bytes), axis=1).reshape(-1, 6)
    codes = _bits_to_clusters(bits, schemes.reshape(-1)).reshape(rows, padded, 3)
    return codes, schemes


def pack_matrix(codes: np.ndarray, schemes: np.ndarray, scales: np.ndarray,
                shape: tuple[int, int]) -> PackedMatrix:
    """Pack quantization artifacts into the aligned byte format.

    ``codes``: ``(rows, clusters, 3)``; ``schemes``: ``(rows, clusters)``
    with harmonized pairs; ``scales``: ``(rows,)``; ``shape`` is the
    original matrix shape (for unpadding on decode).
    """
    rows, num_clusters, _ = codes.shape
    pad_clusters = (-num_clusters) % CLUSTERS_PER_GROUP
    if pad_clusters:
        codes = np.concatenate(
            [codes, np.zeros((rows, pad_clusters, 3), dtype=codes.dtype)], axis=1)
        schemes = np.concatenate(
            [schemes, np.zeros((rows, pad_clusters), dtype=schemes.dtype)], axis=1)
    padded = codes.shape[1]
    groups = padded // CLUSTERS_PER_GROUP

    # Data bytes: 8 clusters x 6 bits -> 6 bytes per group.
    bits = _cluster_bits(codes.reshape(-1, 3), schemes.reshape(-1))
    data_bytes = np.packbits(bits.reshape(rows, padded * 6), axis=1)
    data_bytes = data_bytes.reshape(rows, groups, GROUP_DATA_BYTES)

    # Index bytes: four 2-bit pair indices per group of eight clusters.
    pair_schemes = schemes.reshape(rows, -1, 2)[:, :, 0]  # harmonized pairs
    pair_bits = np.stack([(pair_schemes >> 1) & 1, pair_schemes & 1], axis=-1)
    index_bytes = np.packbits(
        pair_bits.reshape(rows, padded // 2 * 2).astype(np.uint8), axis=1)
    index_bytes = index_bytes.reshape(rows, groups, 1)

    payload = np.concatenate([index_bytes, data_bytes], axis=2)
    return PackedMatrix(shape=tuple(shape), num_clusters=num_clusters,
                        scales=np.asarray(scales, dtype=np.float16),
                        payload=payload.reshape(rows, -1))


def unpack_matrix(packed: PackedMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_matrix`.

    Returns ``(codes, schemes, dequantized)`` where ``dequantized`` has
    the original matrix shape.
    """
    rows, cols = packed.shape
    codes, schemes = decode_payload(packed.payload)
    codes = codes[:, :packed.num_clusters].astype(np.int64)
    schemes = schemes.astype(np.int64)
    schemes = schemes[:, :packed.num_clusters]
    scales = packed.scales.astype(np.float64).reshape(rows, 1, 1)
    dequantized = (codes * scales).reshape(rows, -1)[:, :cols].astype(np.float32)
    return codes, schemes, dequantized
