"""Command-line interface.

Examples
--------
List the model zoo and registered quantizers::

    python -m repro list

Quantize a zoo model and report perplexity::

    python -m repro quantize --model llama-sim-7b --method fineq

Regenerate every paper table/figure into EXPERIMENTS.md::

    python -m repro report
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.models import ZOO_CONFIGS
    from repro.quant import available_methods
    print("zoo models:")
    for name, config in ZOO_CONFIGS.items():
        print(f"  {name}: {config.num_layers} layers, d_model "
              f"{config.d_model}, d_ff {config.d_ff}")
    print("quantizers:", ", ".join(available_methods()))
    return 0


def _cmd_quantize(args) -> int:
    from repro.eval.harness import quantized_perplexity
    from repro.models import load_model
    zoo = load_model(args.model)
    kwargs = {}
    if args.bits is not None:
        kwargs["bits"] = args.bits
    result, report = quantized_perplexity(
        zoo.model, zoo.tokenizer, args.method,
        ("wikitext-sim", "c4-sim"), seq_len=args.seq_len,
        method_kwargs=kwargs or None)
    print(f"method={result.method} avg_bits={result.avg_bits:.2f}")
    for dataset, ppl in result.perplexity.items():
        print(f"  {dataset}: PPL {ppl:.2f}")
    if report is not None:
        print(f"  quantized payload: {report.total_bytes() / 1024:.1f} KiB")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import main as report_main
    report_main([args.output] if args.output else [])
    return 0


def _cmd_zoo(_args) -> int:
    from repro.models import load_model, ZOO_CONFIGS
    for name in ZOO_CONFIGS:
        zoo = load_model(name)
        print(f"{name}: val_loss {zoo.meta['train'].get('val_loss', '?')}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FineQ (DATE 2025) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list zoo models and quantizers"
                   ).set_defaults(func=_cmd_list)

    quantize = sub.add_parser("quantize",
                              help="quantize a zoo model, report perplexity")
    quantize.add_argument("--model", default="llama-sim-7b")
    quantize.add_argument("--method", default="fineq")
    quantize.add_argument("--bits", type=int, default=None)
    quantize.add_argument("--seq-len", type=int, default=256)
    quantize.set_defaults(func=_cmd_quantize)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("--output", default=None)
    report.set_defaults(func=_cmd_report)

    sub.add_parser("zoo", help="train/verify all zoo models"
                   ).set_defaults(func=_cmd_zoo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
