"""Repository-wide paths and defaults."""

from __future__ import annotations

import os
from pathlib import Path


def artifacts_dir() -> Path:
    """Directory caching trained model weights and experiment outputs.

    Override with the ``REPRO_ARTIFACTS`` environment variable (tests use
    a temporary directory).
    """
    root = os.environ.get("REPRO_ARTIFACTS")
    if root is None:
        root = Path(__file__).resolve().parents[2] / "artifacts"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


#: Default random seed used everywhere a seed is not supplied explicitly.
DEFAULT_SEED = 20250428  # arXiv submission date of the paper
