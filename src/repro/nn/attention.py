"""Causal multi-head self-attention with RoPE and optional KV cache."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from repro.nn.kv_cache import KVCache


class MultiHeadAttention(Module):
    """QKV generation, scaled-dot-product attention, output linear.

    Mirrors the paper's Fig. 2(a) self-attention block.  All four weight
    matrices (``wq, wk, wv, wo``) are quantization targets.
    """

    def __init__(self, d_model: int, num_heads: int, rope: RotaryEmbedding,
                 rng: np.random.Generator | None = None):
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.rope = rope
        self.wq = Linear(d_model, d_model, rng=rng)
        self.wk = Linear(d_model, d_model, rng=rng)
        self.wv = Linear(d_model, d_model, rng=rng)
        self.wo = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, cache: KVCache | None = None,
                layer_index: int = 0) -> Tensor:
        batch, seq, _ = x.shape
        offset = cache.layer_len(layer_index) if cache is not None else 0

        q = self._split_heads(self.wq(x), batch, seq)
        k = self._split_heads(self.wk(x), batch, seq)
        v = self._split_heads(self.wv(x), batch, seq)
        q = self.rope(q, position_offset=offset)
        k = self.rope(k, position_offset=offset)

        if cache is not None:
            k_data, v_data = cache.append(layer_index, k.data, v.data)
            k, v = Tensor(k_data), Tensor(v_data)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        total = offset + seq
        if seq > 1:
            mask = np.full((seq, total), -np.inf, dtype=np.float32)
            mask = np.triu(mask, k=1 + offset)
            scores = scores + Tensor(mask)
        probs = F.softmax(scores, axis=-1)
        context = probs @ v  # (B, H, T, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.wo(merged)
