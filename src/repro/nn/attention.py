"""Causal multi-head self-attention with RoPE and optional KV cache."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn.block_attention import (block_decode_attention,
                                      block_prefill_attention)
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from typing import TYPE_CHECKING

from repro.nn.kv_cache import KVCache

if TYPE_CHECKING:  # runtime import would cycle through repro.core
    from repro.nn.paged_kv_cache import PagedKVCache

#: Memoised additive causal masks keyed by ``(seq, total)``.  Prefill and
#: perplexity evaluation hit the same handful of shapes over and over; the
#: single-token decode path never builds a mask at all.  The cache is LRU
#: bounded: perplexity evaluation walks many distinct ``(seq, total)``
#: shapes and must not grow the process footprint without limit.
_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}
_MASK_CACHE_LIMIT = 64


def causal_mask(seq: int, total: int) -> np.ndarray:
    """Additive ``(seq, total)`` causal mask (0 allowed, -inf future)."""
    key = (seq, total)
    mask = _MASK_CACHE.get(key)
    if mask is None:
        if len(_MASK_CACHE) >= _MASK_CACHE_LIMIT:
            _MASK_CACHE.pop(next(iter(_MASK_CACHE)))  # evict least recent
        mask = np.triu(np.full((seq, total), -np.inf, dtype=np.float32),
                       k=1 + total - seq)
    else:
        del _MASK_CACHE[key]  # re-insert below: keeps hot shapes resident
    _MASK_CACHE[key] = mask
    return mask


class MultiHeadAttention(Module):
    """QKV generation, scaled-dot-product attention, output linear.

    Mirrors the paper's Fig. 2(a) self-attention block.  All four weight
    matrices (``wq, wk, wv, wo``) are quantization targets.
    """

    def __init__(self, d_model: int, num_heads: int, rope: RotaryEmbedding,
                 rng: np.random.Generator | None = None):
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.rope = rope
        self.wq = Linear(d_model, d_model, rng=rng)
        self.wk = Linear(d_model, d_model, rng=rng)
        self.wv = Linear(d_model, d_model, rng=rng)
        self.wo = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, cache: KVCache | PagedKVCache | None = None,
                layer_index: int = 0, positions: np.ndarray | None = None,
                kv_mask: np.ndarray | None = None,
                cache_rows: np.ndarray | None = None,
                cache_lens: np.ndarray | None = None,
                cache_starts: np.ndarray | None = None,
                decode_rows: np.ndarray | None = None) -> Tensor:
        """Attend over ``x`` plus any cached context.

        ``positions`` (``(batch, seq)`` absolute positions) and ``kv_mask``
        (additive ``(batch, 1, 1, total)`` mask) enable the serving
        engine's ragged batches: each row rotates by its own positions and
        masks cache slots beyond its own length.  ``cache_rows`` routes a
        prefill into specific rows of a larger cache slot pool; those rows
        are fresh, so the current K/V are the entire context, and
        ``cache_lens`` carries each row's true (unpadded) length so paged
        caches allocate and account only for real tokens.  ``cache_starts``
        (with ``cache_rows``) is the prefix-sharing *suffix* prefill: row
        ``j`` already holds ``cache_starts[j]`` adopted context tokens, the
        new K/V are written after them (``cache.prefill_rows``), and the
        gathered shared-plus-suffix context is attended over.  Rows then
        start at different depths, so the uniform last-``seq``-positions
        causal mask does not apply — the caller must send a full
        ``(batch, 1, seq, total)`` ``kv_mask`` encoding per-row causality.
        ``decode_rows`` routes a single-token decode into specific cache
        rows: ``x`` holds only the engine's *active* slots, so idle slots
        are neither forwarded nor gathered.  ``cache`` may be rectangular
        or paged (possibly quantized): all variants share the same write
        methods and return full-context K/V arrays.  Paged caches with
        ``block_decode`` enabled route single-token decodes through
        :func:`repro.nn.block_attention.block_decode_attention` instead:
        the token is written without a context gather and attention
        iterates the block table chunk by chunk, so no dense
        ``(batch, heads, total, head_dim)`` copy is materialised.
        """
        batch, seq, _ = x.shape
        if cache_rows is not None or cache is None:
            offset = 0
        else:
            offset = cache.layer_len(layer_index)

        q = self._split_heads(self.wq(x), batch, seq)
        k = self._split_heads(self.wk(x), batch, seq)
        v = self._split_heads(self.wv(x), batch, seq)
        q = self.rope(q, position_offset=offset, positions=positions)
        k = self.rope(k, position_offset=offset, positions=positions)

        if cache is not None:
            if cache_rows is not None and cache_starts is not None:
                if hasattr(cache, "context_blocks"):
                    # Paged caches (FP32 or quantized) run prefill over
                    # the same block-resident read as decode: write the
                    # span without a context gather, then attend the
                    # chunk grid.  Quantized prefill re-reads thereby
                    # hit the shared dequant memo.
                    cache.prefill_rows(layer_index, k.data, v.data,
                                       cache_rows, cache_starts, cache_lens,
                                       gather=False)
                    context = block_prefill_attention(
                        q.data, cache, layer_index, kv_mask=kv_mask,
                        rows=cache_rows)
                    merged = Tensor(context).transpose(0, 2, 1, 3) \
                                            .reshape(batch, seq, self.d_model)
                    return self.wo(merged)
                k_data, v_data = cache.prefill_rows(layer_index, k.data,
                                                    v.data, cache_rows,
                                                    cache_starts, cache_lens)
                k, v = Tensor(k_data), Tensor(v_data)
            elif cache_rows is not None:
                cache.write_rows(layer_index, k.data, v.data, cache_rows,
                                 row_lengths=cache_lens)
            elif positions is not None and seq == 1:
                use_block = getattr(cache, "block_decode", False)
                if use_block and getattr(cache, "dequant_cache", None) is None:
                    # FP32 pools: below one chunk window the block path
                    # is the gather path's math at extra bookkeeping
                    # cost, so only chunk genuinely long contexts.  The
                    # quantized cache always takes the block path — its
                    # dequant memo pays at any length.
                    total = max(offset, int(positions[:, 0].max()) + 1)
                    use_block = total > cache.chunk_blocks * cache.block_size
                if use_block:
                    # Block-resident decode: write the token without the
                    # dense context gather, then attend block chunk by
                    # block chunk against the pool itself (inference
                    # path — the cache read carries no gradients, like
                    # the Tensor(k_data) rewrap below).
                    cache.write_token(layer_index, k.data, v.data,
                                      positions[:, 0], rows=decode_rows,
                                      gather=False)
                    context = block_decode_attention(
                        q.data, cache, layer_index, kv_mask=kv_mask,
                        rows=decode_rows)
                    merged = Tensor(context).transpose(0, 2, 1, 3) \
                                            .reshape(batch, seq, self.d_model)
                    return self.wo(merged)
                k_data, v_data = cache.write_token(layer_index, k.data, v.data,
                                                   positions[:, 0],
                                                   rows=decode_rows)
                k, v = Tensor(k_data), Tensor(v_data)
            else:
                k_data, v_data = cache.append(layer_index, k.data, v.data)
                k, v = Tensor(k_data), Tensor(v_data)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if seq > 1 and cache_starts is None:
            # Single-token decode skips mask construction entirely (the new
            # token may attend to everything); prefill reuses cached masks.
            # Suffix prefill (cache_starts) gets per-row causality from the
            # caller's full kv_mask instead of the shared triangular mask.
            scores = scores + Tensor(causal_mask(seq, k.shape[2]))
        if kv_mask is not None:
            scores = scores + Tensor(kv_mask)
        probs = F.softmax(scores, axis=-1)
        context = probs @ v  # (B, H, T, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.wo(merged)
