"""LLaMA-architecture neural-network substrate (numpy + repro.autograd).

The block layout follows the paper's Fig. 2(a): RMSNorm -> causal
self-attention (QKV generation, attention, output linear) -> RMSNorm ->
feed-forward network (Linear, ReLU, Linear), with residual connections
and rotary position embeddings on Q/K.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, Embedding, RMSNorm
from repro.nn.rope import RotaryEmbedding
from repro.nn.attention import MultiHeadAttention
from repro.nn.block_attention import block_decode_attention
from repro.nn.transformer import FeedForward, TransformerBlock
from repro.nn.model import ModelConfig, TransformerLM
from repro.nn.kv_cache import KVCache
from repro.nn.paged_kv_cache import (DEFAULT_BLOCK_SIZE,
                                     DEFAULT_CHUNK_BLOCKS,
                                     DEFAULT_DEQUANT_CACHE_BYTES,
                                     DequantBlockCache, KVReadStats,
                                     PagedKVCache, QuantizedPagedKVCache)

__all__ = [
    "Module", "Parameter", "Linear", "Embedding", "RMSNorm",
    "RotaryEmbedding", "MultiHeadAttention", "FeedForward",
    "TransformerBlock", "ModelConfig", "TransformerLM", "KVCache",
    "PagedKVCache", "QuantizedPagedKVCache", "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CHUNK_BLOCKS", "DEFAULT_DEQUANT_CACHE_BYTES",
    "DequantBlockCache", "KVReadStats", "block_decode_attention",
]
