"""Key/value cache for incremental decoding.

The cache preallocates ``(batch, heads, capacity, head_dim)`` buffers per
layer and grows them by amortized doubling, so a decode step is an
in-place write plus a zero-copy view instead of an O(T) concatenation
(O(T^2) per generated sequence with the old concatenate-per-token cache).

Three write paths serve the generation stack:

* :meth:`append` — uniform append for all batch rows (sequential decode
  and whole-batch prefill);
* :meth:`write_token` — scatter a single decode token at per-row slots,
  which is what lets the serving engine batch sequences of different
  lengths;
* :meth:`write_rows` — prefill a subset of batch rows from slot zero,
  used when the engine admits new prompts into freed cache slots.

Also provides the byte accounting used by the Fig. 2(b) serving-memory
experiment (weights vs KV cache vs other).
"""

from __future__ import annotations

import numpy as np


class KVCache:
    """Per-layer preallocated K/V storage with amortized-doubling growth.

    Keys/values are stored as ``(batch, heads, capacity, head_dim)``
    arrays, mirroring the attention layout; the cache is an inference-path
    object so no gradients flow through it.  ``batch`` may be pinned at
    construction (the serving engine does, so sub-batch prefills can
    target rows of a larger slot pool) or inferred from the first append.
    """

    def __init__(self, num_layers: int, batch: int | None = None,
                 initial_capacity: int = 64):
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self.num_layers = num_layers
        self.batch = batch
        self.initial_capacity = initial_capacity
        self._keys: list[np.ndarray | None] = [None] * num_layers
        self._values: list[np.ndarray | None] = [None] * num_layers
        self._lengths: list[int] = [0] * num_layers

    # ------------------------------------------------------------------ #
    # storage management
    # ------------------------------------------------------------------ #
    def _ensure(self, layer: int, like: np.ndarray, needed: int) -> None:
        """Allocate or double layer buffers until ``needed`` steps fit."""
        buf = self._keys[layer]
        if buf is None:
            capacity = self.initial_capacity
            while capacity < needed:
                capacity *= 2
            batch = self.batch if self.batch is not None else like.shape[0]
            shape = (batch, like.shape[1], capacity, like.shape[3])
            self._keys[layer] = np.zeros(shape, dtype=like.dtype)
            self._values[layer] = np.zeros(shape, dtype=like.dtype)
            return
        capacity = buf.shape[2]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        used = self._lengths[layer]
        for store in (self._keys, self._values):
            old = store[layer]
            new = np.zeros(old.shape[:2] + (capacity, old.shape[3]),
                           dtype=old.dtype)
            new[:, :, :used] = old[:, :, :used]
            store[layer] = new

    def _views(self, layer: int) -> tuple[np.ndarray, np.ndarray]:
        length = self._lengths[layer]
        return (self._keys[layer][:, :, :length],
                self._values[layer][:, :, :length])

    # ------------------------------------------------------------------ #
    # write paths
    # ------------------------------------------------------------------ #
    def append(self, layer: int, k: np.ndarray, v: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Append new K/V for ``layer``; return views of the full cache."""
        start = self._lengths[layer]
        stop = start + k.shape[2]
        self._ensure(layer, k, stop)
        self._keys[layer][:, :, start:stop] = k
        self._values[layer][:, :, start:stop] = v
        self._lengths[layer] = stop
        return self._views(layer)

    def write_token(self, layer: int, k: np.ndarray, v: np.ndarray,
                    positions: np.ndarray,
                    rows: np.ndarray | None = None, gather: bool = True
                    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Scatter one decode token per batch row at ``positions``.

        ``k``/``v`` are ``(batch, heads, 1, head_dim)``; row ``b`` is
        written at time slot ``positions[b]``.  The layer length becomes
        the furthest slot ever written, so the returned views cover every
        row's context (shorter rows mask the tail in attention).

        ``rows`` selects a sub-batch of cache rows (the serving engine's
        active slots): ``k``/``v`` then carry ``len(rows)`` entries and
        the returned context is gathered for those rows only, so idle
        slots cost no decode work.  ``gather=False`` (interface parity
        with the paged caches' block-resident decode) skips the read and
        returns ``None`` — though the rectangle's full-batch read is a
        zero-copy view, so this cache stays on the gather path: it *is*
        the dense reference the block path is tested against.
        """
        positions = np.asarray(positions, dtype=np.int64)
        needed = int(positions.max()) + 1
        self._ensure(layer, k, max(needed, self._lengths[layer]))
        row_idx = np.arange(k.shape[0]) if rows is None \
            else np.asarray(rows, dtype=np.int64)
        self._keys[layer][row_idx, :, positions] = k[:, :, 0]
        self._values[layer][row_idx, :, positions] = v[:, :, 0]
        self._lengths[layer] = max(self._lengths[layer], needed)
        if not gather:
            return None
        if rows is None:
            return self._views(layer)
        length = self._lengths[layer]
        return (self._keys[layer][row_idx, :, :length],
                self._values[layer][row_idx, :, :length])

    def write_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                   rows: np.ndarray,
                   row_lengths: np.ndarray | None = None) -> None:
        """Prefill batch rows ``rows`` from slot zero with ``k``/``v``.

        Fresh rows carry no prior context, so the caller's own K/V are the
        whole attention context and nothing needs to be read back.
        ``row_lengths`` (true per-row lengths under right padding) is
        accepted for interface parity with the paged caches; the
        rectangle stores the padded width regardless and relies on the
        engine's key mask to hide padding slots.
        """
        if self.batch is None:
            raise ValueError("write_rows needs a cache with a pinned batch")
        seq = k.shape[2]
        self._ensure(layer, k, seq)
        rows = np.asarray(rows, dtype=np.int64)
        self._keys[layer][rows, :, :seq] = k
        self._values[layer][rows, :, :seq] = v
        self._lengths[layer] = max(self._lengths[layer], seq)

    def prefill_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                     rows: np.ndarray, starts: np.ndarray,
                     row_lengths: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Write per-row suffix spans and return the rows' full context.

        Interface parity with the paged caches' prefix-sharing prefill:
        row ``j``'s ``row_lengths[j]`` tokens land at absolute slots
        ``starts[j] .. starts[j] + row_lengths[j] - 1``.  The rectangle
        cannot alias blocks, so callers use this only for suffix writes
        into context the same row already holds.
        """
        if self.batch is None:
            raise ValueError("prefill_rows needs a cache with a pinned batch")
        rows = np.asarray(rows, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        lens = np.asarray(row_lengths, dtype=np.int64)
        totals = starts + lens
        self._ensure(layer, k, int(totals.max()))
        for j, row in enumerate(rows):
            lo, hi = int(starts[j]), int(totals[j])
            self._keys[layer][row, :, lo:hi] = k[j, :, :hi - lo]
            self._values[layer][row, :, lo:hi] = v[j, :, :hi - lo]
        self._lengths[layer] = max(self._lengths[layer], int(totals.max()))
        length = self._lengths[layer]
        return (self._keys[layer][rows, :, :length],
                self._values[layer][rows, :, :length])

    def free_rows(self, rows: np.ndarray) -> None:
        """Interface parity with the paged caches: rectangular rows are
        reused in place by the next ``write_rows``, nothing to release."""

    def trim(self, max_len: int) -> None:
        """Clamp the logical context width to ``max_len`` time steps.

        A long-lived serving session calls this when rows retire so the
        read width tracks the *live* rows' longest context instead of the
        historical high-water mark; buffers keep their capacity.
        """
        self._lengths = [min(length, max_len) for length in self._lengths]

    # ------------------------------------------------------------------ #
    # speculative-decoding rollback (interface parity)
    # ------------------------------------------------------------------ #
    def snapshot_rows(self, rows) -> dict:
        """Interface parity with the paged caches: the rectangle holds no
        per-row state a rollback could corrupt."""
        return {}

    def truncate_rows(self, rows, lengths, snapshot: dict | None = None
                      ) -> None:
        """Interface parity with the paged caches' speculative rollback.

        The rectangle has no per-row lengths or block ownership — the
        engine's per-row masks already hide uncommitted slots, and the
        next write simply overwrites them in place — so rolling back is
        free."""

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def seq_len(self) -> int:
        return self._lengths[0]

    def layer_len(self, layer: int) -> int:
        """Cached time steps for ``layer`` (may lag ``seq_len`` mid-forward)."""
        return self._lengths[layer]

    def capacity(self, layer: int) -> int:
        """Allocated time slots for ``layer`` (0 before first write)."""
        buf = self._keys[layer]
        return 0 if buf is None else buf.shape[2]

    def num_bytes(self, bytes_per_element: int = 2) -> int:
        """Logical cache footprint (used slots) assuming FP16 by default."""
        total = 0
        for k, length in zip(self._keys, self._lengths):
            if k is not None:
                batch, heads, _, head_dim = k.shape
                total += 2 * batch * heads * length * head_dim * bytes_per_element
        return total

    def used_bytes(self) -> int:
        """Actual bytes of the used slots at the buffers' stored dtype.

        Unlike :meth:`num_bytes` (a logical FP16 projection for the
        serving-memory experiment), this is what the resident numpy
        arrays really hold for the cached tokens — the rectangle's whole
        batch pays for the globally longest row.
        """
        total = 0
        for k, length in zip(self._keys, self._lengths):
            if k is not None:
                batch, heads, _, head_dim = k.shape
                total += 2 * batch * heads * length * head_dim * k.itemsize
        return total

    def allocated_bytes(self, bytes_per_element: int = 2) -> int:
        """Physical footprint of the preallocated buffers."""
        total = 0
        for k in self._keys:
            if k is not None:
                total += 2 * k.size * bytes_per_element
        return total

    @staticmethod
    def projected_bytes(num_layers: int, num_heads: int, head_dim: int,
                        seq_len: int, batch: int = 1,
                        bytes_per_element: int = 2) -> int:
        """Closed-form footprint for a hypothetical serving configuration."""
        return 2 * num_layers * num_heads * head_dim * seq_len * batch * bytes_per_element
