"""Key/value cache for incremental decoding.

Also provides the byte accounting used by the Fig. 2(b) serving-memory
experiment (weights vs KV cache vs other).
"""

from __future__ import annotations

import numpy as np


class KVCache:
    """Per-layer append-only K/V storage.

    Keys/values are stored as ``(batch, heads, time, head_dim)`` arrays,
    mirroring the attention layout, and grown by concatenation; the cache
    is an inference-path object so no gradients flow through it.
    """

    def __init__(self, num_layers: int):
        self.num_layers = num_layers
        self._keys: list[np.ndarray | None] = [None] * num_layers
        self._values: list[np.ndarray | None] = [None] * num_layers

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Append new K/V for ``layer``; return the full cached arrays."""
        if self._keys[layer] is None:
            self._keys[layer] = k
            self._values[layer] = v
        else:
            self._keys[layer] = np.concatenate([self._keys[layer], k], axis=2)
            self._values[layer] = np.concatenate([self._values[layer], v], axis=2)
        return self._keys[layer], self._values[layer]

    @property
    def seq_len(self) -> int:
        first = self._keys[0]
        return 0 if first is None else first.shape[2]

    def layer_len(self, layer: int) -> int:
        """Cached time steps for ``layer`` (may lag ``seq_len`` mid-forward)."""
        k = self._keys[layer]
        return 0 if k is None else k.shape[2]

    def num_bytes(self, bytes_per_element: int = 2) -> int:
        """Total cache footprint assuming FP16 storage by default."""
        total = 0
        for k, v in zip(self._keys, self._values):
            if k is not None:
                total += (k.size + v.size) * bytes_per_element
        return total

    @staticmethod
    def projected_bytes(num_layers: int, num_heads: int, head_dim: int,
                        seq_len: int, batch: int = 1,
                        bytes_per_element: int = 2) -> int:
        """Closed-form footprint for a hypothetical serving configuration."""
        return 2 * num_layers * num_heads * head_dim * seq_len * batch * bytes_per_element
