"""Transformer block: pre-norm attention + ReLU feed-forward (paper Fig. 2a)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.layers import Linear, RMSNorm
from repro.nn.module import Module
from repro.nn.attention import MultiHeadAttention
from repro.nn.rope import RotaryEmbedding
from repro.nn.kv_cache import KVCache


class FeedForward(Module):
    """Linear -> ReLU -> Linear.

    The paper's block diagram (Fig. 2a) uses a ReLU FFN; ReLU's positive
    homogeneity (``relu(a*x) = a*relu(x)`` for ``a > 0``) is also what makes
    the channel-rescaling outlier injection in :mod:`repro.models.outliers`
    exactly function-preserving.
    """

    def __init__(self, d_model: int, d_ff: int, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.up = Linear(d_model, d_ff, rng=rng)
        self.down = Linear(d_ff, d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.down(self.up(x).relu())


class TransformerBlock(Module):
    """Pre-norm residual block: x + Attn(Norm(x)); x + FFN(Norm(x))."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int,
                 rope: RotaryEmbedding, rng: np.random.Generator | None = None):
        self.attn_norm = RMSNorm(d_model)
        self.attn = MultiHeadAttention(d_model, num_heads, rope, rng=rng)
        self.ffn_norm = RMSNorm(d_model)
        self.ffn = FeedForward(d_model, d_ff, rng=rng)

    def forward(self, x: Tensor, cache: KVCache | None = None,
                layer_index: int = 0, positions=None, kv_mask=None,
                cache_rows=None, cache_lens=None, cache_starts=None,
                decode_rows=None) -> Tensor:
        x = x + self.attn(self.attn_norm(x), cache=cache, layer_index=layer_index,
                          positions=positions, kv_mask=kv_mask,
                          cache_rows=cache_rows, cache_lens=cache_lens,
                          cache_starts=cache_starts, decode_rows=decode_rows)
        x = x + self.ffn(self.ffn_norm(x))
        return x
