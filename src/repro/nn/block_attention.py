"""Block-resident attention reads for paged KV caches (decode + prefill).

The pre-change decode read gathered every row's whole context into a
dense ``(batch, heads, total, head_dim)`` copy per layer per step (and,
on the quantized cache, re-ran LUT dequantization over every owned
block each time) before a single attention matmul consumed it.  Here the
paged block table itself is the iteration space — the paper's
accelerator dataflow projected into numpy: scores are computed chunk by
chunk against the pool (``q @ pool[ids]ᵀ``), softmax normalisation runs
over the assembled score vector (``O(total)`` floats, no ``head_dim``
factor), and the value contraction streams the same chunks back through
the softmax weights.  Only one chunk of K or V is ever resident.

Numerics: per-chunk score matmuls reduce over ``head_dim`` exactly like
the dense matmul, so scores — and therefore the softmax probabilities —
are bit-identical to the gather path's.  The value contraction
accumulates per-chunk partial products in chunk order; whenever the
context fits one chunk (``chunk_blocks * block_size`` tokens, 128 by
default) that too is the identical monolithic matmul, and beyond it the
summation tree differs only in final-ulp rounding.  The quantized
cache's chunks read through its dequant-block memo, so a hot block is
dequantized once per step across all readers instead of per row.

:func:`block_prefill_attention` extends the same read to multi-query
prefill chunks: the engine's chunked prefill writes a span of prompt
tokens and attends them over the full context through the identical
``context_blocks`` iteration, so prefill and decode share one read path
(and the quantized cache's dequant memo serves prefill re-reads too).
Its score/value geometry is *chunk-grid stable*: every chunk is padded
to the full ``chunk_blocks * block_size`` window, the softmax
denominator accumulates fixed-width per-window partial sums, and the
value GEMMs are always window-wide — so the same query runs
bit-identical accumulation trees whatever the surrounding context
width, which is what makes chunked prefill match one-shot prefill
(padded positions carry exactly-zero probabilities and contribute
exact zeros).
"""

from __future__ import annotations

import numpy as np


def _softmax_probs(scores: np.ndarray, kv_mask: np.ndarray | None,
                   head_dim: int) -> np.ndarray:
    """Scale, mask, and normalise raw ``q @ kᵀ`` scores.

    One shared copy of the exact op sequence the dense gather path runs
    (``* 1/sqrt(d)``, additive mask, max-shift, exp, normalise — see
    :func:`repro.autograd.functional.softmax`), so both block-attention
    paths keep the bit-parity contract by construction; ``-inf`` masked
    slots exponentiate to exact zeros.
    """
    scores = scores * (1.0 / np.sqrt(head_dim))
    if kv_mask is not None:
        scores = scores + kv_mask
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def block_decode_attention(q: np.ndarray, cache, layer_index: int,
                           kv_mask: np.ndarray | None = None,
                           rows: np.ndarray | None = None) -> np.ndarray:
    """Single-token attention over a paged cache, block chunk by chunk.

    Parameters
    ----------
    q:
        ``(n, heads, 1, head_dim)`` float32 query — one decode token per
        (sub-batch) row, already rotated.
    cache:
        A paged cache exposing ``context_blocks(layer, rows, kind)`` and
        ``layer_len`` (see :class:`repro.nn.paged_kv_cache.PagedKVCache`).
        The step's K/V must already be written (``write_token`` with
        ``gather=False``).
    kv_mask:
        Optional additive ``(n, 1, 1, total)`` mask (the engine's
        per-row length mask); masked slots contribute exact zeros.
    rows:
        Cache rows behind ``q``'s entries (``None`` = all rows).

    Returns the ``(n, heads, 1, head_dim)`` float32 context (the
    pre-``wo`` attention output).
    """
    n, heads, _, head_dim = q.shape
    total = cache.layer_len(layer_index)

    if total <= cache.chunk_blocks * cache.block_size:
        # Short contexts fit one chunk: read K and V in a single pass
        # (the FP32 pool reuses the plain gather — the chunk *is* the
        # whole context; the quantized pool assembles through its
        # dequant memo) and run the monolithic attention ops on it —
        # op for op the gather path's math, so the result is
        # bit-identical, while the chunk is still the only materialised
        # copy and stays bounded by the chunk window.
        k, v = cache.context_chunk_pair(layer_index, rows=rows)
        return _softmax_probs(q @ k.transpose(0, 1, 3, 2), kv_mask,
                              head_dim) @ v

    # Pass 1: scores, one chunk at a time.  Each chunk's q @ kᵀ reduces
    # over head_dim exactly as the dense matmul does, so the assembled
    # score vector is bit-identical to the gather path's.
    score_chunks = []
    for start, k_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="k"):
        width = min(k_chunk.shape[2], total - start)
        score_chunks.append(q @ k_chunk[:, :, :width].transpose(0, 1, 3, 2))
    probs = _softmax_probs(np.concatenate(score_chunks, axis=-1), kv_mask,
                           head_dim)

    # Pass 2: stream the value chunks back through the softmax weights
    # (an online accumulation — no rescaling needed, the normaliser is
    # already exact).
    context = np.zeros((n, heads, 1, head_dim), dtype=np.float32)
    for start, v_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="v"):
        width = min(v_chunk.shape[2], total - start)
        context += probs[..., start:start + width] @ v_chunk[:, :, :width]
    return context


def _pad_chunk(chunk: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad a ``(n, heads, w, head_dim)`` chunk to ``width`` keys."""
    if chunk.shape[2] >= width:
        return chunk
    n, heads, w, head_dim = chunk.shape
    padded = np.zeros((n, heads, width, head_dim), dtype=chunk.dtype)
    padded[:, :, :w] = chunk
    return padded


def block_prefill_attention(q: np.ndarray, cache, layer_index: int,
                            kv_mask: np.ndarray | None = None,
                            rows: np.ndarray | None = None) -> np.ndarray:
    """Multi-query prefill attention over a paged cache, chunk by chunk.

    Parameters
    ----------
    q:
        ``(n, heads, seq, head_dim)`` float32 queries — one prefill
        chunk per (sub-batch) row, already rotated.  The chunk's K/V
        must already be written (``prefill_rows`` with ``gather=False``).
    cache:
        A paged cache exposing ``context_blocks``/``layer_len`` (see
        :class:`repro.nn.paged_kv_cache.PagedKVCache`).
    kv_mask:
        Additive ``(n, 1, seq, total)`` per-row causal mask (the
        engine's suffix-prefill mask).  ``None`` allows every written
        position (queries then attend the whole context below
        ``layer_len``).
    rows:
        Cache rows behind ``q``'s entries (``None`` = all rows).

    Returns the ``(n, heads, seq, head_dim)`` float32 context.

    Numerics: scores reduce over ``head_dim`` exactly like the dense
    matmul, so they are bit-identical to the gather path's.  Softmax
    and the value contraction run at *chunk-grid* geometry — every
    chunk padded to the ``chunk_blocks * block_size`` window, the
    softmax denominator accumulated window by window, the value GEMMs
    always window-wide — so a given query's reduction trees do not
    depend on how much context happens to sit in the cache beyond what
    its mask allows.  Padded/masked positions exponentiate to exact
    zeros and contribute exact zero partial sums and products, which is
    what keeps a prompt position's attention output identical whether
    its chunk was forwarded alone (chunked prefill) or as part of the
    whole prompt (one-shot prefill).
    """
    n, heads, seq, head_dim = q.shape
    total = cache.layer_len(layer_index)
    window = cache.chunk_blocks * cache.block_size
    grid = max(window, -(-total // window) * window)
    if kv_mask is None:
        kv_mask = np.where(np.arange(grid) < total, 0.0,
                           -np.inf).astype(np.float32)[None, None, None, :]
    elif kv_mask.shape[-1] < grid:
        pad_shape = kv_mask.shape[:-1] + (grid - kv_mask.shape[-1],)
        kv_mask = np.concatenate(
            [kv_mask, np.full(pad_shape, -np.inf, dtype=np.float32)],
            axis=-1)

    # Pass 1: scores over the padded chunk grid.  Chunk starts are
    # window-aligned, so padding each chunk to the window pads the
    # assembled scores to exactly ``grid`` columns.
    score_chunks = []
    for start, k_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="k"):
        k_chunk = _pad_chunk(k_chunk, window)
        score_chunks.append(q @ k_chunk.transpose(0, 1, 3, 2))

    # Scale/mask/shift/exp exactly like :func:`_softmax_probs`, but
    # normalise with a *window-blocked* denominator: every window's
    # partial sum runs the fixed width-``window`` reduction tree and the
    # partials accumulate sequentially, so a row's normaliser does not
    # depend on the grid width at all — windows beyond the row's masked
    # context hold exact zeros and add exact zeros.  A plain
    # ``exp.sum(-1)`` would re-shape its pairwise summation tree with the
    # grid, leaking *other* rows' context lengths into this row's ulps
    # (the grid tracks the cache-wide maximum, which a chunked and a
    # one-shot run grow on different step schedules).
    scores = np.concatenate(score_chunks, axis=-1) * (1.0 / np.sqrt(head_dim))
    scores = scores + kv_mask
    exp = np.exp(scores - scores.max(axis=-1, keepdims=True))
    denom = np.zeros(exp.shape[:-1], dtype=np.float32)
    for w in range(0, grid, window):
        denom += exp[..., w:w + window].sum(axis=-1)
    probs = exp / denom[..., None]

    # Pass 2: stream the value chunks back through the softmax weights
    # at full window width (masked positions hold exactly-zero weights).
    context = np.zeros((n, heads, seq, head_dim), dtype=np.float32)
    for start, v_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="v"):
        v_chunk = _pad_chunk(v_chunk, window)
        context += probs[..., start:start + window] @ v_chunk
    return context
