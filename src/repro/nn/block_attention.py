"""Block-resident single-token decode attention for paged KV caches.

The pre-change decode read gathered every row's whole context into a
dense ``(batch, heads, total, head_dim)`` copy per layer per step (and,
on the quantized cache, re-ran LUT dequantization over every owned
block each time) before a single attention matmul consumed it.  Here the
paged block table itself is the iteration space — the paper's
accelerator dataflow projected into numpy: scores are computed chunk by
chunk against the pool (``q @ pool[ids]ᵀ``), softmax normalisation runs
over the assembled score vector (``O(total)`` floats, no ``head_dim``
factor), and the value contraction streams the same chunks back through
the softmax weights.  Only one chunk of K or V is ever resident.

Numerics: per-chunk score matmuls reduce over ``head_dim`` exactly like
the dense matmul, so scores — and therefore the softmax probabilities —
are bit-identical to the gather path's.  The value contraction
accumulates per-chunk partial products in chunk order; whenever the
context fits one chunk (``chunk_blocks * block_size`` tokens, 128 by
default) that too is the identical monolithic matmul, and beyond it the
summation tree differs only in final-ulp rounding.  The quantized
cache's chunks read through its dequant-block memo, so a hot block is
dequantized once per step across all readers instead of per row.
"""

from __future__ import annotations

import numpy as np


def _softmax_probs(scores: np.ndarray, kv_mask: np.ndarray | None,
                   head_dim: int) -> np.ndarray:
    """Scale, mask, and normalise raw ``q @ kᵀ`` scores.

    One shared copy of the exact op sequence the dense gather path runs
    (``* 1/sqrt(d)``, additive mask, max-shift, exp, normalise — see
    :func:`repro.autograd.functional.softmax`), so both block-attention
    paths keep the bit-parity contract by construction; ``-inf`` masked
    slots exponentiate to exact zeros.
    """
    scores = scores * (1.0 / np.sqrt(head_dim))
    if kv_mask is not None:
        scores = scores + kv_mask
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def block_decode_attention(q: np.ndarray, cache, layer_index: int,
                           kv_mask: np.ndarray | None = None,
                           rows: np.ndarray | None = None) -> np.ndarray:
    """Single-token attention over a paged cache, block chunk by chunk.

    Parameters
    ----------
    q:
        ``(n, heads, 1, head_dim)`` float32 query — one decode token per
        (sub-batch) row, already rotated.
    cache:
        A paged cache exposing ``context_blocks(layer, rows, kind)`` and
        ``layer_len`` (see :class:`repro.nn.paged_kv_cache.PagedKVCache`).
        The step's K/V must already be written (``write_token`` with
        ``gather=False``).
    kv_mask:
        Optional additive ``(n, 1, 1, total)`` mask (the engine's
        per-row length mask); masked slots contribute exact zeros.
    rows:
        Cache rows behind ``q``'s entries (``None`` = all rows).

    Returns the ``(n, heads, 1, head_dim)`` float32 context (the
    pre-``wo`` attention output).
    """
    n, heads, _, head_dim = q.shape
    total = cache.layer_len(layer_index)

    if total <= cache.chunk_blocks * cache.block_size:
        # Short contexts fit one chunk: read K and V in a single pass
        # (the FP32 pool reuses the plain gather — the chunk *is* the
        # whole context; the quantized pool assembles through its
        # dequant memo) and run the monolithic attention ops on it —
        # op for op the gather path's math, so the result is
        # bit-identical, while the chunk is still the only materialised
        # copy and stays bounded by the chunk window.
        k, v = cache.context_chunk_pair(layer_index, rows=rows)
        return _softmax_probs(q @ k.transpose(0, 1, 3, 2), kv_mask,
                              head_dim) @ v

    # Pass 1: scores, one chunk at a time.  Each chunk's q @ kᵀ reduces
    # over head_dim exactly as the dense matmul does, so the assembled
    # score vector is bit-identical to the gather path's.
    score_chunks = []
    for start, k_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="k"):
        width = min(k_chunk.shape[2], total - start)
        score_chunks.append(q @ k_chunk[:, :, :width].transpose(0, 1, 3, 2))
    probs = _softmax_probs(np.concatenate(score_chunks, axis=-1), kv_mask,
                           head_dim)

    # Pass 2: stream the value chunks back through the softmax weights
    # (an online accumulation — no rescaling needed, the normaliser is
    # already exact).
    context = np.zeros((n, heads, 1, head_dim), dtype=np.float32)
    for start, v_chunk in cache.context_blocks(layer_index, rows=rows,
                                               kind="v"):
        width = min(v_chunk.shape[2], total - start)
        context += probs[..., start:start + width] @ v_chunk[:, :, :width]
    return context
