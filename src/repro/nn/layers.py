"""Basic layers: Linear, Embedding, RMSNorm.

``Linear`` is the quantization surface of the whole reproduction: every
weight-quantization method in :mod:`repro.quant` and :mod:`repro.core`
rewrites ``Linear.weight`` (out_features x in_features, row = output
channel) and attaches its bit-accounting metadata to the layer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = False,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        # Gaussian init: trained LLM weights are heavy-tailed/Gaussian, and
        # the quantization-grid behaviour the paper studies depends on it.
        scale = 1.0 / np.sqrt(in_features)
        weight = rng.standard_normal((out_features, in_features)) * scale
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight.astype(np.float32))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        # Populated by quantizers (see repro.quant.base.QuantRecord).
        self.quant_record = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        tag = "" if self.quant_record is None else f", quant={self.quant_record.method}"
        return f"Linear({self.in_features}, {self.out_features}{tag})"


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            rng.standard_normal((num_embeddings, dim)).astype(np.float32) * 0.02)

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class RMSNorm(Module):
    """LLaMA-style RMS normalisation with learned gain."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.rms_norm(x, self.gain, eps=self.eps)
