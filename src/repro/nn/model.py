"""Decoder-only LLaMA-style language model."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict

import numpy as np

from repro.autograd import Tensor, no_grad, functional as F
from repro.nn.layers import Linear, Embedding, RMSNorm
from repro.nn.module import Module
from repro.nn.rope import RotaryEmbedding
from repro.nn.transformer import TransformerBlock
from repro.nn.kv_cache import KVCache


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters.

    ``name`` identifies zoo entries (e.g. ``llama-sim-7b``); the remaining
    fields are the standard decoder-only knobs.
    """

    name: str = "custom"
    vocab_size: int = 512
    d_model: int = 128
    num_layers: int = 4
    num_heads: int = 4
    d_ff: int = 512
    max_seq_len: int = 512
    rope_theta: float = 10000.0
    seed: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "ModelConfig":
        return ModelConfig(**data)


class TransformerLM(Module):
    """Token embedding, N transformer blocks, final norm, LM head.

    The LM head and embeddings stay in high precision (as in the paper and
    its baselines); the quantization surface is the per-block linear
    layers, enumerated by :meth:`quantizable_linears`.
    """

    def __init__(self, config: ModelConfig):
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.embed = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.rope = RotaryEmbedding(config.d_model // config.num_heads,
                                    config.max_seq_len, theta=config.rope_theta)
        self.blocks = [
            TransformerBlock(config.d_model, config.num_heads, config.d_ff,
                             self.rope, rng=rng)
            for _ in range(config.num_layers)
        ]
        self.final_norm = RMSNorm(config.d_model)
        self.head = Linear(config.d_model, config.vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray, cache: KVCache | None = None,
                positions: np.ndarray | None = None,
                kv_mask: np.ndarray | None = None,
                cache_rows: np.ndarray | None = None,
                cache_lens: np.ndarray | None = None,
                cache_starts: np.ndarray | None = None,
                decode_rows: np.ndarray | None = None,
                logits_positions: np.ndarray | None = None) -> Tensor:
        """Return logits ``(batch, seq, vocab)`` for integer ``tokens``.

        ``positions``/``kv_mask``/``cache_rows``/``cache_lens``/
        ``cache_starts``/``decode_rows`` thread the serving engine's
        ragged-batch decode (``decode_rows``: active-slot sub-batch decode
        into specific cache rows), slot-targeted prefill, and
        prefix-sharing suffix prefill (``cache_starts``: per-row counts of
        adopted shared-context tokens the new K/V are appended after)
        through to attention (see
        :class:`repro.nn.attention.MultiHeadAttention`).

        ``logits_positions`` (``(batch,)`` per-row indices into ``seq``)
        is the lean prefill path: the final norm and vocab projection run
        only at each row's selected position, returning ``(batch, 1,
        vocab)``, so prefill cost stops scaling with ``vocab x seq``.
        Generation only ever samples from one position per row — the rest
        of the ``(batch, seq, vocab)`` logits would be computed and
        discarded.  A *negative* entry skips the head for that row
        entirely (its logits return as zeros): chunked prefill forwards
        mid-prompt chunks whose rows sample nothing this step.
        Inference-only: the gather detaches from autograd.
        """
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        x = self.embed(tokens)
        for index, block in enumerate(self.blocks):
            x = block(x, cache=cache, layer_index=index, positions=positions,
                      kv_mask=kv_mask, cache_rows=cache_rows,
                      cache_lens=cache_lens, cache_starts=cache_starts,
                      decode_rows=decode_rows)
        if logits_positions is not None:
            last = np.asarray(logits_positions, dtype=np.int64)
            keep = np.flatnonzero(last >= 0)
            if len(keep) < len(last):
                logits = np.zeros((x.shape[0], 1, self.config.vocab_size),
                                  dtype=np.float32)
                if len(keep):
                    picked = Tensor(x.data[keep, last[keep]][:, None])
                    logits[keep] = self.head(self.final_norm(picked)).data
                return Tensor(logits)
            rows = np.arange(x.shape[0])
            x = Tensor(x.data[rows, last][:, None])
        return self.head(self.final_norm(x))

    # ------------------------------------------------------------------ #
    # quantization surface
    # ------------------------------------------------------------------ #
    def quantizable_linears(self) -> list[tuple[str, Linear]]:
        """Every linear layer the paper's methods quantize (attn + FFN)."""
        layers = []
        for i, block in enumerate(self.blocks):
            layers.extend([
                (f"blocks.{i}.attn.wq", block.attn.wq),
                (f"blocks.{i}.attn.wk", block.attn.wk),
                (f"blocks.{i}.attn.wv", block.attn.wv),
                (f"blocks.{i}.attn.wo", block.attn.wo),
                (f"blocks.{i}.ffn.up", block.ffn.up),
                (f"blocks.{i}.ffn.down", block.ffn.down),
            ])
        return layers

    def weight_bytes(self, bits_per_weight: float = 16.0) -> int:
        """Model-weight footprint at a given storage precision."""
        return int(self.num_parameters() * bits_per_weight / 8)

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(self, prompt: np.ndarray, max_new_tokens: int,
                 temperature: float = 1.0,
                 rng: np.random.Generator | None = None) -> np.ndarray:
        """Sample a continuation using the KV cache (greedy if T == 0)."""
        rng = rng or np.random.default_rng(0)
        prompt = np.asarray(prompt).reshape(-1)
        cache = KVCache(self.config.num_layers)
        tokens = list(prompt)
        with no_grad():
            logits = self.forward(prompt[None, :], cache=cache)
            for step in range(max_new_tokens):
                last = logits.data[0, -1]
                if temperature <= 0.0:
                    next_token = int(last.argmax())
                else:
                    scaled = last / temperature
                    scaled -= scaled.max()
                    probs = np.exp(scaled)
                    probs /= probs.sum()
                    next_token = int(rng.choice(len(probs), p=probs))
                tokens.append(next_token)
                if step + 1 < max_new_tokens:
                    logits = self.forward(np.array([[next_token]]), cache=cache)
        return np.asarray(tokens, dtype=np.int64)
