"""Rotary position embeddings (RoPE).

Dimensions are rotated in interleaved pairs ``(2i, 2i+1)``: a rotation by
angle ``theta_i * position``.  Because rotation acts on each pair as an
orthogonal 2x2 matrix, uniformly scaling *both* members of a pair commutes
with RoPE — the property :mod:`repro.models.outliers` relies on for
function-preserving outlier injection into Q/K projections.

The application is implemented as an autograd primitive; the backward pass
is rotation by the opposite angle.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


class RotaryEmbedding:
    """Precomputed cos/sin tables for a head dimension.

    The full trig tables are built once up to ``max_seq_len`` at
    construction; per-call lookups are zero-copy views memoised by
    ``(offset, seq)`` so the decode hot loop never re-slices or
    re-validates the tables for positions it has already visited.
    """

    def __init__(self, head_dim: int, max_seq_len: int, theta: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        inv_freq = theta ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
        positions = np.arange(max_seq_len, dtype=np.float64)
        angles = np.outer(positions, inv_freq)  # (T, head_dim/2)
        self.cos = np.cos(angles).astype(np.float32)
        self.sin = np.sin(angles).astype(np.float32)
        self._slices: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}

    def tables(self, position_offset: int, seq_len: int
               ) -> tuple[np.ndarray, np.ndarray]:
        """Memoised ``(cos, sin)`` views for ``[offset, offset + seq)``."""
        key = (position_offset, seq_len)
        hit = self._slices.get(key)
        if hit is None:
            if position_offset + seq_len > self.max_seq_len:
                raise ValueError(
                    f"sequence [{position_offset}, {position_offset + seq_len}) "
                    f"exceeds max_seq_len={self.max_seq_len}")
            hit = (self.cos[position_offset:position_offset + seq_len],
                   self.sin[position_offset:position_offset + seq_len])
            self._slices[key] = hit
        return hit

    def __call__(self, x: Tensor, position_offset: int = 0,
                 positions: np.ndarray | None = None) -> Tensor:
        """Rotate ``x`` of shape ``(..., T, head_dim)`` by position.

        With ``positions`` (an integer ``(batch, T)`` array of absolute
        positions, for ``x`` of shape ``(batch, heads, T, head_dim)``)
        each batch row is rotated by its own positions — the ragged-batch
        decode path of the serving engine.
        """
        if positions is not None:
            return self._rotate_positions(x, positions)
        cos, sin = self.tables(position_offset, x.shape[-2])
        return _apply_rotation(x, cos, sin)

    def _rotate_positions(self, x: Tensor, positions: np.ndarray) -> Tensor:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.min() < 0 or positions.max() >= self.max_seq_len:
            raise ValueError(
                f"positions outside [0, {self.max_seq_len}): "
                f"[{positions.min()}, {positions.max()}]")
        cos = self.cos[positions][:, None]  # (batch, 1, T, head_dim/2)
        sin = self.sin[positions][:, None]
        return _apply_rotation(x, cos, sin)


def _rotate(data: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    even = data[..., 0::2]
    odd = data[..., 1::2]
    out = np.empty_like(data)
    out[..., 0::2] = even * cos - odd * sin
    out[..., 1::2] = even * sin + odd * cos
    return out


def _apply_rotation(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    out = x._make(_rotate(x.data, cos, sin), (x,))
    if out.requires_grad:
        def _backward(g, a=x, cos=cos, sin=sin):
            # Transpose of a rotation is rotation by the negative angle.
            a._accumulate(_rotate(g, cos, -sin))
        out._backward = _backward
    return out
