"""Rotary position embeddings (RoPE).

Dimensions are rotated in interleaved pairs ``(2i, 2i+1)``: a rotation by
angle ``theta_i * position``.  Because rotation acts on each pair as an
orthogonal 2x2 matrix, uniformly scaling *both* members of a pair commutes
with RoPE — the property :mod:`repro.models.outliers` relies on for
function-preserving outlier injection into Q/K projections.

The application is implemented as an autograd primitive; the backward pass
is rotation by the opposite angle.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


class RotaryEmbedding:
    """Precomputed cos/sin tables for a head dimension."""

    def __init__(self, head_dim: int, max_seq_len: int, theta: float = 10000.0):
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        inv_freq = theta ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
        positions = np.arange(max_seq_len, dtype=np.float64)
        angles = np.outer(positions, inv_freq)  # (T, head_dim/2)
        self.cos = np.cos(angles).astype(np.float32)
        self.sin = np.sin(angles).astype(np.float32)

    def __call__(self, x: Tensor, position_offset: int = 0) -> Tensor:
        """Rotate ``x`` of shape ``(..., T, head_dim)`` by position."""
        seq_len = x.shape[-2]
        if position_offset + seq_len > self.max_seq_len:
            raise ValueError(
                f"sequence [{position_offset}, {position_offset + seq_len}) exceeds "
                f"max_seq_len={self.max_seq_len}")
        cos = self.cos[position_offset:position_offset + seq_len]
        sin = self.sin[position_offset:position_offset + seq_len]
        return _apply_rotation(x, cos, sin)


def _rotate(data: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    even = data[..., 0::2]
    odd = data[..., 1::2]
    out = np.empty_like(data)
    out[..., 0::2] = even * cos - odd * sin
    out[..., 1::2] = even * sin + odd * cos
    return out


def _apply_rotation(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    out = x._make(_rotate(x.data, cos, sin), (x,))
    if out.requires_grad:
        def _backward(g, a=x, cos=cos, sin=sin):
            # Transpose of a rotation is rotation by the negative angle.
            a._accumulate(_rotate(g, cos, -sin))
        out._backward = _backward
    return out
