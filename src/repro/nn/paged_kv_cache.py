"""Paged, block-granular KV storage for the serving engine.

The rectangular :class:`~repro.nn.kv_cache.KVCache` allocates
``batch x capacity`` time slots per layer, so every short sequence pays
for the longest row and cache memory — not compute — caps the decode
batch size.  Here K/V live in fixed-size *blocks* (``block_size`` tokens)
drawn from one shared pool per layer; each batch row owns an ordered
block table, blocks are handed out as rows grow and returned to the free
list when the engine retires a sequence.  Cache memory therefore tracks
the *sum of live tokens* (rounded up to blocks) instead of
``batch x max_len`` — the PagedAttention discipline, scaled down to
numpy.

Two variants share the interface of the rectangular cache (``append`` /
``write_token`` / ``write_rows`` plus ``free_rows``), so attention and
the model are agnostic to which cache is threaded through:

* :class:`PagedKVCache` stores blocks in FP32.  Reads gather whole
  blocks and return the same float values a rectangular cache would, so
  greedy engine output stays token-identical to the sequential path.
* :class:`QuantizedPagedKVCache` stores *full* blocks in the FineQ
  weight format of :mod:`repro.core` — cluster-of-3 codes packed at 6
  bits per cluster with a shared 2-bit pair index and one FP16 scale per
  ``(head, dim)`` channel, clustered along the token axis — extending
  the paper's 2.33-bit memory story from weights to the KV cache.  The
  newest (current) block of every row stays in an FP32 write buffer and
  is quantized wholesale once the row starts its next block, so decode
  always reads exact values for the freshest ``<= block_size`` tokens
  and FineQ reconstructions for older context.

Block tables are shared across layers (block ``i`` of a row addresses
every layer's pool), which keeps allocation single-sourced while the
per-layer write/read state may lag mid-forward.  Freed and padded table
slots may be gathered before they are reused; they only ever contain
finite stale values (pools are zero-initialised), which the engine's
additive key mask turns into exact-zero attention contributions.

Blocks are *reference counted* so the serving engine's prefix store can
alias one physical block into many rows' tables (vLLM-style prefix
sharing): :meth:`PagedKVCache.ref_blocks` / :meth:`release_blocks` move
the count, :meth:`adopt_prefix` points a fresh row at an already-written
block chain, :meth:`share_block` hands out a reference to a row's block
(quantized caches freeze the FP32 write buffer into a pool block first),
and :meth:`copy_block` is the copy-on-write primitive used when a new
request diverges *inside* a partially-filled shared block.  A block
returns to the free list only when its last reference drops, so retiring
or cancelling a reader frees exactly the blocks it owned exclusively.

Two read paths serve attention:

* :meth:`_context` gathers the rows' whole context into dense
  ``(batch, heads, total, head_dim)`` arrays — the prefill read (suffix
  attention needs the full context as one tensor) and the pre-block-
  attention decode path, kept as the pinned reference.
* :meth:`context_blocks` iterates the same context chunk by chunk
  (``chunk_blocks`` blocks at a time) for
  :func:`repro.nn.block_attention.block_decode_attention`, so a
  single-token decode never materialises the dense copy.  On the
  quantized cache the chunk assembly reads dequantized blocks through a
  :class:`DequantBlockCache`: quantized pool blocks are immutable once
  written (writes go through the FP32 buffer; COW copies get fresh
  ids), so a block's dequantized values are memoised by ``(layer,
  block id)`` under a byte budget with LRU eviction and invalidated
  whenever a payload is rewritten or the block is freed.  A shared
  system-prompt block therefore dequantizes once per step across all
  its readers — and once *ever* while it stays cache-resident —
  instead of ``batch x layers x steps`` times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.clusters import cluster_weights
from repro.core.encoding import encode_channels
from repro.core.packing import (CLUSTERS_PER_GROUP, GROUP_BYTES,
                                decode_payload, pack_matrix)

#: Tokens per cache block (vLLM's default granularity).
DEFAULT_BLOCK_SIZE = 16

#: Blocks per :meth:`PagedKVCache.context_blocks` chunk.  128 tokens at
#: the default block size: wide enough to amortize the per-chunk python
#: dispatch, narrow enough that decode scratch stays a small constant
#: fraction of a long context's dense gather.
DEFAULT_CHUNK_BLOCKS = 8

#: Default byte budget for the quantized cache's dequantized-block LRU.
DEFAULT_DEQUANT_CACHE_BYTES = 128 * 2 ** 20


@dataclass
class KVReadStats:
    """Decode-read accounting accumulated by :meth:`context_blocks`.

    ``logical_bytes`` is what the pre-block-attention gather would have
    materialised (dense FP32 K+V for every row's full context, per
    layer); ``streamed_bytes`` is what the block iteration actually
    fetched from cache storage (whole chunks for FP32 pools; quantized
    payload+scale bytes for dequant-cache misses plus FP32 write-buffer
    bytes for current blocks — hits stream nothing, which is the number
    the accelerator projection credits); ``peak_scratch_bytes`` is the
    largest transient chunk scratch any single read materialised; and
    ``bytes_not_gathered`` is the dense copy that never existed
    concurrently (``logical`` minus one resident chunk, per call).
    ``dequant_hits`` /
    ``dequant_misses`` count per-reader block lookups in the
    :class:`DequantBlockCache` (a block missed once but read by sixteen
    rows in the same chunk counts one miss and fifteen hits).
    """

    logical_bytes: int = 0
    streamed_bytes: int = 0
    peak_scratch_bytes: int = 0
    bytes_not_gathered: int = 0
    dequant_hits: int = 0
    dequant_misses: int = 0


class DequantBlockCache:
    """LRU memo of dequantized quantized-pool blocks, keyed by
    ``(layer, block id)``.

    Quantized pool blocks are immutable once written, so their
    dequantized ``(heads, block, head_dim)`` K/V values can be reused
    across readers, layers' worth of decode steps, and sessions of the
    same engine.  Entries live in slot-pooled value stores (one K and
    one V array) so chunk assembly is a single fancy-index gather; the
    slot count is ``budget_bytes`` divided by the per-entry footprint,
    grown lazily and recycled LRU.  :meth:`invalidate` drops a block's
    entries in every layer — called whenever a payload is rewritten or
    the block returns to the free list, so a recycled block id can never
    serve stale values.
    """

    def __init__(self, num_layers: int, heads: int, block_size: int,
                 head_dim: int, budget_bytes: int):
        self.num_layers = num_layers
        self.entry_bytes = 2 * heads * block_size * head_dim * 4  # K + V
        self.capacity = max(0, int(budget_bytes) // self.entry_bytes)
        self._shape = (heads, block_size, head_dim)
        self._store_k = np.zeros((0,) + self._shape, dtype=np.float32)
        self._store_v = np.zeros((0,) + self._shape, dtype=np.float32)
        # (layer, block id) -> slot, as an array so a chunk's lookups are
        # one fancy index instead of per-id dict probes (-1 = absent).
        self._slot_table = np.full((num_layers, 0), -1, dtype=np.int64)
        self._entries = 0
        self._key_of: list[tuple[int, int] | None] = []
        self._occupied = np.zeros(0, dtype=bool)
        self._last_used = np.zeros(0, dtype=np.int64)
        self._free: list[int] = []
        self._tick = 0
        self.evictions = 0

    def __len__(self) -> int:
        return self._entries

    def used_bytes(self) -> int:
        return self._entries * self.entry_bytes

    def slot(self, layer: int, block_id: int) -> int:
        """Slot holding ``(layer, block_id)``, or ``-1`` when absent."""
        if int(block_id) >= self._slot_table.shape[1]:
            return -1
        return int(self._slot_table[layer, int(block_id)])

    def _ensure_blocks(self, max_block: int) -> None:
        width = self._slot_table.shape[1]
        if max_block < width:
            return
        wider = np.full((self.num_layers, max(max_block + 1, 2 * width)),
                        -1, dtype=np.int64)
        wider[:, :width] = self._slot_table
        self._slot_table = wider

    def _grow(self, needed: int) -> None:
        """Allocate more slots (amortized doubling, capped at capacity)."""
        have = len(self._key_of)
        new = min(self.capacity, max(needed, 2 * have, 16))
        if new <= have:
            return
        for name in ("_store_k", "_store_v"):
            store = getattr(self, name)
            grown = np.zeros((new,) + self._shape, dtype=np.float32)
            grown[:have] = store
            setattr(self, name, grown)
        used = self._last_used
        self._last_used = np.zeros(new, dtype=np.int64)
        self._last_used[:have] = used
        occupied = self._occupied
        self._occupied = np.zeros(new, dtype=bool)
        self._occupied[:have] = occupied
        self._free.extend(range(have, new))
        self._key_of.extend([None] * (new - have))

    def _claim_slots(self, count: int, tick: int) -> list[int]:
        """Up to ``count`` free-or-evicted slots (never ones used at
        ``tick`` — entries read in the current lookup stay pinned)."""
        # Grow only when the free list cannot cover the request (lazy:
        # the store tracks the working set, not the whole budget).
        if len(self._free) < count and len(self._key_of) < self.capacity:
            self._grow(len(self._key_of) - len(self._free) + count)
        slots = [self._free.pop() for _ in range(min(count, len(self._free)))]
        short = count - len(slots)
        if short > 0 and len(self._key_of):
            # Vectorized victim pick: occupied slots not touched this
            # lookup, the `short` least-recently-used of them (partial
            # partition, not a full sort — this runs on the decode hot
            # path whenever the working set outgrows the budget).
            candidates = np.nonzero(self._occupied
                                    & (self._last_used < tick))[0]
            if len(candidates):
                take = min(short, len(candidates))
                order = np.argpartition(self._last_used[candidates],
                                        take - 1)[:take]
                for slot in candidates[order]:
                    slot = int(slot)
                    layer, block = self._key_of[slot]
                    self._slot_table[layer, block] = -1
                    self._key_of[slot] = None
                    self._occupied[slot] = False
                    self._entries -= 1
                    self.evictions += 1
                    slots.append(slot)
        return slots

    def lookup(self, layer: int, ids: np.ndarray, kind: str,
               dequant_pair, dequant_kind
               ) -> tuple[np.ndarray, int, int]:
        """Dequantized values for block ``ids`` (duplicates welcome —
        many rows reading one shared block is the expected shape).

        Returns ``((len(ids), heads, block, head_dim) float32, misses,
        paired)``: ``misses`` counts the *unique* blocks that had to be
        dequantized — sixteen readers of one cold shared block are one
        miss (the fifteen served from its fresh dequant count as hits,
        and the streamed-bytes charge stays one payload fetch) — and
        ``paired <= misses`` is how many of them fetched both operands.

        Slots are claimed *before* dequantizing: blocks that win a slot
        dequantize both operands via ``dequant_pair(ids) -> (k, v)`` (so
        the sibling pass hits), while blocks the budget cannot pin
        dequantize only the requested operand via ``dequant_kind(ids)``
        — a saturated cache therefore degrades to the cache-disabled
        cost instead of paying double LUT work while thrashing.
        """
        self._tick += 1
        tick = self._tick
        ids = np.asarray(ids, dtype=np.int64)
        self._ensure_blocks(int(ids.max(initial=0)))
        slots = self._slot_table[layer, ids]
        store = self._store_k if kind == "k" else self._store_v
        hit = slots >= 0
        out = np.empty((len(ids),) + self._shape, dtype=np.float32)
        if hit.any():
            hit_slots = slots[hit]
            out[hit] = store[hit_slots]
            self._last_used[hit_slots] = tick
        misses = m = 0
        if not hit.all():
            miss = ~hit
            uniq, inverse = np.unique(ids[miss], return_inverse=True)
            misses = len(uniq)
            granted = self._claim_slots(misses, tick)
            vals = np.empty((misses,) + self._shape, dtype=np.float32)
            m = len(granted)
            if m:
                k_vals, v_vals = dequant_pair(uniq[:m])
                vals[:m] = k_vals if kind == "k" else v_vals
                for i, slot in enumerate(granted):
                    self._store_k[slot] = k_vals[i]
                    self._store_v[slot] = v_vals[i]
                    block = int(uniq[i])
                    self._slot_table[layer, block] = slot
                    self._key_of[slot] = (layer, block)
                    self._occupied[slot] = True
                    self._last_used[slot] = tick
                    self._entries += 1
            if m < misses:
                vals[m:] = dequant_kind(uniq[m:])
            out[miss] = vals[inverse]
        return out, misses, m

    def invalidate(self, block_id: int, layer: int | None = None) -> None:
        """Drop the block's entries — the stale dequant must never be
        served again.  ``layer`` scopes the drop to one layer's entry (a
        payload rewrite touches one layer's pool; the sibling layers'
        cached values stay valid); ``None`` sweeps every layer (block
        freed or recycled — the id means something new everywhere)."""
        block_id = int(block_id)
        if block_id >= self._slot_table.shape[1]:
            return
        layers = range(self.num_layers) if layer is None else (layer,)
        for one in layers:
            slot = int(self._slot_table[one, block_id])
            if slot >= 0:
                self._slot_table[one, block_id] = -1
                self._key_of[slot] = None
                self._occupied[slot] = False
                self._last_used[slot] = 0
                self._free.append(slot)
                self._entries -= 1


def quantize_kv_block(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """FineQ-encode ``(n, heads, block, head_dim)`` FP32 K/V blocks.

    Each ``(head, dim)`` pair is a channel; its ``block`` tokens are
    clustered in threes along the token axis and run through the paper's
    pipeline (outlier schemes -> pair harmonization -> Eq. 1 channel
    scale -> grid rounding -> 6-bit packing).  Returns ``(payload,
    scales)`` of shapes ``(n * heads * head_dim, groups * GROUP_BYTES)``
    uint8 and ``(n * heads * head_dim,)`` float16.
    """
    n, heads, block, head_dim = blocks.shape
    matrix = blocks.transpose(0, 1, 3, 2).reshape(n * heads * head_dim, block)
    clusters, _pad = cluster_weights(matrix)
    codes, schemes, scales = encode_channels(clusters)
    packed = pack_matrix(codes, schemes, scales.reshape(-1), matrix.shape)
    return packed.payload, packed.scales


def dequantize_kv_channels(payload: np.ndarray, scales: np.ndarray,
                           block_size: int) -> np.ndarray:
    """Inverse of :func:`quantize_kv_block` at the channel-matrix level.

    ``payload``/``scales`` are ``(channels, groups * GROUP_BYTES)`` and
    ``(channels,)``; returns ``(channels, block_size)`` float32.
    """
    codes, _ = decode_payload(payload)
    values = codes.astype(np.float32) * scales.astype(np.float32)[:, None, None]
    return values.reshape(len(payload), -1)[:, :block_size]


def _blocks_needed(tokens: int | np.ndarray, block_size: int):
    return -(-tokens // block_size)


class PagedKVCache:
    """Block-pooled FP32 K/V storage with per-row block tables.

    Parameters
    ----------
    num_layers:
        Transformer depth (one K and one V pool per layer).
    batch:
        Number of cache slots; the paged cache always pins its batch
        (it is a serving-engine object).
    block_size:
        Tokens per block.
    initial_blocks:
        Pool size at first write; when the free list runs dry the pool
        grows by half (floored at ``batch`` blocks) — amortized like the
        rectangular cache's doubling, but fine-grained enough that the
        physical footprint tracks live-token demand instead of jumping
        straight to the ``batch x max_len`` rectangle.
    max_blocks:
        Soft pool budget.  Writes never fail — the pool still grows when
        forced — but :meth:`available_blocks` reports the remaining
        headroom so the engine's scheduler can throttle admission or
        preempt low-priority rows instead of overshooting the budget.
    block_decode:
        Advertise the block-resident decode read path: attention then
        routes single-token decodes through :meth:`context_blocks`
        instead of the dense :meth:`_context` gather.
    chunk_blocks:
        Blocks gathered per :meth:`context_blocks` chunk (the decode
        scratch granularity).
    """

    def __init__(self, num_layers: int, batch: int,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_blocks: int | None = None,
                 max_blocks: int | None = None,
                 block_decode: bool = True,
                 chunk_blocks: int = DEFAULT_CHUNK_BLOCKS):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if chunk_blocks < 1:
            raise ValueError("chunk_blocks must be >= 1")
        self.num_layers = num_layers
        self.batch = batch
        self.block_size = block_size
        self.initial_blocks = initial_blocks or 2 * batch
        self.max_blocks = max_blocks
        self.block_decode = block_decode
        self.chunk_blocks = chunk_blocks
        self._heads: int | None = None
        self._head_dim = 0
        self._total_blocks = 0
        self._free: list[int] = []
        self._refcount = np.zeros(0, dtype=np.int64)
        self._tables = np.zeros((batch, 0), dtype=np.int64)
        self._blocks_per_row = np.zeros(batch, dtype=np.int64)
        self._row_len = np.zeros(batch, dtype=np.int64)
        self._row_index = np.arange(batch)
        self._lengths = [0] * num_layers
        # Block tables are shared across layers, so a decode step's
        # (rows -> block ids) resolution is computed once (at the first
        # layer's read) and reused by every layer; any table mutation
        # clears the memo (see _invalidate_ids_memo).
        self._ids_memo: dict[tuple[int, bytes | None], np.ndarray] = {}
        self._read_stats = KVReadStats()

    # ------------------------------------------------------------------ #
    # storage management
    # ------------------------------------------------------------------ #
    def _init_storage(self, like: np.ndarray) -> None:
        self._heads = int(like.shape[1])
        self._head_dim = int(like.shape[3])
        self._setup_layers()
        self._grow_pool(max(self.initial_blocks, 1))

    def _check_batch(self, data: np.ndarray) -> None:
        if data.shape[0] != self.batch:
            raise ValueError(f"batch mismatch: cache pinned to {self.batch} "
                             f"rows, got {data.shape[0]}")

    def _resolve_rows(self, data: np.ndarray,
                      rows: np.ndarray | None) -> np.ndarray:
        """Validated int64 row indices for a write (``None`` = all rows)."""
        if rows is None:
            self._check_batch(data)
            return self._row_index
        row_idx = np.asarray(rows, dtype=np.int64)
        if data.shape[0] != len(row_idx):
            raise ValueError(f"sub-batch mismatch: {len(row_idx)} rows, "
                             f"got {data.shape[0]} k/v entries")
        return row_idx

    def _setup_layers(self) -> None:
        self._pool_k: list[np.ndarray | None] = [None] * self.num_layers
        self._pool_v: list[np.ndarray | None] = [None] * self.num_layers

    def _grow_pool(self, new_total: int) -> None:
        for layer in range(self.num_layers):
            self._grow_layer(layer, new_total)
        self._free.extend(range(self._total_blocks, new_total))
        counts = np.zeros(new_total, dtype=np.int64)
        counts[:len(self._refcount)] = self._refcount
        self._refcount = counts
        self._total_blocks = new_total

    def _grow_layer(self, layer: int, new_total: int) -> None:
        shape = (new_total, self._heads, self.block_size, self._head_dim)
        for pool in (self._pool_k, self._pool_v):
            old = pool[layer]
            # Zero-filled on purpose: stale/padded block reads must stay
            # finite so masked rows contribute exact zeros, never NaNs.
            new = np.zeros(shape, dtype=np.float32)
            if old is not None:
                new[:old.shape[0]] = old
            pool[layer] = new

    def _take_block(self) -> int:
        if not self._free:
            growth = max(self.batch, self._total_blocks // 2, 1)
            self._grow_pool(self._total_blocks + growth)
        block = self._free.pop()
        self._refcount[block] = 1
        return block

    def _invalidate_ids_memo(self) -> None:
        """Invalidate the memoised (rows -> block ids) resolutions."""
        self._ids_memo.clear()

    def _on_block_freed(self, block: int) -> None:
        """Hook: ``block`` just returned to the free list (last reference
        dropped).  The quantized cache invalidates its dequant memo here."""

    def _ensure_row_blocks(self, rows: np.ndarray, needed: np.ndarray) -> None:
        """Grow block tables so each of ``rows`` owns ``needed`` blocks."""
        if np.all(needed <= self._blocks_per_row[rows]):
            return  # steady-state decode: no row crossed a block boundary
        self._invalidate_ids_memo()
        width = self._tables.shape[1]
        max_needed = int(np.max(needed, initial=0))
        if max_needed > width:
            wider = np.zeros((self.batch, max(max_needed, 2 * width)),
                             dtype=np.int64)
            wider[:, :width] = self._tables
            self._tables = wider
        for row, need in zip(np.asarray(rows).reshape(-1), np.asarray(needed).reshape(-1)):
            have = int(self._blocks_per_row[row])
            while have < need:
                self._tables[row, have] = self._take_block()
                have += 1
            self._blocks_per_row[row] = max(self._blocks_per_row[row], need)

    def free_rows(self, rows: np.ndarray) -> None:
        """Drop retired sequences' block references; free unshared blocks.

        A block only returns to the pool when its last reference drops,
        so retiring a reader of a shared prefix frees exactly the blocks
        it owned exclusively — the shared chain stays resident for the
        prefix store and its other readers.
        """
        for row in np.asarray(rows, dtype=np.int64).reshape(-1):
            count = int(self._blocks_per_row[row])
            self.release_blocks(self._tables[row, :count])
            self._blocks_per_row[row] = 0
            self._row_len[row] = 0
        self._invalidate_ids_memo()

    def free_blocks(self) -> int:
        """Blocks on the shared free list (allocated but unowned)."""
        return len(self._free)

    def available_blocks(self) -> int | None:
        """Blocks grantable within the soft budget (None = unbounded)."""
        if self.max_blocks is None:
            return None
        return len(self._free) + max(0, self.max_blocks - self._total_blocks)

    # ------------------------------------------------------------------ #
    # block sharing (prefix reuse / copy-on-write)
    # ------------------------------------------------------------------ #
    def ref_blocks(self, block_ids) -> None:
        """Add one reference to each of ``block_ids``."""
        for block in np.asarray(block_ids, dtype=np.int64).reshape(-1):
            if self._refcount[block] < 1:
                raise ValueError(f"block {block} is free; cannot reference")
            self._refcount[block] += 1

    def release_blocks(self, block_ids) -> None:
        """Drop one reference per block; free blocks that hit zero."""
        for block in np.asarray(block_ids, dtype=np.int64).reshape(-1):
            block = int(block)
            if self._refcount[block] < 1:
                raise ValueError(f"block {block} released more than held")
            self._refcount[block] -= 1
            if self._refcount[block] == 0:
                self._free.append(block)
                self._on_block_freed(block)

    def block_refcount(self, block_id: int) -> int:
        """Current reference count of one block (0 = on the free list)."""
        return int(self._refcount[block_id])

    def copy_block(self, src: int) -> int:
        """Copy-on-write primitive: duplicate ``src`` across every layer.

        Returns a fresh block (one reference, owned by the caller) whose
        K/V payload equals ``src``'s at copy time.  Used when a request
        diverges inside a partially-filled shared block: the writer gets
        a private copy, other readers keep the original.
        """
        dst = self._take_block()
        for layer in range(self.num_layers):
            for pool in (self._pool_k, self._pool_v):
                pool[layer][dst] = pool[layer][src]
        return dst

    def share_block(self, row: int, depth: int, fill: int) -> int:
        """Reference block ``depth`` of ``row`` for sharing; returns its id.

        ``fill`` is how many leading tokens of the block the caller will
        advertise (``block_size`` for a full block).  The FP32 cache can
        hand out the live block directly — the first ``fill`` slots are
        prompt content and are never rewritten; later slots may keep
        mutating under the owning row's decode, so consumers of a partial
        block must copy-on-write before trusting slots ``>= fill``.
        The caller owns one reference on the returned id.
        """
        if depth >= self._blocks_per_row[row]:
            raise ValueError(f"row {row} owns {self._blocks_per_row[row]} "
                             f"blocks; cannot share depth {depth}")
        block = int(self._tables[row, depth])
        self.ref_blocks([block])
        return block

    def adopt_prefix(self, row: int, full_ids, tail_id: int | None = None,
                     tail_keep: int = 0) -> int:
        """Point a fresh row at an already-written shared block chain.

        ``full_ids`` are full shared blocks adopted *by reference*;
        ``tail_id`` (optional) is a partially-filled shared block whose
        first ``tail_keep`` tokens the row reuses — adopted copy-on-write
        through the format's :meth:`_adopt_tail`, since the row will keep
        writing into that block.  Returns the row's resulting token
        length.
        """
        if self._blocks_per_row[row] != 0:
            raise ValueError(f"row {row} still owns blocks; free it first")
        if tail_id is None:
            tail_keep = 0
        elif not 0 < tail_keep < self.block_size:
            raise ValueError("tail_keep must be in (0, block_size) "
                             "when a tail block is adopted")
        full_ids = [int(b) for b in np.asarray(full_ids,
                                               dtype=np.int64).reshape(-1)]
        self.ref_blocks(full_ids)
        ids = list(full_ids)
        if tail_id is not None:
            ids += self._adopt_tail(row, tail_id, tail_keep)
        width = self._tables.shape[1]
        if len(ids) > width:
            wider = np.zeros((self.batch, max(len(ids), 2 * width)),
                             dtype=np.int64)
            wider[:, :width] = self._tables
            self._tables = wider
        self._tables[row, :len(ids)] = ids
        self._blocks_per_row[row] = len(ids)
        self._invalidate_ids_memo()
        length = len(full_ids) * self.block_size + tail_keep
        self._row_len[row] = length
        return length

    def _adopt_tail(self, row: int, tail_id: int, tail_keep: int
                    ) -> list[int]:
        """COW the shared tail into private writable storage; returns any
        blocks to append to the row's chain.  FP32: a block copy."""
        return [self.copy_block(tail_id)]

    def trim(self, max_len: int) -> None:
        """Clamp the logical context width to ``max_len`` time steps.

        Shrinks the per-layer read width after rows retire so a
        persistent session stops gathering (and, quantized, decoding)
        the historical longest row's width; pool blocks are unaffected
        (``free_rows`` already reclaimed them).
        """
        self._lengths = [min(length, max_len) for length in self._lengths]

    # ------------------------------------------------------------------ #
    # speculative-decoding rollback
    # ------------------------------------------------------------------ #
    def snapshot_rows(self, rows) -> dict:
        """Capture per-row state :meth:`truncate_rows` may need to restore.

        The FP32 cache only records bookkeeping (lengths and owned block
        counts); the quantized cache additionally copies each row's FP32
        write buffer, since truncating below the buffered block cannot
        otherwise recover exact values from lossy pool storage.
        """
        snap: dict[int, dict] = {}
        for row in np.asarray(rows, dtype=np.int64).reshape(-1):
            row = int(row)
            snap[row] = {"len": int(self._row_len[row]),
                         "blocks": int(self._blocks_per_row[row])}
        return snap

    def truncate_rows(self, rows, lengths, snapshot: dict | None = None
                      ) -> None:
        """Roll ``rows`` back to ``lengths`` committed tokens.

        The speculative-decoding rollback: a rejected draft suffix is
        uncommitted by clamping the row's token length and *releasing*
        (not zeroing) any block the kept prefix no longer reaches.
        Release honours refcounts, so a shared-prefix block merely loses
        this row's reference and is never mutated for its other readers;
        a block whose last reference drops returns to the free list,
        which also invalidates any dequantized memo of it
        (:meth:`_on_block_freed`).  Slots beyond ``lengths`` inside the
        kept blocks keep their stale values — per-row masks hide them
        and later writes overwrite them, the same contract stale table
        slots already live under.
        """
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        lengths = np.asarray(lengths, dtype=np.int64).reshape(-1)
        for row, keep in zip(rows, lengths):
            row, keep = int(row), int(keep)
            if keep < 0:
                raise ValueError("cannot truncate a row below zero tokens")
            have = int(self._blocks_per_row[row])
            need = min(have, self._blocks_kept(keep))
            if need < have:
                self.release_blocks(self._tables[row, need:have])
                self._blocks_per_row[row] = need
                self._restore_row(row, keep, snapshot)
            self._row_len[row] = min(int(self._row_len[row]), keep)
        self._invalidate_ids_memo()

    def _blocks_kept(self, keep: int) -> int:
        """Pool blocks a row still owns at ``keep`` tokens.  FP32 keeps
        every block the prefix touches — partial blocks live in the pool."""
        return int(_blocks_needed(keep, self.block_size))

    def _restore_row(self, row: int, keep: int,
                     snapshot: dict | None) -> None:
        """Hook: blocks were just released below ``row``'s previous chain.
        FP32 pool slots under ``keep`` were never clobbered, so there is
        nothing to restore; the quantized cache refills its write buffer
        from ``snapshot`` here."""

    # ------------------------------------------------------------------ #
    # write paths (rectangular-cache interface)
    # ------------------------------------------------------------------ #
    def append(self, layer: int, k: np.ndarray, v: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform append for all batch rows; returns gathered context."""
        self._check_batch(k)
        if self._heads is None:
            self._init_storage(k)
        start = self._lengths[layer]
        seq = k.shape[2]
        stop = start + seq
        bs = self.block_size
        rows = self._row_index
        self._ensure_row_blocks(rows, np.full(self.batch,
                                              _blocks_needed(stop, bs)))
        for block in range(start // bs, (stop - 1) // bs + 1):
            lo, hi = max(start, block * bs), min(stop, (block + 1) * bs)
            ids = self._tables[:, block]
            self._pool_k[layer][ids, :, lo - block * bs:hi - block * bs] = \
                k[:, :, lo - start:hi - start]
            self._pool_v[layer][ids, :, lo - block * bs:hi - block * bs] = \
                v[:, :, lo - start:hi - start]
        self._lengths[layer] = stop
        self._row_len = np.maximum(self._row_len, stop)
        return self._context(layer)

    def write_token(self, layer: int, k: np.ndarray, v: np.ndarray,
                    positions: np.ndarray,
                    rows: np.ndarray | None = None, gather: bool = True
                    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Scatter one decode token per batch row at ``positions``.

        ``rows`` (a sub-batch of cache rows, the engine's active slots)
        restricts both the writes and the returned gathered context to
        those rows; idle rows then pin no blocks and cost no gather.
        ``gather=False`` skips the dense context gather entirely and
        returns ``None`` — the block-resident decode path reads through
        :meth:`context_blocks` instead.
        """
        row_idx = self._resolve_rows(k, rows)
        if self._heads is None:
            self._init_storage(k)
        positions = np.asarray(positions, dtype=np.int64)
        bs = self.block_size
        blocks = positions // bs
        self._ensure_row_blocks(row_idx, blocks + 1)
        ids = self._tables[row_idx, blocks]
        slots = positions % bs
        self._pool_k[layer][ids, :, slots] = k[:, :, 0]
        self._pool_v[layer][ids, :, slots] = v[:, :, 0]
        self._lengths[layer] = max(self._lengths[layer],
                                   int(positions.max()) + 1)
        self._row_len[row_idx] = np.maximum(self._row_len[row_idx],
                                            positions + 1)
        if not gather:
            return None
        return self._context(layer, rows=None if rows is None else row_idx)

    def write_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                   rows: np.ndarray,
                   row_lengths: np.ndarray | None = None) -> None:
        """Prefill batch rows ``rows`` from slot zero (fresh sequences).

        ``row_lengths`` gives each row's *true* prompt length when ``k``/
        ``v`` are right-padded to a common width (the engine's ragged
        sub-batch admits); rows then only own and account for the blocks
        their real tokens need.  Without it every row spans ``k``'s full
        width.
        """
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        seq = k.shape[2]
        lens = (np.full(len(rows), seq, dtype=np.int64)
                if row_lengths is None
                else np.asarray(row_lengths, dtype=np.int64))
        bs = self.block_size
        per_row_blocks = _blocks_needed(lens, bs)
        self._ensure_row_blocks(rows, per_row_blocks)
        max_blocks = int(per_row_blocks.max())
        owned = np.arange(max_blocks)[None, :] < per_row_blocks[:, None]
        ids = self._tables[rows][:, :max_blocks][owned]
        self._pool_k[layer][ids] = self._as_blocks(k, max_blocks)[owned]
        self._pool_v[layer][ids] = self._as_blocks(v, max_blocks)[owned]
        self._lengths[layer] = max(self._lengths[layer], int(lens.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], lens)

    def prefill_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                     rows: np.ndarray, starts: np.ndarray,
                     row_lengths: np.ndarray, gather: bool = True
                     ) -> tuple[np.ndarray, np.ndarray] | None:
        """Write per-row suffix spans and return the gathered context.

        The suffix/chunked prefill: row ``j`` already holds ``starts[j]``
        context tokens (adopted shared blocks, or spans written by
        earlier prefill chunks), and ``k``/``v`` carry its next
        ``row_lengths[j]`` tokens (right-padded to a common width).
        Writes land at absolute positions ``starts[j] ..
        starts[j] + row_lengths[j] - 1`` — continuing a partially-filled
        block in place when the span starts mid-block — and the returned
        arrays gather each row's full context (shared prefix + new
        suffix), which is what suffix attention needs to read.
        ``gather=False`` skips the dense context gather and returns
        ``None`` — the block-resident prefill path reads through
        :func:`repro.nn.block_attention.block_prefill_attention`
        (:meth:`context_blocks`) instead.
        """
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        lens = np.asarray(row_lengths, dtype=np.int64)
        self._write_span(layer, k, v, rows, starts, lens)
        totals = starts + lens
        self._lengths[layer] = max(self._lengths[layer], int(totals.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], totals)
        if not gather:
            return None
        return self._context(layer, rows=rows)

    def _write_span(self, layer: int, k: np.ndarray, v: np.ndarray,
                    rows: np.ndarray, starts: np.ndarray,
                    lens: np.ndarray) -> None:
        bs = self.block_size
        self._ensure_row_blocks(rows, _blocks_needed(starts + lens, bs))
        for j, row in enumerate(rows):
            pos, end = int(starts[j]), int(starts[j] + lens[j])
            while pos < end:
                block, lo = pos // bs, pos % bs
                take = min(bs - lo, end - pos)
                block_id = self._tables[row, block]
                self._pool_k[layer][block_id, :, lo:lo + take] = \
                    k[j, :, pos - int(starts[j]):pos - int(starts[j]) + take]
                self._pool_v[layer][block_id, :, lo:lo + take] = \
                    v[j, :, pos - int(starts[j]):pos - int(starts[j]) + take]
                pos += take

    def _as_blocks(self, data: np.ndarray, nblk: int) -> np.ndarray:
        """``(n, heads, seq, hd)`` -> ``(n, nblk, heads, block, hd)``."""
        n, heads, seq, head_dim = data.shape
        bs = self.block_size
        width = min(seq, nblk * bs)
        padded = np.zeros((n, heads, nblk * bs, head_dim), dtype=np.float32)
        padded[:, :, :width] = data[:, :, :width]
        return padded.reshape(n, heads, nblk, bs, head_dim) \
                     .transpose(0, 2, 1, 3, 4)

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def _block_ids(self, nblk: int,
                   rows: np.ndarray | None = None) -> np.ndarray:
        """Per-row block ids padded to ``nblk`` columns (pad gathers block
        0 — finite stale data that per-row masks zero out).  ``rows``
        restricts the result to a sub-batch without ever materialising
        the full-batch matrix.

        Resolutions are memoised until the next table mutation: block
        tables are shared across layers, so one decode step resolves
        its (rows -> ids) matrix once and every layer's read reuses it.
        """
        key = (nblk, None if rows is None
               else np.asarray(rows, dtype=np.int64).tobytes())
        ids = self._ids_memo.get(key)
        if ids is not None:
            return ids
        tables = self._tables if rows is None else self._tables[rows]
        width = tables.shape[1]
        if width >= nblk:
            ids = tables[:, :nblk]
        else:
            ids = np.zeros((tables.shape[0], nblk), dtype=np.int64)
            ids[:, :width] = tables
        self._ids_memo[key] = ids
        return ids

    def _context(self, layer: int, rows: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        total = self._lengths[layer]
        nblk = _blocks_needed(total, self.block_size)
        ids = self._block_ids(nblk, rows)
        return (self._gather(self._pool_k[layer], ids)[:, :, :total],
                self._gather(self._pool_v[layer], ids)[:, :, :total])

    def _gather(self, pool: np.ndarray, ids: np.ndarray) -> np.ndarray:
        batch, nblk = ids.shape
        blocks = pool[ids]  # (batch, nblk, heads, block, head_dim)
        return blocks.transpose(0, 2, 1, 3, 4).reshape(
            batch, self._heads, nblk * self.block_size, self._head_dim)

    def take_read_stats(self) -> KVReadStats:
        """Return and reset the accumulated :class:`KVReadStats` (the
        engine snapshots these once per decode step)."""
        stats = self._read_stats
        self._read_stats = KVReadStats()
        return stats

    def _account_read(self, n: int, total: int, operands: int,
                      chunk_resident: int) -> None:
        """Book one :meth:`context_blocks` call's logical read bytes.

        ``chunk_resident`` is the finished chunk the caller holds at any
        moment, whose difference from the dense gather is the copy that
        never existed concurrently.  Transient scratch is *measured* per
        chunk step via :meth:`_note_scratch` (actual array sizes, so a
        regression that materialises something dense shows up).
        """
        stats = self._read_stats
        logical = operands * n * self._heads * total * self._head_dim * 4
        stats.logical_bytes += logical
        stats.bytes_not_gathered += max(0, logical - chunk_resident)

    def _note_scratch(self, nbytes: int) -> None:
        """Record one chunk step's measured transient scratch bytes."""
        stats = self._read_stats
        stats.peak_scratch_bytes = max(stats.peak_scratch_bytes, nbytes)

    def context_chunk_pair(self, layer: int, rows: np.ndarray | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Single-chunk K/V read (context fits one chunk window).

        For the FP32 pool the whole-context gather *is* the chunk, so
        this reuses :meth:`_context` outright — the short-context decode
        then costs exactly what the pre-change path did, with only the
        read accounting added.  The quantized override assembles the
        chunk through the dequant memo instead.
        """
        total = self._lengths[layer]
        row_idx = self._row_index if rows is None \
            else np.asarray(rows, dtype=np.int64)
        n = len(row_idx)
        nblk = _blocks_needed(total, self.block_size)
        resident = 2 * n * self._heads * nblk * self.block_size \
            * self._head_dim * 4  # the K and V gathers themselves
        self._account_read(n, total, 2, chunk_resident=resident)
        self._read_stats.streamed_bytes += 2 * self._heads \
            * self._head_dim * 4 * int(np.minimum(self._row_len[row_idx],
                                                  total).sum())
        k, v = self._context(layer, rows)
        self._note_scratch(2 * resident)  # gather temps + merged copies
        return k, v

    def context_blocks(self, layer: int, rows: np.ndarray | None = None,
                       kind: str = "k"):
        """Iterate the rows' context as ``(start, chunk, ...)`` tuples.

        The block-resident decode read: each chunk is a
        ``(n, heads, width, head_dim)`` float32 gather of up to
        ``chunk_blocks`` consecutive blocks starting at absolute token
        position ``start``, with exactly the values :meth:`_context`
        would place there — but only one chunk is ever resident, so no
        dense ``(n, heads, total, head_dim)`` copy exists.  ``kind``
        selects the operand: ``"k"`` or ``"v"`` yield ``(start, chunk)``
        (block attention's two-pass long-context read), ``"kv"`` yields
        ``(start, k_chunk, v_chunk)`` in one pass (the short-context
        fast path pays the iteration bookkeeping once).  The final chunk
        may extend past the layer's token count; callers slice to
        ``layer_len``.
        """
        total = self._lengths[layer]
        if total == 0:
            return
        bs = self.block_size
        nblk = _blocks_needed(total, bs)
        ids = self._block_ids(nblk, rows)
        pools = {"k": (self._pool_k[layer],), "v": (self._pool_v[layer],),
                 "kv": (self._pool_k[layer], self._pool_v[layer])}[kind]
        row_idx = self._row_index if rows is None \
            else np.asarray(rows, dtype=np.int64)
        n = ids.shape[0]
        cb = self.chunk_blocks
        chunk_resident = len(pools) * n * self._heads * min(cb, nblk) \
            * bs * self._head_dim * 4
        self._account_read(n, total, len(pools), chunk_resident)
        # Streamed bytes count the rows' *real* context tokens (ragged
        # rows gather padding blocks, but so would a dense gather — and
        # the gather path's trace counts used-token bytes, so the two
        # read paths stay comparable in the accelerator projection).
        self._read_stats.streamed_bytes += len(pools) * self._heads \
            * self._head_dim * 4 * int(np.minimum(self._row_len[row_idx],
                                                  total).sum())
        for b0 in range(0, nblk, cb):
            sel = ids[:, b0:b0 + cb]
            chunks = []
            scratch = 0
            for pool in pools:
                blocks = pool[sel]  # (n, c, heads, block, head_dim)
                chunk = blocks.transpose(0, 2, 1, 3, 4).reshape(
                    n, self._heads, sel.shape[1] * bs, self._head_dim)
                scratch += blocks.nbytes + chunk.nbytes
                chunks.append(chunk)
            self._note_scratch(scratch)
            yield (b0 * bs, *chunks)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def seq_len(self) -> int:
        return self._lengths[0]

    def layer_len(self, layer: int) -> int:
        """Cached time steps for ``layer`` (may lag ``seq_len`` mid-forward)."""
        return self._lengths[layer]

    @property
    def cached_tokens(self) -> int:
        """Live tokens across all rows (idle rows decoding dummy tokens
        register one slot-0 token until the row is prefilled again)."""
        return int(self._row_len.sum())

    def blocks_in_use(self) -> int:
        return int(self._blocks_per_row.sum())

    def used_bytes(self) -> int:
        """Bytes storing the currently cached tokens (FP32 here).

        Logical accounting: with prefix sharing a block read by many rows
        is counted once per reader (this is what decode gathers stream);
        :meth:`physical_used_bytes` counts each resident block once.
        """
        if self._heads is None:
            return 0
        per_token = 2 * self._heads * self._head_dim * 4
        return self.num_layers * per_token * self.cached_tokens

    def physical_used_bytes(self) -> int:
        """Bytes of blocks holding at least one reference (each counted
        once, however many rows alias it) — the resident cache footprint
        prefix sharing actually shrinks."""
        if self._heads is None:
            return 0
        block_bytes = self._heads * self.block_size * self._head_dim * 4
        held = self._total_blocks - len(self._free)
        return self.num_layers * 2 * held * block_bytes

    def allocated_bytes(self) -> int:
        """Physical pool footprint, free blocks included."""
        if self._heads is None:
            return 0
        block_bytes = self._heads * self.block_size * self._head_dim * 4
        return self.num_layers * 2 * self._total_blocks * block_bytes


class QuantizedPagedKVCache(PagedKVCache):
    """Paged cache whose full blocks are stored in the FineQ format.

    Storage per layer: ``payload`` pools of packed 6-bit cluster codes
    (uint8) plus FP16 per-channel scale pools for K and V, and one FP32
    write buffer of ``(batch, heads, block, head_dim)`` holding every
    row's current block.  A row's block is quantized in one shot when the
    row writes the first token of its *next* block, so ``block_size`` is
    also the exactness horizon: the newest ``<= block_size`` tokens of
    each row always read back bit-exact.

    ``_blocks_per_row`` counts *quantized* blocks only; the current
    block lives in the write buffer and owns no pool block yet.

    ``dequant_cache_bytes`` budgets the :class:`DequantBlockCache` the
    block-resident decode reads through (``0`` disables it — every read
    then re-runs the LUT dequant, exactly the pre-cache behaviour).
    """

    def __init__(self, num_layers: int, batch: int,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_blocks: int | None = None,
                 max_blocks: int | None = None,
                 block_decode: bool = True,
                 chunk_blocks: int = DEFAULT_CHUNK_BLOCKS,
                 dequant_cache_bytes: int = DEFAULT_DEQUANT_CACHE_BYTES):
        self.dequant_cache_bytes = dequant_cache_bytes
        self._dequant: DequantBlockCache | None = None
        super().__init__(num_layers, batch, block_size=block_size,
                         initial_blocks=initial_blocks,
                         max_blocks=max_blocks, block_decode=block_decode,
                         chunk_blocks=chunk_blocks)

    def _setup_layers(self) -> None:
        bs = self.block_size
        clusters = _blocks_needed(bs, 3)
        groups = _blocks_needed(clusters, CLUSTERS_PER_GROUP)
        self._channels = self._heads * self._head_dim
        self._payload_bytes = groups * GROUP_BYTES
        layers = self.num_layers
        self._payload_k: list[np.ndarray | None] = [None] * layers
        self._payload_v: list[np.ndarray | None] = [None] * layers
        self._scale_k: list[np.ndarray | None] = [None] * layers
        self._scale_v: list[np.ndarray | None] = [None] * layers
        buf_shape = (self.batch, self._heads, bs, self._head_dim)
        self._buf_k = [np.zeros(buf_shape, dtype=np.float32)
                       for _ in range(layers)]
        self._buf_v = [np.zeros(buf_shape, dtype=np.float32)
                       for _ in range(layers)]
        # Reusable dequant scratch for the dense _context gather, sized
        # to the high-water (rows x blocks) demand instead of being
        # reallocated per layer per call.
        self._ctx_scratch: np.ndarray | None = None
        if self.dequant_cache_bytes:
            self._dequant = DequantBlockCache(
                layers, self._heads, bs, self._head_dim,
                self.dequant_cache_bytes)

    @property
    def dequant_cache(self) -> DequantBlockCache | None:
        """The dequantized-block memo (None when disabled or unused)."""
        return self._dequant

    def _take_block(self) -> int:
        block = super()._take_block()
        # A block leaving the free list is about to be (re)written;
        # freeing already invalidated it, but stay defensive — a stale
        # dequant for a recycled id would be silently wrong.
        if self._dequant is not None:
            self._dequant.invalidate(block)
        return block

    def _on_block_freed(self, block: int) -> None:
        if self._dequant is not None:
            self._dequant.invalidate(block)

    def _grow_layer(self, layer: int, new_total: int) -> None:
        specs = (
            (self._payload_k, (self._channels, self._payload_bytes), np.uint8),
            (self._payload_v, (self._channels, self._payload_bytes), np.uint8),
            (self._scale_k, (self._channels,), np.float16),
            (self._scale_v, (self._channels,), np.float16),
        )
        for pool, tail, dtype in specs:
            old = pool[layer]
            new = np.zeros((new_total,) + tail, dtype=dtype)
            if old is not None:
                new[:old.shape[0]] = old
            pool[layer] = new

    # ------------------------------------------------------------------ #
    # write paths
    # ------------------------------------------------------------------ #
    def _quantize_into(self, layer: int, ids: np.ndarray,
                       k_blocks: np.ndarray, v_blocks: np.ndarray) -> None:
        count = len(ids)
        if self._dequant is not None:
            # Payload rewrite: this layer's memoised dequant for these
            # ids must not survive.  Only this layer's — the same block
            # id flushes once per layer on a boundary crossing, and the
            # sibling layers' freshly cached entries stay valid.
            for block in np.asarray(ids).reshape(-1):
                self._dequant.invalidate(int(block), layer=layer)
        for payload_pool, scale_pool, data in (
                (self._payload_k[layer], self._scale_k[layer], k_blocks),
                (self._payload_v[layer], self._scale_v[layer], v_blocks)):
            payload, scales = quantize_kv_block(data)
            payload_pool[ids] = payload.reshape(count, self._channels, -1)
            scale_pool[ids] = scales.reshape(count, self._channels)

    # ------------------------------------------------------------------ #
    # block sharing (prefix reuse / copy-on-write, quantized format)
    # ------------------------------------------------------------------ #
    def copy_block(self, src: int) -> int:
        """COW in the 2.33-bit format: duplicate payload + scales."""
        dst = self._take_block()
        for layer in range(self.num_layers):
            for pool in (self._payload_k, self._payload_v,
                         self._scale_k, self._scale_v):
                pool[layer][dst] = pool[layer][src]
        return dst

    def share_block(self, row: int, depth: int, fill: int) -> int:
        """Reference (or freeze) block ``depth`` of ``row`` for sharing.

        Blocks the row has already quantized are immutable, so they are
        shared by reference like the FP32 cache's.  The row's *current*
        block lives only in its FP32 write buffer; sharing it quantizes a
        snapshot of its first ``fill`` tokens (zero-padded so garbage
        beyond ``fill`` cannot inflate the channel scales) into a fresh
        pool block owned by the caller.  The shared prefix is therefore
        always served in the paper's 2.33-bit format — quantized once,
        dequantized by every reader.
        """
        owned = int(self._blocks_per_row[row])
        if depth < owned:
            return super().share_block(row, depth, self.block_size)
        if depth != owned:
            raise ValueError(f"row {row} has no content at block {depth}")
        buffered = int(self._row_len[row]) - owned * self.block_size
        if not 0 < fill <= buffered:
            raise ValueError(f"row {row} buffers {buffered} tokens; "
                             f"cannot freeze {fill}")
        block = self._take_block()
        keep = (np.arange(self.block_size) < fill)[None, :, None]
        for layer in range(self.num_layers):
            self._quantize_into(
                layer, np.array([block]),
                (self._buf_k[layer][row] * keep)[None],
                (self._buf_v[layer][row] * keep)[None])
        return block

    def _adopt_tail(self, row: int, tail_id: int, tail_keep: int
                    ) -> list[int]:
        """COW in the quantized format: the shared partial block is
        *dequantized into the row's FP32 write buffer* — the quantized
        analogue of a block copy — so the row can keep appending suffix
        tokens to the partially-filled block without touching the shared
        original (which stays quantized-once for its other readers).  No
        pool block joins the row's chain; the buffer is the current
        block."""
        bs = self.block_size
        for layer in range(self.num_layers):
            for payload_pool, scale_pool, buf in (
                    (self._payload_k, self._scale_k, self._buf_k),
                    (self._payload_v, self._scale_v, self._buf_v)):
                channels = dequantize_kv_channels(
                    payload_pool[layer][tail_id],
                    scale_pool[layer][tail_id], bs)
                buf[layer][row] = channels.reshape(
                    self._heads, self._head_dim, bs).transpose(0, 2, 1)
        return []

    def _write_span(self, layer: int, k: np.ndarray, v: np.ndarray,
                    rows: np.ndarray, starts: np.ndarray,
                    lens: np.ndarray) -> None:
        """Span writes pass every block — the final, possibly partial
        one included — through the FP32 write buffer, and quantize each
        block the moment the span completes it.  Only a ragged tail
        (``end`` off a block boundary) stays buffered, so it reads back
        bit-exact after a prefill, same as after decode.

        The eager flush at the span's end is what keeps *chunked*
        prefill bit-identical to one-shot: a chunk ending exactly on a
        block boundary must leave the same storage state (block
        quantized) the one-shot span produces when it rolls past that
        boundary — otherwise the next chunk's attention would read the
        block exact FP32 where the one-shot run reads it dequantized.

        Speculative verify writes do *not* come through here: they run
        as clone-rows decode through :meth:`write_token`, whose lazy
        flush keeps each verify query's own block in the FP32 buffer
        (and whose GEMM-feeding values are bitwise the ones sequential
        decode produces)."""
        bs = self.block_size
        flush_ids, flush_k, flush_v = [], [], []
        for j, row in enumerate(rows):
            s, end = int(starts[j]), int(starts[j] + lens[j])
            pos = s
            while pos < end:
                block, lo = pos // bs, pos % bs
                take = min(bs - lo, end - pos)
                self._buf_k[layer][row, :, lo:lo + take] = \
                    k[j, :, pos - s:pos - s + take]
                self._buf_v[layer][row, :, lo:lo + take] = \
                    v[j, :, pos - s:pos - s + take]
                pos += take
                if pos % bs == 0:  # completed this block: quantize it
                    self._ensure_row_blocks(np.array([row]),
                                            np.array([block + 1]))
                    flush_ids.append(int(self._tables[row, block]))
                    flush_k.append(self._buf_k[layer][row].copy())
                    flush_v.append(self._buf_v[layer][row].copy())
        if flush_ids:
            self._quantize_into(layer, np.asarray(flush_ids),
                                np.stack(flush_k), np.stack(flush_v))

    # ------------------------------------------------------------------ #
    # speculative-decoding rollback (quantized format)
    # ------------------------------------------------------------------ #
    def _blocks_kept(self, keep: int) -> int:
        """Quantized rows keep ``(keep - 1) // block_size`` pool blocks:
        the block holding token ``keep - 1`` lives in the FP32 write
        buffer (lazy-flush invariant), never in the pool."""
        return 0 if keep == 0 else (keep - 1) // self.block_size

    def snapshot_rows(self, rows) -> dict:
        snap = super().snapshot_rows(rows)
        if self._heads is not None:
            for row, entry in snap.items():
                entry["buf_k"] = [buf[row].copy() for buf in self._buf_k]
                entry["buf_v"] = [buf[row].copy() for buf in self._buf_v]
        return snap

    def _restore_row(self, row: int, keep: int,
                     snapshot: dict | None) -> None:
        """Truncation released pool blocks below the buffered block, so
        the write buffer must hold block ``(keep - 1) // block_size``
        again.  Pool storage is lossy, so only a pre-roll ``snapshot``
        that buffered that very block can supply the exact values; the
        engine's boundary-chunked verify never truncates past its own
        writes, so this path only runs for direct callers rolling below
        a snapshot point."""
        if snapshot is None or row not in snapshot or keep == 0:
            return
        entry = snapshot[row]
        buffered = entry["len"] - entry["blocks"] * self.block_size
        if ("buf_k" not in entry or buffered <= 0 or keep > entry["len"]
                or (keep - 1) // self.block_size
                != (entry["len"] - 1) // self.block_size):
            return
        for layer in range(self.num_layers):
            self._buf_k[layer][row] = entry["buf_k"][layer]
            self._buf_v[layer][row] = entry["buf_v"][layer]

    def write_token(self, layer: int, k: np.ndarray, v: np.ndarray,
                    positions: np.ndarray,
                    rows: np.ndarray | None = None, gather: bool = True
                    ) -> tuple[np.ndarray, np.ndarray] | None:
        row_idx = self._resolve_rows(k, rows)
        if self._heads is None:
            self._init_storage(k)
        positions = np.asarray(positions, dtype=np.int64)
        bs = self.block_size
        slots = positions % bs
        # A row starting block b quantizes its buffered block b-1 first.
        # Rows whose whole context is adopted *quantized* blocks (prefix
        # sharing with a block-aligned match) have nothing buffered: their
        # previous block is shared and already quantized, and flushing
        # would overwrite it with stale buffer contents.
        buffered = self._row_len[row_idx] - self._blocks_per_row[row_idx] * bs
        flush = (slots == 0) & (positions > 0) & (buffered > 0)
        if flush.any():
            flush_rows = row_idx[flush]
            block_index = positions[flush] // bs - 1
            self._ensure_row_blocks(flush_rows, block_index + 1)
            ids = self._tables[flush_rows, block_index]
            self._quantize_into(layer, ids,
                                self._buf_k[layer][flush_rows],
                                self._buf_v[layer][flush_rows])
        self._buf_k[layer][row_idx, :, slots] = k[:, :, 0]
        self._buf_v[layer][row_idx, :, slots] = v[:, :, 0]
        self._lengths[layer] = max(self._lengths[layer],
                                   int(positions.max()) + 1)
        self._row_len[row_idx] = np.maximum(self._row_len[row_idx],
                                            positions + 1)
        if not gather:
            return None
        return self._context(layer, rows=None if rows is None else row_idx)

    def write_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                   rows: np.ndarray,
                   row_lengths: np.ndarray | None = None) -> None:
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        seq = k.shape[2]
        lens = (np.full(len(rows), seq, dtype=np.int64)
                if row_lengths is None
                else np.asarray(row_lengths, dtype=np.int64))
        bs = self.block_size
        # Each row's current (possibly exactly-full) block stays in the
        # FP32 buffer; only its strictly earlier blocks are quantized.
        # True per-row lengths matter here: the buffer/overlay alignment
        # is derived from _row_len, so a padded width would shift it.
        current = (lens - 1) // bs
        max_current = int(current.max())
        if max_current:
            self._ensure_row_blocks(rows, current)
            quantized = np.arange(max_current)[None, :] < current[:, None]
            ids = self._tables[rows][:, :max_current][quantized]
            self._quantize_into(layer, ids,
                                self._as_blocks(k, max_current)[quantized],
                                self._as_blocks(v, max_current)[quantized])
        for j, row in enumerate(rows):
            start = int(current[j]) * bs
            fill = int(lens[j]) - start
            self._buf_k[layer][row, :, :fill] = k[j, :, start:start + fill]
            self._buf_v[layer][row, :, :fill] = v[j, :, start:start + fill]
        self._lengths[layer] = max(self._lengths[layer], int(lens.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], lens)

    def append(self, layer: int, k: np.ndarray, v: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform single-token append (the cached-perplexity path)."""
        if k.shape[2] != 1:
            raise NotImplementedError(
                "QuantizedPagedKVCache.append supports one token per step; "
                "prefill through write_rows")
        if self._heads is None:
            self._init_storage(k)
        positions = np.full(k.shape[0], self._lengths[layer], dtype=np.int64)
        return self.write_token(layer, k, v, positions)

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def _context(self, layer: int, rows: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        total = self._lengths[layer]
        bs = self.block_size
        nblk = _blocks_needed(total, bs)
        row_idx = self._row_index if rows is None else rows
        n = len(row_idx)
        # Decode only blocks a row actually owns (its quantized prefix):
        # current blocks are overwritten by the FP32 overlay below and
        # stale/padding table slots carry nothing, so decoding them would
        # be wasted LUT work on the hot read path.  Unowned positions stay
        # zero — finite, and masked or sliced away by the caller.
        owned = np.arange(nblk)[None, :] < self._blocks_per_row[row_idx, None]
        flat_owned = owned.reshape(-1)
        selected = self._block_ids(nblk, rows).reshape(-1)[flat_owned]
        row_lens = self._row_len[row_idx]
        # Overlay only rows that actually hold buffered tokens: a row whose
        # context is entirely adopted quantized blocks (block-aligned
        # prefix match) has an empty buffer, and overlaying it would mask
        # its newest shared block with stale data.
        buffered = row_lens - self._blocks_per_row[row_idx] * bs
        live = np.nonzero(buffered > 0)[0]  # indices into the sub-batch
        current = (row_lens[live] - 1) // bs
        # The per-(row, block) channel scratch is reused across layers and
        # steps, sized to the high-water mark; only slots the dequant
        # below won't overwrite need re-zeroing.
        if self._ctx_scratch is None or len(self._ctx_scratch) < n * nblk:
            self._ctx_scratch = np.zeros((n * nblk, self._channels, bs),
                                         dtype=np.float32)
        out = []
        for payload_pool, scale_pool, buf in (
                (self._payload_k[layer], self._scale_k[layer], self._buf_k[layer]),
                (self._payload_v[layer], self._scale_v[layer], self._buf_v[layer])):
            channels = self._ctx_scratch[:n * nblk]
            channels[~flat_owned] = 0.0
            if selected.size:
                channels[flat_owned] = dequantize_kv_channels(
                    payload_pool[selected].reshape(-1, self._payload_bytes),
                    scale_pool[selected].reshape(-1), bs
                ).reshape(-1, self._channels, bs)
            blocks = channels.reshape(n, nblk, self._heads,
                                      self._head_dim, bs) \
                             .transpose(0, 1, 2, 4, 3)
            # Overlay each live row's FP32 current block (exact values for
            # the newest <= block_size tokens).
            blocks[live, current] = buf[row_idx[live]]
            # The output must not alias the scratch (the V pass reuses
            # it): for nblk > 1 the axis-merging reshape copies anyway,
            # but a single-block context reshapes as a view, so force
            # the copy (a no-op whenever reshape already copied).
            merged = np.ascontiguousarray(
                blocks.transpose(0, 2, 1, 3, 4).reshape(
                    n, self._heads, nblk * bs, self._head_dim))
            out.append(merged[:, :, :total])
        return out[0], out[1]

    def _dequant_kind(self, layer: int, ids: np.ndarray, kind: str
                      ) -> np.ndarray:
        """Dequantize pool blocks ``ids`` of one layer/operand into
        ``(len(ids), heads, block, head_dim)`` float32 — the exact values
        (and op order) the dense :meth:`_context` gather produces."""
        payload_pool = (self._payload_k if kind == "k"
                        else self._payload_v)[layer]
        scale_pool = (self._scale_k if kind == "k" else self._scale_v)[layer]
        channels = dequantize_kv_channels(
            payload_pool[ids].reshape(-1, self._payload_bytes),
            scale_pool[ids].reshape(-1), self.block_size)
        return channels.reshape(len(ids), self._heads, self._head_dim,
                                self.block_size).transpose(0, 1, 3, 2)

    def _dequant_pair(self, layer: int, ids: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """K and V dequantized together (a dequant-cache miss fills both,
        so the sibling operand pass hits)."""
        return (self._dequant_kind(layer, ids, "k"),
                self._dequant_kind(layer, ids, "v"))

    def context_chunk_pair(self, layer: int, rows: np.ndarray | None = None
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Single-chunk K/V read through the dequant memo (the quantized
        short-context decode keeps the once-per-step dequant reuse)."""
        total = self._lengths[layer]
        window = self.chunk_blocks * self.block_size
        if total > window:
            raise ValueError(f"context of {total} tokens exceeds the "
                             f"{window}-token chunk window; iterate "
                             "context_blocks instead")
        iterator = self.context_blocks(layer, rows=rows, kind="kv")
        _start, k_chunk, v_chunk = next(iterator)
        iterator.close()
        return k_chunk[:, :, :total], v_chunk[:, :, :total]

    def context_blocks(self, layer: int, rows: np.ndarray | None = None,
                       kind: str = "k"):
        """Chunked context iteration in the quantized format.

        Owned blocks are served from the :class:`DequantBlockCache`
        (missing ones dequantize once and are memoised — a block shared
        by many rows decodes once per chunk, and once *ever* while it
        stays cache-resident); each live row's FP32 current block is
        overlaid exactly as in :meth:`_context`, so chunk values are
        bit-identical to the dense gather's.  ``kind="kv"`` assembles
        both operands per chunk, resolving ownership and block-id
        uniqueness once.
        """
        total = self._lengths[layer]
        if total == 0:
            return
        bs = self.block_size
        heads, head_dim = self._heads, self._head_dim
        kinds = ("k", "v") if kind == "kv" else (kind,)
        nblk = _blocks_needed(total, bs)
        row_idx = self._row_index if rows is None \
            else np.asarray(rows, dtype=np.int64)
        n = len(row_idx)
        ids = self._block_ids(nblk, rows)
        owned_counts = self._blocks_per_row[row_idx]
        row_lens = self._row_len[row_idx]
        live = (row_lens - owned_counts * bs) > 0
        current = np.where(live, (row_lens - 1) // bs, -1)
        bufs = {"k": self._buf_k[layer], "v": self._buf_v[layer]}
        stats = self._read_stats
        cb = self.chunk_blocks
        chunk_resident = len(kinds) * n * heads * min(cb, nblk) * bs \
            * head_dim * 4
        self._account_read(n, total, len(kinds), chunk_resident)
        qblock_bytes = 2 * self._channels * (self._payload_bytes + 2)
        for b0 in range(0, nblk, cb):
            c = min(cb, nblk - b0)
            scratch = 0
            sel_owned = np.arange(b0, b0 + c)[None, :] < owned_counts[:, None]
            full = sel_owned.size > 0 and bool(sel_owned.all())
            reads = n * c if full else int(sel_owned.sum())
            if reads:
                sel_ids = np.asarray(ids[:, b0:b0 + c]).reshape(-1) if full \
                    else np.asarray(ids[:, b0:b0 + c])[sel_owned]
            in_chunk = np.nonzero((current >= b0) & (current < b0 + c))[0]
            chunks = []
            for kd in kinds:
                if reads:
                    if self._dequant is not None:
                        vals, missed, paired = self._dequant.lookup(
                            layer, sel_ids, kd,
                            lambda miss: self._dequant_pair(layer, miss),
                            lambda miss, _kd=kd:
                                self._dequant_kind(layer, miss, _kd))
                        stats.dequant_hits += reads - missed
                        stats.dequant_misses += missed
                        # Paired misses fetched K and V payloads at once
                        # (the sibling pass will hit); degraded ones
                        # fetched only this operand's half.
                        stats.streamed_bytes += paired * qblock_bytes \
                            + (missed - paired) * qblock_bytes // 2
                    else:
                        uniq, inverse = np.unique(sel_ids,
                                                  return_inverse=True)
                        vals = self._dequant_kind(layer, uniq, kd)[inverse]
                        stats.dequant_misses += reads
                        stats.streamed_bytes += len(uniq) * qblock_bytes // 2
                if full:
                    # Every (row, slot) of the chunk is an owned block:
                    # the lookup result in row-major order *is* the
                    # chunk, no zero-init or scatter needed.
                    chunk_blocks = vals.reshape(n, c, heads, bs, head_dim)
                else:
                    chunk_blocks = np.zeros((n, c, heads, bs, head_dim),
                                            dtype=np.float32)
                    if reads:
                        chunk_blocks[sel_owned] = vals
                if len(in_chunk):
                    chunk_blocks[in_chunk, current[in_chunk] - b0] = \
                        bufs[kd][row_idx[in_chunk]]
                    # Write-buffer reads stream the live buffered tokens
                    # (matching used_bytes' FP32 accounting), not the
                    # whole block's padding.
                    buffered = (row_lens[in_chunk]
                                - owned_counts[in_chunk] * bs)
                    stats.streamed_bytes += int(buffered.sum()) * heads \
                        * head_dim * 4
                merged = chunk_blocks.transpose(0, 2, 1, 3, 4).reshape(
                    n, heads, c * bs, head_dim)
                scratch += chunk_blocks.nbytes + merged.nbytes \
                    + (vals.nbytes if reads else 0)
                chunks.append(merged)
            self._note_scratch(scratch)
            yield (b0 * bs, *chunks)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def used_bytes(self) -> int:
        """Bytes storing the cached tokens: FineQ payload + FP16 scales
        for quantized blocks, FP32 for tokens still in write buffers."""
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        buffered = int((self._row_len
                        - self._blocks_per_row * self.block_size).sum())
        per_buffered_token = self._heads * self._head_dim * 4
        return self.num_layers * 2 * (self.blocks_in_use() * qblock
                                      + buffered * per_buffered_token)

    def physical_used_bytes(self) -> int:
        """Resident bytes: each referenced quantized block once (however
        many rows alias it) plus the FP32 tokens still in write buffers."""
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        held = self._total_blocks - len(self._free)
        buffered = int((self._row_len
                        - self._blocks_per_row * self.block_size).sum())
        per_buffered_token = self._heads * self._head_dim * 4
        return self.num_layers * 2 * (held * qblock
                                      + buffered * per_buffered_token)

    def allocated_bytes(self) -> int:
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        buffers = self.batch * self._heads * self.block_size * self._head_dim * 4
        return self.num_layers * 2 * (self._total_blocks * qblock + buffers)
