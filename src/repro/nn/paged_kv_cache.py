"""Paged, block-granular KV storage for the serving engine.

The rectangular :class:`~repro.nn.kv_cache.KVCache` allocates
``batch x capacity`` time slots per layer, so every short sequence pays
for the longest row and cache memory — not compute — caps the decode
batch size.  Here K/V live in fixed-size *blocks* (``block_size`` tokens)
drawn from one shared pool per layer; each batch row owns an ordered
block table, blocks are handed out as rows grow and returned to the free
list when the engine retires a sequence.  Cache memory therefore tracks
the *sum of live tokens* (rounded up to blocks) instead of
``batch x max_len`` — the PagedAttention discipline, scaled down to
numpy.

Two variants share the interface of the rectangular cache (``append`` /
``write_token`` / ``write_rows`` plus ``free_rows``), so attention and
the model are agnostic to which cache is threaded through:

* :class:`PagedKVCache` stores blocks in FP32.  Reads gather whole
  blocks and return the same float values a rectangular cache would, so
  greedy engine output stays token-identical to the sequential path.
* :class:`QuantizedPagedKVCache` stores *full* blocks in the FineQ
  weight format of :mod:`repro.core` — cluster-of-3 codes packed at 6
  bits per cluster with a shared 2-bit pair index and one FP16 scale per
  ``(head, dim)`` channel, clustered along the token axis — extending
  the paper's 2.33-bit memory story from weights to the KV cache.  The
  newest (current) block of every row stays in an FP32 write buffer and
  is quantized wholesale once the row starts its next block, so decode
  always reads exact values for the freshest ``<= block_size`` tokens
  and FineQ reconstructions for older context.

Block tables are shared across layers (block ``i`` of a row addresses
every layer's pool), which keeps allocation single-sourced while the
per-layer write/read state may lag mid-forward.  Freed and padded table
slots may be gathered before they are reused; they only ever contain
finite stale values (pools are zero-initialised), which the engine's
additive key mask turns into exact-zero attention contributions.

Blocks are *reference counted* so the serving engine's prefix store can
alias one physical block into many rows' tables (vLLM-style prefix
sharing): :meth:`PagedKVCache.ref_blocks` / :meth:`release_blocks` move
the count, :meth:`adopt_prefix` points a fresh row at an already-written
block chain, :meth:`share_block` hands out a reference to a row's block
(quantized caches freeze the FP32 write buffer into a pool block first),
and :meth:`copy_block` is the copy-on-write primitive used when a new
request diverges *inside* a partially-filled shared block.  A block
returns to the free list only when its last reference drops, so retiring
or cancelling a reader frees exactly the blocks it owned exclusively.
"""

from __future__ import annotations

import numpy as np

from repro.core.clusters import cluster_weights
from repro.core.encoding import encode_channels
from repro.core.packing import (CLUSTERS_PER_GROUP, GROUP_BYTES,
                                decode_payload, pack_matrix)

#: Tokens per cache block (vLLM's default granularity).
DEFAULT_BLOCK_SIZE = 16


def quantize_kv_block(blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """FineQ-encode ``(n, heads, block, head_dim)`` FP32 K/V blocks.

    Each ``(head, dim)`` pair is a channel; its ``block`` tokens are
    clustered in threes along the token axis and run through the paper's
    pipeline (outlier schemes -> pair harmonization -> Eq. 1 channel
    scale -> grid rounding -> 6-bit packing).  Returns ``(payload,
    scales)`` of shapes ``(n * heads * head_dim, groups * GROUP_BYTES)``
    uint8 and ``(n * heads * head_dim,)`` float16.
    """
    n, heads, block, head_dim = blocks.shape
    matrix = blocks.transpose(0, 1, 3, 2).reshape(n * heads * head_dim, block)
    clusters, _pad = cluster_weights(matrix)
    codes, schemes, scales = encode_channels(clusters)
    packed = pack_matrix(codes, schemes, scales.reshape(-1), matrix.shape)
    return packed.payload, packed.scales


def dequantize_kv_channels(payload: np.ndarray, scales: np.ndarray,
                           block_size: int) -> np.ndarray:
    """Inverse of :func:`quantize_kv_block` at the channel-matrix level.

    ``payload``/``scales`` are ``(channels, groups * GROUP_BYTES)`` and
    ``(channels,)``; returns ``(channels, block_size)`` float32.
    """
    codes, _ = decode_payload(payload)
    values = codes.astype(np.float32) * scales.astype(np.float32)[:, None, None]
    return values.reshape(len(payload), -1)[:, :block_size]


def _blocks_needed(tokens: int | np.ndarray, block_size: int):
    return -(-tokens // block_size)


class PagedKVCache:
    """Block-pooled FP32 K/V storage with per-row block tables.

    Parameters
    ----------
    num_layers:
        Transformer depth (one K and one V pool per layer).
    batch:
        Number of cache slots; the paged cache always pins its batch
        (it is a serving-engine object).
    block_size:
        Tokens per block.
    initial_blocks:
        Pool size at first write; when the free list runs dry the pool
        grows by half (floored at ``batch`` blocks) — amortized like the
        rectangular cache's doubling, but fine-grained enough that the
        physical footprint tracks live-token demand instead of jumping
        straight to the ``batch x max_len`` rectangle.
    max_blocks:
        Soft pool budget.  Writes never fail — the pool still grows when
        forced — but :meth:`available_blocks` reports the remaining
        headroom so the engine's scheduler can throttle admission or
        preempt low-priority rows instead of overshooting the budget.
    """

    def __init__(self, num_layers: int, batch: int,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 initial_blocks: int | None = None,
                 max_blocks: int | None = None):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.num_layers = num_layers
        self.batch = batch
        self.block_size = block_size
        self.initial_blocks = initial_blocks or 2 * batch
        self.max_blocks = max_blocks
        self._heads: int | None = None
        self._head_dim = 0
        self._total_blocks = 0
        self._free: list[int] = []
        self._refcount = np.zeros(0, dtype=np.int64)
        self._tables = np.zeros((batch, 0), dtype=np.int64)
        self._blocks_per_row = np.zeros(batch, dtype=np.int64)
        self._row_len = np.zeros(batch, dtype=np.int64)
        self._row_index = np.arange(batch)
        self._lengths = [0] * num_layers

    # ------------------------------------------------------------------ #
    # storage management
    # ------------------------------------------------------------------ #
    def _init_storage(self, like: np.ndarray) -> None:
        self._heads = int(like.shape[1])
        self._head_dim = int(like.shape[3])
        self._setup_layers()
        self._grow_pool(max(self.initial_blocks, 1))

    def _check_batch(self, data: np.ndarray) -> None:
        if data.shape[0] != self.batch:
            raise ValueError(f"batch mismatch: cache pinned to {self.batch} "
                             f"rows, got {data.shape[0]}")

    def _resolve_rows(self, data: np.ndarray,
                      rows: np.ndarray | None) -> np.ndarray:
        """Validated int64 row indices for a write (``None`` = all rows)."""
        if rows is None:
            self._check_batch(data)
            return self._row_index
        row_idx = np.asarray(rows, dtype=np.int64)
        if data.shape[0] != len(row_idx):
            raise ValueError(f"sub-batch mismatch: {len(row_idx)} rows, "
                             f"got {data.shape[0]} k/v entries")
        return row_idx

    def _setup_layers(self) -> None:
        self._pool_k: list[np.ndarray | None] = [None] * self.num_layers
        self._pool_v: list[np.ndarray | None] = [None] * self.num_layers

    def _grow_pool(self, new_total: int) -> None:
        for layer in range(self.num_layers):
            self._grow_layer(layer, new_total)
        self._free.extend(range(self._total_blocks, new_total))
        counts = np.zeros(new_total, dtype=np.int64)
        counts[:len(self._refcount)] = self._refcount
        self._refcount = counts
        self._total_blocks = new_total

    def _grow_layer(self, layer: int, new_total: int) -> None:
        shape = (new_total, self._heads, self.block_size, self._head_dim)
        for pool in (self._pool_k, self._pool_v):
            old = pool[layer]
            # Zero-filled on purpose: stale/padded block reads must stay
            # finite so masked rows contribute exact zeros, never NaNs.
            new = np.zeros(shape, dtype=np.float32)
            if old is not None:
                new[:old.shape[0]] = old
            pool[layer] = new

    def _take_block(self) -> int:
        if not self._free:
            growth = max(self.batch, self._total_blocks // 2, 1)
            self._grow_pool(self._total_blocks + growth)
        block = self._free.pop()
        self._refcount[block] = 1
        return block

    def _ensure_row_blocks(self, rows: np.ndarray, needed: np.ndarray) -> None:
        """Grow block tables so each of ``rows`` owns ``needed`` blocks."""
        if np.all(needed <= self._blocks_per_row[rows]):
            return  # steady-state decode: no row crossed a block boundary
        width = self._tables.shape[1]
        max_needed = int(np.max(needed, initial=0))
        if max_needed > width:
            wider = np.zeros((self.batch, max(max_needed, 2 * width)),
                             dtype=np.int64)
            wider[:, :width] = self._tables
            self._tables = wider
        for row, need in zip(np.asarray(rows).reshape(-1), np.asarray(needed).reshape(-1)):
            have = int(self._blocks_per_row[row])
            while have < need:
                self._tables[row, have] = self._take_block()
                have += 1
            self._blocks_per_row[row] = max(self._blocks_per_row[row], need)

    def free_rows(self, rows: np.ndarray) -> None:
        """Drop retired sequences' block references; free unshared blocks.

        A block only returns to the pool when its last reference drops,
        so retiring a reader of a shared prefix frees exactly the blocks
        it owned exclusively — the shared chain stays resident for the
        prefix store and its other readers.
        """
        for row in np.asarray(rows, dtype=np.int64).reshape(-1):
            count = int(self._blocks_per_row[row])
            self.release_blocks(self._tables[row, :count])
            self._blocks_per_row[row] = 0
            self._row_len[row] = 0

    def free_blocks(self) -> int:
        """Blocks on the shared free list (allocated but unowned)."""
        return len(self._free)

    def available_blocks(self) -> int | None:
        """Blocks grantable within the soft budget (None = unbounded)."""
        if self.max_blocks is None:
            return None
        return len(self._free) + max(0, self.max_blocks - self._total_blocks)

    # ------------------------------------------------------------------ #
    # block sharing (prefix reuse / copy-on-write)
    # ------------------------------------------------------------------ #
    def ref_blocks(self, block_ids) -> None:
        """Add one reference to each of ``block_ids``."""
        for block in np.asarray(block_ids, dtype=np.int64).reshape(-1):
            if self._refcount[block] < 1:
                raise ValueError(f"block {block} is free; cannot reference")
            self._refcount[block] += 1

    def release_blocks(self, block_ids) -> None:
        """Drop one reference per block; free blocks that hit zero."""
        for block in np.asarray(block_ids, dtype=np.int64).reshape(-1):
            block = int(block)
            if self._refcount[block] < 1:
                raise ValueError(f"block {block} released more than held")
            self._refcount[block] -= 1
            if self._refcount[block] == 0:
                self._free.append(block)

    def block_refcount(self, block_id: int) -> int:
        """Current reference count of one block (0 = on the free list)."""
        return int(self._refcount[block_id])

    def copy_block(self, src: int) -> int:
        """Copy-on-write primitive: duplicate ``src`` across every layer.

        Returns a fresh block (one reference, owned by the caller) whose
        K/V payload equals ``src``'s at copy time.  Used when a request
        diverges inside a partially-filled shared block: the writer gets
        a private copy, other readers keep the original.
        """
        dst = self._take_block()
        for layer in range(self.num_layers):
            for pool in (self._pool_k, self._pool_v):
                pool[layer][dst] = pool[layer][src]
        return dst

    def share_block(self, row: int, depth: int, fill: int) -> int:
        """Reference block ``depth`` of ``row`` for sharing; returns its id.

        ``fill`` is how many leading tokens of the block the caller will
        advertise (``block_size`` for a full block).  The FP32 cache can
        hand out the live block directly — the first ``fill`` slots are
        prompt content and are never rewritten; later slots may keep
        mutating under the owning row's decode, so consumers of a partial
        block must copy-on-write before trusting slots ``>= fill``.
        The caller owns one reference on the returned id.
        """
        if depth >= self._blocks_per_row[row]:
            raise ValueError(f"row {row} owns {self._blocks_per_row[row]} "
                             f"blocks; cannot share depth {depth}")
        block = int(self._tables[row, depth])
        self.ref_blocks([block])
        return block

    def adopt_prefix(self, row: int, full_ids, tail_id: int | None = None,
                     tail_keep: int = 0) -> int:
        """Point a fresh row at an already-written shared block chain.

        ``full_ids`` are full shared blocks adopted *by reference*;
        ``tail_id`` (optional) is a partially-filled shared block whose
        first ``tail_keep`` tokens the row reuses — adopted copy-on-write
        through the format's :meth:`_adopt_tail`, since the row will keep
        writing into that block.  Returns the row's resulting token
        length.
        """
        if self._blocks_per_row[row] != 0:
            raise ValueError(f"row {row} still owns blocks; free it first")
        if tail_id is None:
            tail_keep = 0
        elif not 0 < tail_keep < self.block_size:
            raise ValueError("tail_keep must be in (0, block_size) "
                             "when a tail block is adopted")
        full_ids = [int(b) for b in np.asarray(full_ids,
                                               dtype=np.int64).reshape(-1)]
        self.ref_blocks(full_ids)
        ids = list(full_ids)
        if tail_id is not None:
            ids += self._adopt_tail(row, tail_id, tail_keep)
        width = self._tables.shape[1]
        if len(ids) > width:
            wider = np.zeros((self.batch, max(len(ids), 2 * width)),
                             dtype=np.int64)
            wider[:, :width] = self._tables
            self._tables = wider
        self._tables[row, :len(ids)] = ids
        self._blocks_per_row[row] = len(ids)
        length = len(full_ids) * self.block_size + tail_keep
        self._row_len[row] = length
        return length

    def _adopt_tail(self, row: int, tail_id: int, tail_keep: int
                    ) -> list[int]:
        """COW the shared tail into private writable storage; returns any
        blocks to append to the row's chain.  FP32: a block copy."""
        return [self.copy_block(tail_id)]

    def trim(self, max_len: int) -> None:
        """Clamp the logical context width to ``max_len`` time steps.

        Shrinks the per-layer read width after rows retire so a
        persistent session stops gathering (and, quantized, decoding)
        the historical longest row's width; pool blocks are unaffected
        (``free_rows`` already reclaimed them).
        """
        self._lengths = [min(length, max_len) for length in self._lengths]

    # ------------------------------------------------------------------ #
    # write paths (rectangular-cache interface)
    # ------------------------------------------------------------------ #
    def append(self, layer: int, k: np.ndarray, v: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform append for all batch rows; returns gathered context."""
        self._check_batch(k)
        if self._heads is None:
            self._init_storage(k)
        start = self._lengths[layer]
        seq = k.shape[2]
        stop = start + seq
        bs = self.block_size
        rows = self._row_index
        self._ensure_row_blocks(rows, np.full(self.batch,
                                              _blocks_needed(stop, bs)))
        for block in range(start // bs, (stop - 1) // bs + 1):
            lo, hi = max(start, block * bs), min(stop, (block + 1) * bs)
            ids = self._tables[:, block]
            self._pool_k[layer][ids, :, lo - block * bs:hi - block * bs] = \
                k[:, :, lo - start:hi - start]
            self._pool_v[layer][ids, :, lo - block * bs:hi - block * bs] = \
                v[:, :, lo - start:hi - start]
        self._lengths[layer] = stop
        self._row_len = np.maximum(self._row_len, stop)
        return self._context(layer)

    def write_token(self, layer: int, k: np.ndarray, v: np.ndarray,
                    positions: np.ndarray,
                    rows: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Scatter one decode token per batch row at ``positions``.

        ``rows`` (a sub-batch of cache rows, the engine's active slots)
        restricts both the writes and the returned gathered context to
        those rows; idle rows then pin no blocks and cost no gather.
        """
        row_idx = self._resolve_rows(k, rows)
        if self._heads is None:
            self._init_storage(k)
        positions = np.asarray(positions, dtype=np.int64)
        bs = self.block_size
        blocks = positions // bs
        self._ensure_row_blocks(row_idx, blocks + 1)
        ids = self._tables[row_idx, blocks]
        slots = positions % bs
        self._pool_k[layer][ids, :, slots] = k[:, :, 0]
        self._pool_v[layer][ids, :, slots] = v[:, :, 0]
        self._lengths[layer] = max(self._lengths[layer],
                                   int(positions.max()) + 1)
        self._row_len[row_idx] = np.maximum(self._row_len[row_idx],
                                            positions + 1)
        return self._context(layer, rows=None if rows is None else row_idx)

    def write_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                   rows: np.ndarray,
                   row_lengths: np.ndarray | None = None) -> None:
        """Prefill batch rows ``rows`` from slot zero (fresh sequences).

        ``row_lengths`` gives each row's *true* prompt length when ``k``/
        ``v`` are right-padded to a common width (the engine's ragged
        sub-batch admits); rows then only own and account for the blocks
        their real tokens need.  Without it every row spans ``k``'s full
        width.
        """
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        seq = k.shape[2]
        lens = (np.full(len(rows), seq, dtype=np.int64)
                if row_lengths is None
                else np.asarray(row_lengths, dtype=np.int64))
        bs = self.block_size
        per_row_blocks = _blocks_needed(lens, bs)
        self._ensure_row_blocks(rows, per_row_blocks)
        max_blocks = int(per_row_blocks.max())
        owned = np.arange(max_blocks)[None, :] < per_row_blocks[:, None]
        ids = self._tables[rows][:, :max_blocks][owned]
        self._pool_k[layer][ids] = self._as_blocks(k, max_blocks)[owned]
        self._pool_v[layer][ids] = self._as_blocks(v, max_blocks)[owned]
        self._lengths[layer] = max(self._lengths[layer], int(lens.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], lens)

    def prefill_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                     rows: np.ndarray, starts: np.ndarray,
                     row_lengths: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Write per-row suffix spans and return the gathered context.

        The prefix-sharing prefill: row ``j`` already holds ``starts[j]``
        context tokens (adopted shared blocks), and ``k``/``v`` carry its
        next ``row_lengths[j]`` tokens (right-padded to a common width).
        Writes land at absolute positions ``starts[j] ..
        starts[j] + row_lengths[j] - 1`` — continuing a partially-filled
        block in place when the span starts mid-block — and the returned
        arrays gather each row's full context (shared prefix + new
        suffix), which is what suffix attention needs to read.
        """
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        lens = np.asarray(row_lengths, dtype=np.int64)
        self._write_span(layer, k, v, rows, starts, lens)
        totals = starts + lens
        self._lengths[layer] = max(self._lengths[layer], int(totals.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], totals)
        return self._context(layer, rows=rows)

    def _write_span(self, layer: int, k: np.ndarray, v: np.ndarray,
                    rows: np.ndarray, starts: np.ndarray,
                    lens: np.ndarray) -> None:
        bs = self.block_size
        self._ensure_row_blocks(rows, _blocks_needed(starts + lens, bs))
        for j, row in enumerate(rows):
            pos, end = int(starts[j]), int(starts[j] + lens[j])
            while pos < end:
                block, lo = pos // bs, pos % bs
                take = min(bs - lo, end - pos)
                block_id = self._tables[row, block]
                self._pool_k[layer][block_id, :, lo:lo + take] = \
                    k[j, :, pos - int(starts[j]):pos - int(starts[j]) + take]
                self._pool_v[layer][block_id, :, lo:lo + take] = \
                    v[j, :, pos - int(starts[j]):pos - int(starts[j]) + take]
                pos += take

    def _as_blocks(self, data: np.ndarray, nblk: int) -> np.ndarray:
        """``(n, heads, seq, hd)`` -> ``(n, nblk, heads, block, hd)``."""
        n, heads, seq, head_dim = data.shape
        bs = self.block_size
        width = min(seq, nblk * bs)
        padded = np.zeros((n, heads, nblk * bs, head_dim), dtype=np.float32)
        padded[:, :, :width] = data[:, :, :width]
        return padded.reshape(n, heads, nblk, bs, head_dim) \
                     .transpose(0, 2, 1, 3, 4)

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def _block_ids(self, nblk: int,
                   rows: np.ndarray | None = None) -> np.ndarray:
        """Per-row block ids padded to ``nblk`` columns (pad gathers block
        0 — finite stale data that per-row masks zero out).  ``rows``
        restricts the result to a sub-batch without ever materialising
        the full-batch matrix."""
        tables = self._tables if rows is None else self._tables[rows]
        width = tables.shape[1]
        if width >= nblk:
            return tables[:, :nblk]
        ids = np.zeros((tables.shape[0], nblk), dtype=np.int64)
        ids[:, :width] = tables
        return ids

    def _context(self, layer: int, rows: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        total = self._lengths[layer]
        nblk = _blocks_needed(total, self.block_size)
        ids = self._block_ids(nblk, rows)
        return (self._gather(self._pool_k[layer], ids)[:, :, :total],
                self._gather(self._pool_v[layer], ids)[:, :, :total])

    def _gather(self, pool: np.ndarray, ids: np.ndarray) -> np.ndarray:
        batch, nblk = ids.shape
        blocks = pool[ids]  # (batch, nblk, heads, block, head_dim)
        return blocks.transpose(0, 2, 1, 3, 4).reshape(
            batch, self._heads, nblk * self.block_size, self._head_dim)

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def seq_len(self) -> int:
        return self._lengths[0]

    def layer_len(self, layer: int) -> int:
        """Cached time steps for ``layer`` (may lag ``seq_len`` mid-forward)."""
        return self._lengths[layer]

    @property
    def cached_tokens(self) -> int:
        """Live tokens across all rows (idle rows decoding dummy tokens
        register one slot-0 token until the row is prefilled again)."""
        return int(self._row_len.sum())

    def blocks_in_use(self) -> int:
        return int(self._blocks_per_row.sum())

    def used_bytes(self) -> int:
        """Bytes storing the currently cached tokens (FP32 here).

        Logical accounting: with prefix sharing a block read by many rows
        is counted once per reader (this is what decode gathers stream);
        :meth:`physical_used_bytes` counts each resident block once.
        """
        if self._heads is None:
            return 0
        per_token = 2 * self._heads * self._head_dim * 4
        return self.num_layers * per_token * self.cached_tokens

    def physical_used_bytes(self) -> int:
        """Bytes of blocks holding at least one reference (each counted
        once, however many rows alias it) — the resident cache footprint
        prefix sharing actually shrinks."""
        if self._heads is None:
            return 0
        block_bytes = self._heads * self.block_size * self._head_dim * 4
        held = self._total_blocks - len(self._free)
        return self.num_layers * 2 * held * block_bytes

    def allocated_bytes(self) -> int:
        """Physical pool footprint, free blocks included."""
        if self._heads is None:
            return 0
        block_bytes = self._heads * self.block_size * self._head_dim * 4
        return self.num_layers * 2 * self._total_blocks * block_bytes


class QuantizedPagedKVCache(PagedKVCache):
    """Paged cache whose full blocks are stored in the FineQ format.

    Storage per layer: ``payload`` pools of packed 6-bit cluster codes
    (uint8) plus FP16 per-channel scale pools for K and V, and one FP32
    write buffer of ``(batch, heads, block, head_dim)`` holding every
    row's current block.  A row's block is quantized in one shot when the
    row writes the first token of its *next* block, so ``block_size`` is
    also the exactness horizon: the newest ``<= block_size`` tokens of
    each row always read back bit-exact.

    ``_blocks_per_row`` counts *quantized* blocks only; the current
    block lives in the write buffer and owns no pool block yet.
    """

    def _setup_layers(self) -> None:
        bs = self.block_size
        clusters = _blocks_needed(bs, 3)
        groups = _blocks_needed(clusters, CLUSTERS_PER_GROUP)
        self._channels = self._heads * self._head_dim
        self._payload_bytes = groups * GROUP_BYTES
        layers = self.num_layers
        self._payload_k: list[np.ndarray | None] = [None] * layers
        self._payload_v: list[np.ndarray | None] = [None] * layers
        self._scale_k: list[np.ndarray | None] = [None] * layers
        self._scale_v: list[np.ndarray | None] = [None] * layers
        buf_shape = (self.batch, self._heads, bs, self._head_dim)
        self._buf_k = [np.zeros(buf_shape, dtype=np.float32)
                       for _ in range(layers)]
        self._buf_v = [np.zeros(buf_shape, dtype=np.float32)
                       for _ in range(layers)]

    def _grow_layer(self, layer: int, new_total: int) -> None:
        specs = (
            (self._payload_k, (self._channels, self._payload_bytes), np.uint8),
            (self._payload_v, (self._channels, self._payload_bytes), np.uint8),
            (self._scale_k, (self._channels,), np.float16),
            (self._scale_v, (self._channels,), np.float16),
        )
        for pool, tail, dtype in specs:
            old = pool[layer]
            new = np.zeros((new_total,) + tail, dtype=dtype)
            if old is not None:
                new[:old.shape[0]] = old
            pool[layer] = new

    # ------------------------------------------------------------------ #
    # write paths
    # ------------------------------------------------------------------ #
    def _quantize_into(self, layer: int, ids: np.ndarray,
                       k_blocks: np.ndarray, v_blocks: np.ndarray) -> None:
        count = len(ids)
        for payload_pool, scale_pool, data in (
                (self._payload_k[layer], self._scale_k[layer], k_blocks),
                (self._payload_v[layer], self._scale_v[layer], v_blocks)):
            payload, scales = quantize_kv_block(data)
            payload_pool[ids] = payload.reshape(count, self._channels, -1)
            scale_pool[ids] = scales.reshape(count, self._channels)

    # ------------------------------------------------------------------ #
    # block sharing (prefix reuse / copy-on-write, quantized format)
    # ------------------------------------------------------------------ #
    def copy_block(self, src: int) -> int:
        """COW in the 2.33-bit format: duplicate payload + scales."""
        dst = self._take_block()
        for layer in range(self.num_layers):
            for pool in (self._payload_k, self._payload_v,
                         self._scale_k, self._scale_v):
                pool[layer][dst] = pool[layer][src]
        return dst

    def share_block(self, row: int, depth: int, fill: int) -> int:
        """Reference (or freeze) block ``depth`` of ``row`` for sharing.

        Blocks the row has already quantized are immutable, so they are
        shared by reference like the FP32 cache's.  The row's *current*
        block lives only in its FP32 write buffer; sharing it quantizes a
        snapshot of its first ``fill`` tokens (zero-padded so garbage
        beyond ``fill`` cannot inflate the channel scales) into a fresh
        pool block owned by the caller.  The shared prefix is therefore
        always served in the paper's 2.33-bit format — quantized once,
        dequantized by every reader.
        """
        owned = int(self._blocks_per_row[row])
        if depth < owned:
            return super().share_block(row, depth, self.block_size)
        if depth != owned:
            raise ValueError(f"row {row} has no content at block {depth}")
        buffered = int(self._row_len[row]) - owned * self.block_size
        if not 0 < fill <= buffered:
            raise ValueError(f"row {row} buffers {buffered} tokens; "
                             f"cannot freeze {fill}")
        block = self._take_block()
        keep = (np.arange(self.block_size) < fill)[None, :, None]
        for layer in range(self.num_layers):
            self._quantize_into(
                layer, np.array([block]),
                (self._buf_k[layer][row] * keep)[None],
                (self._buf_v[layer][row] * keep)[None])
        return block

    def _adopt_tail(self, row: int, tail_id: int, tail_keep: int
                    ) -> list[int]:
        """COW in the quantized format: the shared partial block is
        *dequantized into the row's FP32 write buffer* — the quantized
        analogue of a block copy — so the row can keep appending suffix
        tokens to the partially-filled block without touching the shared
        original (which stays quantized-once for its other readers).  No
        pool block joins the row's chain; the buffer is the current
        block."""
        bs = self.block_size
        for layer in range(self.num_layers):
            for payload_pool, scale_pool, buf in (
                    (self._payload_k, self._scale_k, self._buf_k),
                    (self._payload_v, self._scale_v, self._buf_v)):
                channels = dequantize_kv_channels(
                    payload_pool[layer][tail_id],
                    scale_pool[layer][tail_id], bs)
                buf[layer][row] = channels.reshape(
                    self._heads, self._head_dim, bs).transpose(0, 2, 1)
        return []

    def _write_span(self, layer: int, k: np.ndarray, v: np.ndarray,
                    rows: np.ndarray, starts: np.ndarray,
                    lens: np.ndarray) -> None:
        """Span writes under the decode discipline: every block — the
        final, possibly partial one included — passes through the FP32
        write buffer, and only blocks *strictly before* the final one are
        quantized (when the span moves past them, exactly like a decode
        crossing).  The newest ``<= block_size`` tokens therefore read
        back bit-exact after a prefill, same as after decode."""
        bs = self.block_size
        flush_ids, flush_k, flush_v = [], [], []
        for j, row in enumerate(rows):
            s, end = int(starts[j]), int(starts[j] + lens[j])
            last_start = ((end - 1) // bs) * bs  # block left in the buffer
            pos = s
            while pos < end:
                block, lo = pos // bs, pos % bs
                take = min(bs - lo, end - pos)
                self._buf_k[layer][row, :, lo:lo + take] = \
                    k[j, :, pos - s:pos - s + take]
                self._buf_v[layer][row, :, lo:lo + take] = \
                    v[j, :, pos - s:pos - s + take]
                pos += take
                if pos <= last_start:  # completed a non-final block
                    self._ensure_row_blocks(np.array([row]),
                                            np.array([block + 1]))
                    flush_ids.append(int(self._tables[row, block]))
                    flush_k.append(self._buf_k[layer][row].copy())
                    flush_v.append(self._buf_v[layer][row].copy())
        if flush_ids:
            self._quantize_into(layer, np.asarray(flush_ids),
                                np.stack(flush_k), np.stack(flush_v))

    def write_token(self, layer: int, k: np.ndarray, v: np.ndarray,
                    positions: np.ndarray,
                    rows: np.ndarray | None = None
                    ) -> tuple[np.ndarray, np.ndarray]:
        row_idx = self._resolve_rows(k, rows)
        if self._heads is None:
            self._init_storage(k)
        positions = np.asarray(positions, dtype=np.int64)
        bs = self.block_size
        slots = positions % bs
        # A row starting block b quantizes its buffered block b-1 first.
        # Rows whose whole context is adopted *quantized* blocks (prefix
        # sharing with a block-aligned match) have nothing buffered: their
        # previous block is shared and already quantized, and flushing
        # would overwrite it with stale buffer contents.
        buffered = self._row_len[row_idx] - self._blocks_per_row[row_idx] * bs
        flush = (slots == 0) & (positions > 0) & (buffered > 0)
        if flush.any():
            flush_rows = row_idx[flush]
            block_index = positions[flush] // bs - 1
            self._ensure_row_blocks(flush_rows, block_index + 1)
            ids = self._tables[flush_rows, block_index]
            self._quantize_into(layer, ids,
                                self._buf_k[layer][flush_rows],
                                self._buf_v[layer][flush_rows])
        self._buf_k[layer][row_idx, :, slots] = k[:, :, 0]
        self._buf_v[layer][row_idx, :, slots] = v[:, :, 0]
        self._lengths[layer] = max(self._lengths[layer],
                                   int(positions.max()) + 1)
        self._row_len[row_idx] = np.maximum(self._row_len[row_idx],
                                            positions + 1)
        return self._context(layer, rows=None if rows is None else row_idx)

    def write_rows(self, layer: int, k: np.ndarray, v: np.ndarray,
                   rows: np.ndarray,
                   row_lengths: np.ndarray | None = None) -> None:
        if self._heads is None:
            self._init_storage(k)
        rows = np.asarray(rows, dtype=np.int64)
        seq = k.shape[2]
        lens = (np.full(len(rows), seq, dtype=np.int64)
                if row_lengths is None
                else np.asarray(row_lengths, dtype=np.int64))
        bs = self.block_size
        # Each row's current (possibly exactly-full) block stays in the
        # FP32 buffer; only its strictly earlier blocks are quantized.
        # True per-row lengths matter here: the buffer/overlay alignment
        # is derived from _row_len, so a padded width would shift it.
        current = (lens - 1) // bs
        max_current = int(current.max())
        if max_current:
            self._ensure_row_blocks(rows, current)
            quantized = np.arange(max_current)[None, :] < current[:, None]
            ids = self._tables[rows][:, :max_current][quantized]
            self._quantize_into(layer, ids,
                                self._as_blocks(k, max_current)[quantized],
                                self._as_blocks(v, max_current)[quantized])
        for j, row in enumerate(rows):
            start = int(current[j]) * bs
            fill = int(lens[j]) - start
            self._buf_k[layer][row, :, :fill] = k[j, :, start:start + fill]
            self._buf_v[layer][row, :, :fill] = v[j, :, start:start + fill]
        self._lengths[layer] = max(self._lengths[layer], int(lens.max()))
        self._row_len[rows] = np.maximum(self._row_len[rows], lens)

    def append(self, layer: int, k: np.ndarray, v: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Uniform single-token append (the cached-perplexity path)."""
        if k.shape[2] != 1:
            raise NotImplementedError(
                "QuantizedPagedKVCache.append supports one token per step; "
                "prefill through write_rows")
        if self._heads is None:
            self._init_storage(k)
        positions = np.full(k.shape[0], self._lengths[layer], dtype=np.int64)
        return self.write_token(layer, k, v, positions)

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def _context(self, layer: int, rows: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        total = self._lengths[layer]
        bs = self.block_size
        nblk = _blocks_needed(total, bs)
        row_idx = self._row_index if rows is None else rows
        n = len(row_idx)
        # Decode only blocks a row actually owns (its quantized prefix):
        # current blocks are overwritten by the FP32 overlay below and
        # stale/padding table slots carry nothing, so decoding them would
        # be wasted LUT work on the hot read path.  Unowned positions stay
        # zero — finite, and masked or sliced away by the caller.
        owned = np.arange(nblk)[None, :] < self._blocks_per_row[row_idx, None]
        flat_owned = owned.reshape(-1)
        selected = self._block_ids(nblk, rows).reshape(-1)[flat_owned]
        row_lens = self._row_len[row_idx]
        # Overlay only rows that actually hold buffered tokens: a row whose
        # context is entirely adopted quantized blocks (block-aligned
        # prefix match) has an empty buffer, and overlaying it would mask
        # its newest shared block with stale data.
        buffered = row_lens - self._blocks_per_row[row_idx] * bs
        live = np.nonzero(buffered > 0)[0]  # indices into the sub-batch
        current = (row_lens[live] - 1) // bs
        out = []
        for payload_pool, scale_pool, buf in (
                (self._payload_k[layer], self._scale_k[layer], self._buf_k[layer]),
                (self._payload_v[layer], self._scale_v[layer], self._buf_v[layer])):
            channels = np.zeros((n * nblk, self._channels, bs),
                                dtype=np.float32)
            if selected.size:
                channels[flat_owned] = dequantize_kv_channels(
                    payload_pool[selected].reshape(-1, self._payload_bytes),
                    scale_pool[selected].reshape(-1), bs
                ).reshape(-1, self._channels, bs)
            blocks = channels.reshape(n, nblk, self._heads,
                                      self._head_dim, bs) \
                             .transpose(0, 1, 2, 4, 3)
            # Overlay each live row's FP32 current block (exact values for
            # the newest <= block_size tokens).
            blocks[live, current] = buf[row_idx[live]]
            out.append(blocks.transpose(0, 2, 1, 3, 4).reshape(
                n, self._heads, nblk * bs, self._head_dim)[:, :, :total])
        return out[0], out[1]

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def used_bytes(self) -> int:
        """Bytes storing the cached tokens: FineQ payload + FP16 scales
        for quantized blocks, FP32 for tokens still in write buffers."""
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        buffered = int((self._row_len
                        - self._blocks_per_row * self.block_size).sum())
        per_buffered_token = self._heads * self._head_dim * 4
        return self.num_layers * 2 * (self.blocks_in_use() * qblock
                                      + buffered * per_buffered_token)

    def physical_used_bytes(self) -> int:
        """Resident bytes: each referenced quantized block once (however
        many rows alias it) plus the FP32 tokens still in write buffers."""
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        held = self._total_blocks - len(self._free)
        buffered = int((self._row_len
                        - self._blocks_per_row * self.block_size).sum())
        per_buffered_token = self._heads * self._head_dim * 4
        return self.num_layers * 2 * (held * qblock
                                      + buffered * per_buffered_token)

    def allocated_bytes(self) -> int:
        if self._heads is None:
            return 0
        qblock = self._channels * (self._payload_bytes + 2)
        buffers = self.batch * self._heads * self.block_size * self._head_dim * 4
        return self.num_layers * 2 * (self._total_blocks * qblock + buffers)
