"""Minimal module system: parameter registration and state serialization."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery.

    Sub-modules and parameters are discovered through instance attributes,
    including those held in plain lists (used for layer stacks).
    """

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_modules(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{full}.{i}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.shape}")
            param.data = value.copy()

    def save(self, path) -> None:
        np.savez_compressed(path, **self.state_dict())

    def load(self, path) -> None:
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
