"""Evaluation: perplexity harness and experiment sweep utilities."""

from repro.eval.perplexity import (cached_perplexity, perplexity,
                                   dataset_perplexity, eval_stream)
from repro.eval.harness import (clone_model, quantized_perplexity,
                                run_method_sweep, MethodResult,
                                default_calibration_batches)
from repro.eval.tables import format_table, format_markdown

__all__ = [
    "cached_perplexity", "perplexity", "dataset_perplexity", "eval_stream",
    "clone_model",
    "quantized_perplexity", "run_method_sweep", "MethodResult",
    "default_calibration_batches", "format_table", "format_markdown",
]
