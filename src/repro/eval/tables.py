"""Paper-style table formatting for experiment outputs."""

from __future__ import annotations


def format_number(value: float) -> str:
    """Paper-style numeric formatting: scientific for huge perplexities."""
    if value >= 1e4:
        return f"{value:.1E}".replace("E+0", "E+")
    return f"{value:.2f}"


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width console table."""
    cells = [[_stringify(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown(headers: list[str], rows: list[list]) -> str:
    """GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(c) for c in row) + " |")
    return "\n".join(lines)


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return format_number(cell)
    return str(cell)
