"""Perplexity evaluation (the paper's accuracy metric).

Matches standard LLM practice: the token stream is cut into
non-overlapping windows of the evaluation sequence length, and perplexity
is ``exp`` of the mean next-token negative log-likelihood over all target
positions.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import no_grad
from repro.autograd.functional import nll_per_token
from repro.data.corpus import generate_corpus
from repro.data.tokenizer import WordTokenizer
from repro.nn.model import TransformerLM

#: Seed offset so evaluation text is disjoint from zoo training text.
EVAL_SEED = 917


def eval_stream(tokenizer: WordTokenizer, dataset: str,
                num_sentences: int = 4000, seed: int = EVAL_SEED) -> np.ndarray:
    """Held-out token stream for ``dataset`` (wikitext-sim / c4-sim)."""
    return tokenizer.encode(generate_corpus(dataset, num_sentences, seed=seed))


def _token_windows(stream: np.ndarray, seq_len: int,
                   max_windows: int | None = None) -> np.ndarray:
    """Non-overlapping ``(windows, seq_len + 1)`` token windows.

    Each row carries one extra token so targets are the row shifted by
    one.  One vectorized gather for every window instead of a python
    slice-and-stack per batch; shared by every perplexity variant so the
    windowing convention cannot drift between them.
    """
    stream = np.asarray(stream, dtype=np.int64).reshape(-1)
    num_windows = (len(stream) - 1) // seq_len
    if max_windows is not None:
        num_windows = min(num_windows, max_windows)
    if num_windows == 0:
        raise ValueError(f"stream of {len(stream)} tokens shorter than "
                         f"seq_len={seq_len}")
    starts = np.arange(num_windows)[:, None] * seq_len
    return stream[starts + np.arange(seq_len + 1)[None, :]]


def perplexity(model: TransformerLM, stream: np.ndarray, seq_len: int,
               batch_size: int = 8, max_tokens: int | None = 20_000) -> float:
    """Perplexity of ``model`` on ``stream`` at window length ``seq_len``."""
    stream = np.asarray(stream, dtype=np.int64).reshape(-1)
    if max_tokens is not None:
        stream = stream[:max_tokens]
    all_windows = _token_windows(stream, seq_len)
    num_windows = len(all_windows)
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        for start in range(0, num_windows, batch_size):
            windows = all_windows[start:start + batch_size]
            logits = model(windows[:, :-1]).data
            nll = nll_per_token(logits, windows[:, 1:])
            total_nll += float(nll.sum())
            total_tokens += nll.size
    mean_nll = total_nll / total_tokens
    # Clamp to the paper's display convention (their tables saturate ~1e6+).
    return float(np.exp(min(mean_nll, 30.0)))


def cached_perplexity(model: TransformerLM, stream: np.ndarray, seq_len: int,
                      cache_factory, batch_size: int = 8,
                      max_windows: int | None = 16) -> float:
    """Perplexity with every prediction produced through a KV cache.

    :func:`perplexity` does one full forward per window, so the KV cache
    never participates.  Here each window's tokens are fed one at a time
    (teacher forcing) and every next-token distribution attends over
    *cached* keys/values — the read path that an approximate cache (e.g.
    the FineQ-quantized paged cache) actually changes.  ``cache_factory``
    receives the batch-row count and returns a fresh cache; comparing the
    result across factories isolates the accuracy cost of the cache
    format itself.

    Token-by-token evaluation costs ``seq_len`` model calls per window
    (each re-reading the whole cached context), so unlike
    :func:`perplexity`'s 20k-token cap the default here is a modest
    ``max_windows=16``; pass ``None`` deliberately for a full-stream run.
    """
    all_windows = _token_windows(stream, seq_len, max_windows=max_windows)
    num_windows = len(all_windows)
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        for start in range(0, num_windows, batch_size):
            windows = all_windows[start:start + batch_size]
            cache = cache_factory(len(windows))
            for t in range(seq_len):
                logits = model(windows[:, t:t + 1], cache=cache).data
                nll = nll_per_token(logits[:, 0], windows[:, t + 1])
                total_nll += float(nll.sum())
                total_tokens += nll.size
    mean_nll = total_nll / total_tokens
    return float(np.exp(min(mean_nll, 30.0)))


def dataset_perplexity(model: TransformerLM, tokenizer: WordTokenizer,
                       dataset: str, seq_len: int, batch_size: int = 8,
                       max_tokens: int | None = 20_000) -> float:
    """Perplexity on a named held-out synthetic dataset."""
    stream = eval_stream(tokenizer, dataset)
    return perplexity(model, stream, seq_len, batch_size=batch_size,
                      max_tokens=max_tokens)
