"""Method x model x dataset sweep runner used by all accuracy experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.tokenizer import WordTokenizer
from repro.eval.perplexity import dataset_perplexity, eval_stream
from repro.nn.model import TransformerLM
from repro.quant.base import ModelQuantReport
from repro.quant.calibration import (calibration_batches, collect_layer_inputs,
                                     sequential_quantize)
from repro.quant.registry import get_quantizer
from repro.serve.bench import bench_prompts, serve_session


@dataclass
class MethodResult:
    """One (method, model) evaluation row."""

    method: str
    avg_bits: float
    perplexity: dict[str, float] = field(default_factory=dict)  # dataset -> ppl
    detail: dict = field(default_factory=dict)


def clone_model(model: TransformerLM) -> TransformerLM:
    """Fresh model instance with copied weights (quantization sandbox)."""
    clone = TransformerLM(model.config)
    clone.load_state_dict(model.state_dict())
    return clone


def quantized_perplexity(model: TransformerLM, tokenizer: WordTokenizer,
                         method: str, datasets: tuple[str, ...],
                         seq_len: int,
                         method_kwargs: dict | None = None,
                         calibration: np.ndarray | None = None,
                         max_tokens: int | None = 20_000,
                         measure_throughput: bool = False
                         ) -> tuple[MethodResult, ModelQuantReport | None]:
    """Quantize a clone of ``model`` with ``method`` and measure perplexity.

    ``method="fp16"`` is the unquantized reference.  Calibration-based
    methods follow the faithful sequential protocol: each block is
    calibrated on activations from the already-quantized prefix.

    With ``measure_throughput`` the quantized model is also served through
    the engine's session API: decode/prefill tokens-per-second plus the
    streamed mean/p95 inter-token latency land in ``result.detail`` —
    accuracy and serving speed from one sweep.
    """
    work = clone_model(model)
    report = None
    if method == "fp16":
        avg_bits = 16.0
    else:
        quantizer = get_quantizer(method, **(method_kwargs or {}))
        if quantizer.needs_calibration:
            if calibration is None:
                calibration = default_calibration_batches(work, tokenizer)
            report = sequential_quantize(work, quantizer, calibration)
        else:
            report = quantizer.quantize_model(work)
        avg_bits = report.avg_bits
    result = MethodResult(method=method, avg_bits=avg_bits)
    for dataset in datasets:
        result.perplexity[dataset] = dataset_perplexity(
            work, tokenizer, dataset, seq_len, max_tokens=max_tokens)
    if measure_throughput:
        engine, latency = serve_session(
            work, bench_prompts(work.config.vocab_size, num=8),
            max_new_tokens=16, batch_size=8)
        stats = engine.stats
        result.detail["decode_tokens_per_s"] = stats.decode_tokens_per_s
        result.detail["prefill_tokens_per_s"] = stats.prefill_tokens_per_s
        result.detail["inter_token_mean_s"] = latency.mean_inter_token_s
        result.detail["inter_token_p95_s"] = latency.p95_inter_token_s
    return result, report


def default_calibration_batches(model: TransformerLM, tokenizer: WordTokenizer,
                                num_tokens: int = 4096) -> np.ndarray:
    """Held-out mixed-domain calibration token windows.

    Mixing both corpora mirrors standard practice (GPTQ/OWQ calibrate on
    generic web text, not the evaluation set).
    """
    streams = [eval_stream(tokenizer, name, num_sentences=1000, seed=31)
               for name in ("wikitext-sim", "c4-sim")]
    stream = np.concatenate(streams)
    seq_len = min(128, model.config.max_seq_len)
    return calibration_batches(stream, num_tokens=num_tokens, seq_len=seq_len)


def run_method_sweep(model: TransformerLM, tokenizer: WordTokenizer,
                     methods: list[tuple[str, dict]],
                     datasets: tuple[str, ...] = ("wikitext-sim", "c4-sim"),
                     seq_len: int = 256,
                     max_tokens: int | None = 20_000) -> list[MethodResult]:
    """Evaluate several methods on one model, sharing calibration tokens."""
    calibration = None
    needs = any(m != "fp16" and get_quantizer(m, **(kw or {})).needs_calibration
                for m, kw in methods)
    if needs:
        calibration = default_calibration_batches(model, tokenizer)
    results = []
    for method, kwargs in methods:
        result, report = quantized_perplexity(
            model, tokenizer, method, datasets, seq_len,
            method_kwargs=kwargs, calibration=calibration,
            max_tokens=max_tokens)
        if report is not None:
            sample = next(iter(report.records.values()))
            result.detail["example_record"] = sample.detail
        results.append(result)
    return results
