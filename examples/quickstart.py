"""Quickstart: train a small LM, quantize it with FineQ, compare baselines.

Runs in ~1 minute on a laptop CPU (no GPU, no downloads):

    python examples/quickstart.py
"""

import numpy as np

from repro.data import generate_corpus, WordTokenizer, split_stream
from repro.eval import run_method_sweep, format_table
from repro.models import OutlierSpec, pretrain_column_outliers, inject_outliers
from repro.nn import ModelConfig, TransformerLM
from repro.train import Trainer, TrainConfig


def main() -> None:
    print("1. building synthetic corpora (WikiText2/C4 stand-ins) ...")
    wiki = generate_corpus("wikitext-sim", 5000, seed=0)
    c4 = generate_corpus("c4-sim", 5000, seed=0)
    tokenizer = WordTokenizer.train([wiki, c4], vocab_size=512)
    stream = np.concatenate([tokenizer.encode(wiki), tokenizer.encode(c4)])
    train, val = split_stream(stream, val_fraction=0.05)

    print("2. training a small LLaMA-style model with LLM-like outliers ...")
    config = ModelConfig(name="quickstart", vocab_size=512, d_model=96,
                         num_layers=3, num_heads=4, d_ff=384,
                         max_seq_len=256, seed=1)
    model = TransformerLM(config)
    spec = OutlierSpec(seed=1)
    pretrain_column_outliers(model, spec)
    trainer = Trainer(model, train,
                      TrainConfig(steps=250, batch_size=16, seq_len=96,
                                  lr=3e-3, weight_decay=0.02),
                      val_stream=val)
    summary = trainer.train()
    inject_outliers(model, spec)
    print(f"   trained: val loss {summary['val_loss']:.3f} "
          f"({model.num_parameters():,} params)")

    print("3. quantizing with FineQ and the paper's baselines ...")
    methods = [("fp16", None), ("rtn", {"bits": 2}), ("gptq", {"bits": 2}),
               ("owq", None), ("fineq", None)]
    results = run_method_sweep(model, tokenizer, methods, seq_len=128,
                               max_tokens=8000)

    rows = [[r.method, round(r.avg_bits, 2),
             r.perplexity["wikitext-sim"], r.perplexity["c4-sim"]]
            for r in results]
    print()
    print(format_table(["Method", "Avg bits", "Wiki PPL", "C4 PPL"], rows,
                       title="Perplexity (lower is better)"))
    print()
    fineq = next(r for r in results if r.method == "fineq")
    fp16 = next(r for r in results if r.method == "fp16")
    ratio = fineq.perplexity["wikitext-sim"] / fp16.perplexity["wikitext-sim"]
    print(f"FineQ holds perplexity within {ratio:.2f}x of FP16 at "
          f"{fineq.avg_bits:.2f} bits/weight "
          f"({16 / fineq.avg_bits:.1f}x compression).")


if __name__ == "__main__":
    main()
