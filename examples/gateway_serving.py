"""Serving gateway walkthrough: HTTP/SSE, durability, crash recovery.

Drives the full async serving stack end to end on the untrained tiny
model (no zoo download, runs in seconds):

1. start a :class:`repro.serve.ServingGateway` (engine loop) and a
   :class:`repro.serve.GatewayHTTPServer` on a loopback port, with the
   request journal in a real sqlite file;
2. exercise the HTTP API the way a client would — a collected
   ``POST /v1/generate``, a server-sent-events stream, a status poll,
   a cancellation, and a ``GET /metrics`` scrape;
3. then the subsystem's reason to exist: kill the gateway mid-stream
   (no graceful shutdown), reopen the same journal in a *new* gateway
   + engine, and show every interrupted request finish with exactly
   the token stream an uninterrupted run produces — the journaled
   prefix plus the regenerated remainder, no gap, no duplicate.

    python examples/gateway_serving.py

The determinism that makes step 3 work: the gateway resolves every
request's sampling seed before journaling, and engine sampling is a
pure per-request function of (prompt, params) — independent of batch
composition — so re-dispatching a journaled record regenerates its
exact stream.
"""

import asyncio
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.models.configs import tiny_config
from repro.nn import TransformerLM
from repro.serve import (GatewayHTTPServer, GenerationEngine, RequestQueue,
                         ServingGateway)

MAX_NEW_TOKENS = 12


def make_gateway(journal: Path) -> ServingGateway:
    model = TransformerLM(tiny_config(vocab_size=256, seed=0))
    engine = GenerationEngine(model, max_batch_size=4)
    return ServingGateway(engine, RequestQueue(journal))


async def http_request(port: int, method: str, path: str,
                       body: dict | None = None) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: demo\r\n"
                  f"Content-Length: {len(payload)}\r\n\r\n").encode()
                 + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), rest


async def demo_http(journal: Path) -> None:
    print("== HTTP API ==")
    gateway = make_gateway(journal)
    server = GatewayHTTPServer(gateway)
    await gateway.start()
    await server.start()
    try:
        status, body = await http_request(
            server.port, "POST", "/v1/generate",
            {"prompt": [1, 2, 3], "max_new_tokens": MAX_NEW_TOKENS})
        record = json.loads(body)
        print(f"collected generate -> {status}: "
              f"job {record['job_id']} {record['status']}, "
              f"tokens {record['tokens']}")

        # The same stream over SSE, token by token.
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)
        payload = json.dumps({"prompt": [1, 2, 3],
                              "max_new_tokens": MAX_NEW_TOKENS,
                              "stream": True}).encode()
        writer.write((f"POST /v1/generate HTTP/1.1\r\nHost: demo\r\n"
                      f"Content-Length: {len(payload)}\r\n\r\n").encode()
                     + payload)
        await writer.drain()
        sse = (await reader.read()).decode()
        writer.close()
        streamed = []
        for block in sse.split("\n\n"):
            lines = block.splitlines()
            data = [line for line in lines if line.startswith("data:")]
            if data and "event: done" not in lines:
                streamed.append(json.loads(data[0][5:])["token"])
        print(f"SSE stream        -> {streamed} "
              f"(identical: {streamed == record['tokens']})")

        status, body = await http_request(
            server.port, "GET", f"/v1/requests/{record['job_id']}")
        print(f"status poll       -> {status}: "
              f"{json.loads(body)['status']}")

        status, body = await http_request(server.port, "GET", "/metrics")
        metrics = json.loads(body)
        decoded = metrics["engine"]["decode_tokens"]
        p50_ms = 1e3 * metrics["latency"]["first_token_p50_s"]
        print(f"metrics           -> decode {decoded} tokens, queue depth "
              f"{metrics['queue']['depth']}, first-token p50 "
              f"{p50_ms:.1f}ms")
    finally:
        await server.stop()
        await gateway.stop()


def demo_recovery(journal: Path) -> None:
    print("\n== kill mid-stream, recover from the journal ==")
    prompts = [np.array([1, 2, 3]), np.array([9, 8, 7]),
               np.array([4, 5, 6])]

    # The uninterrupted reference run.
    reference = GenerationEngine(
        TransformerLM(tiny_config(vocab_size=256, seed=0)),
        max_batch_size=4)
    for prompt in prompts:
        reference.submit(prompt, MAX_NEW_TOKENS)
    want = {i + 1: [int(t) for t in c.new_tokens]
            for i, c in enumerate(sorted(reference.run(),
                                         key=lambda c: c.request_id))}

    first = make_gateway(journal)
    job_ids = [first.submit(p, max_new_tokens=MAX_NEW_TOKENS)
               for p in prompts]
    for _ in range(4):  # a few engine steps, then the "crash"
        first.pump()
    partial = {j: first.queue.tokens(j) for j in job_ids}
    print("journaled at crash:",
          {j: f"{len(t)}/{MAX_NEW_TOKENS} tokens"
           for j, t in partial.items()})
    first.queue.close()  # process dies: no drain, no goodbye

    second = make_gateway(journal)
    requeued = second.recover()
    print(f"reopened journal requeued jobs {requeued}")
    while second.queue.depth() > 0:
        second.pump()
    for job_id in job_ids:
        job = second.queue.get(job_id)
        match = list(job.tokens) == want[job_id]
        print(f"job {job_id}: {job.status}, byte-identical to "
              f"uninterrupted run: {match}")
        assert match and job.tokens[:len(partial[job_id])] \
            == tuple(partial[job_id])
    second.queue.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(demo_http(Path(tmp) / "http.sqlite"))
        demo_recovery(Path(tmp) / "recovery.sqlite")


if __name__ == "__main__":
    main()
