"""Edge-serving scenario: memory budget, streaming serving, and quality.

The paper's motivation (Fig. 2b): weights dominate LLM serving memory.
This example loads the largest zoo model, shows the FP16 vs FineQ
serving-memory split, then drives the persistent serving session the way
a streaming client would: requests with per-request
:class:`repro.serve.SamplingParams` stream ``TokenEvent``s as tokens
land, one extra prompt is submitted mid-flight, one request is cancelled
part-way, and the FineQ-quantized model re-serves the same prompts so
the greedy continuations can be compared:

    python examples/edge_serving.py

Serving at scale
----------------
Every request here carries the same "system prompt" — the norm in real
traffic (assistant preambles, few-shot templates, multi-turn history).
The session therefore runs with ``prefix_sharing=True``: the first
prefill captures the system prompt's cache blocks in a radix
:class:`repro.serve.PrefixStore`, and every later request adopts them by
reference — quantized once, dequantized by every reader on the FineQ
backend — so prefill forwards only each request's novel suffix and the
shared blocks are resident once however many rows read them
(copy-on-write isolates divergence inside a partially-filled block).
Admission is delegated to the ``"prefix-affinity"`` scheduler, which
batches waiting requests that share cached prefixes into the same decode
wave; swap in ``scheduler="priority"`` (+ ``SamplingParams(priority=…)``
and a ``max_pool_blocks`` budget) and the engine instead preempts
lowest-priority rows under memory pressure, re-queuing them to restore
from the surviving shared prefix.  The same engine can record a
per-step trace (``record_trace=True``) that
``repro.hw.workloads.project_decode_trace`` replays through the paper's
six-stage accelerator model — see ``python -m repro.serve --prefix``.
"""

import numpy as np

from repro.core.layout import serving_memory_layout
from repro.eval import clone_model, format_table
from repro.models import load_model
from repro.quant import get_quantizer
from repro.serve import GenerationEngine, SamplingParams

#: The shared system prompt every request begins with (> one 16-token
#: cache block, so prefix sharing captures full blocks + a tail).
SYSTEM_PROMPT = ["the", "helpful", "assistant", "answers", "every",
                 "question", "clearly", "and", "briefly", "using",
                 "simple", "words", "that", "people", "can", "easily",
                 "understand", "without", "effort"]
PROMPTS = [
    ["the", "ancient", "castle"],
    ["a", "new", "study"],
    ["the", "river", "flows", "through"],
    ["scientists", "discovered"],
    ["the", "market", "opened"],
    ["in", "the", "north"],
]
LATE_PROMPT = ["engineers", "built", "a"]
MAX_NEW_TOKENS = 12


def stream_session(model, prompts, late_prompt):
    """Serve ``prompts`` as a streaming client; returns (completions, engine).

    Even requests decode greedily, odd ones sample through top-k/top-p
    with a fixed per-request seed.  After a few events a late prompt is
    submitted into the live session and the second request is cancelled.
    All prompts share the system-prompt prefix, served from the prefix
    store after the first prefill captures it.
    """
    engine = GenerationEngine(model, max_batch_size=4,
                              scheduler="prefix-affinity",
                              prefix_sharing=True)
    ids = []
    for i, prompt in enumerate(prompts):
        params = (SamplingParams(max_new_tokens=MAX_NEW_TOKENS)
                  if i % 2 == 0 else
                  SamplingParams(max_new_tokens=MAX_NEW_TOKENS,
                                 temperature=0.8, top_k=20, top_p=0.9,
                                 seed=100 + i))
        ids.append(engine.submit(prompt, params=params))
    victim, late_id = ids[1], None
    events = 0
    for event in engine.stream():
        events += 1
        if events == 6 and late_id is None:
            late_id = engine.submit(late_prompt, max_new_tokens=MAX_NEW_TOKENS)
            print(f"   ... {events} events in: submitted request {late_id} "
                  "mid-flight")
        if events == 10 and victim is not None:
            engine.cancel(victim)
            print(f"   ... {events} events in: cancelled request {victim} "
                  "(row and exclusive cache blocks freed; the shared "
                  "prefix stays)")
            victim = None
    return {c.request_id: c for c in engine.take_completions()}, engine


def main() -> None:
    print("loading llama-sim-13b (trains and caches on first run) ...")
    zoo = load_model("llama-sim-13b")
    model, tokenizer = zoo.model, zoo.tokenizer

    print("\n1. serving-memory layout (paper Fig. 2b) ...")
    rows = []
    for label, bits in (("FP16", 16.0), ("FineQ", 7 * 8 / 24)):
        layout = serving_memory_layout(model, batch=2, seq_len=224,
                                       weight_bits=bits)
        f = layout.fractions
        rows.append([label, f"{layout.total_bytes / 2**20:.1f}",
                     f"{f['weights']:.0%}", f"{f['kv_cache']:.0%}",
                     f"{f['others']:.0%}"])
    print(format_table(["Weights", "Total MiB", "W %", "KV %", "Other %"],
                       rows))

    print(f"\n2. streaming {len(PROMPTS)} + 1 mid-flight prompts (shared "
          f"{len(SYSTEM_PROMPT)}-token system prompt) through the FP16 "
          "prefix-sharing session ...")
    prompts = [np.asarray(tokenizer.encode(SYSTEM_PROMPT + words))
               for words in PROMPTS]
    late = np.asarray(tokenizer.encode(SYSTEM_PROMPT + LATE_PROMPT))
    fp16_done, fp16_engine = stream_session(model, prompts, late)
    fp16_stats = fp16_engine.stats

    print("\n   finished requests (decoding mode, finish reason, text "
          "after the system prompt):")
    skip = len(SYSTEM_PROMPT)
    for rid in sorted(fp16_done):
        completion = fp16_done[rid]
        mode = "greedy" if rid % 2 == 0 or rid >= len(PROMPTS) else "top-k/p"
        text = " ".join(tokenizer.decode(completion.tokens[skip:]))
        print(f"   #{rid} [{mode:7}] [{completion.finish_reason:9}] {text}")
    print(f"\n   decode throughput : {fp16_stats.decode_tokens_per_s:7,.0f} "
          f"tok/s at occupancy {fp16_stats.occupancy:.0%}")
    print(f"   prefix sharing    : {fp16_stats.shared_prompt_tokens} of "
          f"{fp16_stats.prompt_tokens} prompt tokens served from cached "
          f"prefixes ({fp16_stats.prefix_hit_tokens_ratio:.0%}); prefill "
          f"forwarded only {fp16_stats.prefill_tokens}")

    print("\n3. FineQ-quantized engine on the same prompts (greedy, "
          "prefix-shared) ...")
    quantized = clone_model(model)
    report = get_quantizer("fineq").quantize_model(quantized)
    q_engine = GenerationEngine(quantized, max_batch_size=4,
                                scheduler="prefix-affinity",
                                prefix_sharing=True)
    all_prompts = prompts + [late]
    fineq_out = q_engine.generate_batch(all_prompts, MAX_NEW_TOKENS)
    identical = 0
    for rid, fineq_tokens in enumerate(fineq_out):
        fp16_completion = fp16_done.get(rid)
        if fp16_completion is not None \
                and fp16_completion.finish_reason == "length" \
                and (rid % 2 == 0 or rid >= len(PROMPTS)):
            identical += int(np.array_equal(fp16_completion.tokens,
                                            fineq_tokens))
    print(f"   quantized weight payload: {report.avg_bits:.2f} bits/weight, "
          f"{report.total_bytes() / 2**10:.0f} KiB "
          f"(vs {sum(l.weight.size for _, l in model.quantizable_linears()) * 2 / 2**10:.0f} KiB FP16)")
    print(f"   greedy continuations surviving quantization: {identical} of "
          f"{1 + len(PROMPTS) // 2}")
    print(f"   FineQ decode throughput: "
          f"{q_engine.stats.decode_tokens_per_s:7,.0f} tok/s")


if __name__ == "__main__":
    main()
