"""Edge-serving scenario: memory budget and generation quality.

The paper's motivation (Fig. 2b): weights dominate LLM serving memory.
This example loads the largest zoo model, shows the FP16 vs FineQ
serving-memory split, then generates text from both to demonstrate the
quantized model remains usable:

    python examples/edge_serving.py
"""

import numpy as np

from repro.core.layout import serving_memory_layout
from repro.eval import clone_model, format_table
from repro.models import load_model
from repro.quant import get_quantizer


def main() -> None:
    print("loading llama-sim-13b (trains and caches on first run) ...")
    zoo = load_model("llama-sim-13b")
    model, tokenizer = zoo.model, zoo.tokenizer

    print("\n1. serving-memory layout (paper Fig. 2b) ...")
    rows = []
    for label, bits in (("FP16", 16.0), ("FineQ", 7 * 8 / 24)):
        layout = serving_memory_layout(model, batch=2, seq_len=224,
                                       weight_bits=bits)
        f = layout.fractions
        rows.append([label, f"{layout.total_bytes / 2**20:.1f}",
                     f"{f['weights']:.0%}", f"{f['kv_cache']:.0%}",
                     f"{f['others']:.0%}"])
    print(format_table(["Weights", "Total MiB", "W %", "KV %", "Other %"],
                       rows))

    print("\n2. generation before/after FineQ quantization ...")
    prompt_words = ["the", "ancient", "castle"]
    prompt = tokenizer.encode(prompt_words)
    fp16_out = model.generate(prompt, 12, temperature=0.0)
    print("   FP16 :", " ".join(tokenizer.decode(fp16_out)))

    quantized = clone_model(model)
    report = get_quantizer("fineq").quantize_model(quantized)
    fineq_out = quantized.generate(prompt, 12, temperature=0.0)
    print("   FineQ:", " ".join(tokenizer.decode(fineq_out)))
    print(f"\n   quantized weight payload: {report.avg_bits:.2f} bits/weight, "
          f"{report.total_bytes() / 2**10:.0f} KiB "
          f"(vs {sum(l.weight.size for _, l in model.quantizable_linears()) * 2 / 2**10:.0f} KiB FP16)")
    same = int(np.array_equal(fp16_out, fineq_out))
    print(f"   greedy continuations identical: {bool(same)}")


if __name__ == "__main__":
    main()
