"""Edge-serving scenario: memory budget, batched serving, and quality.

The paper's motivation (Fig. 2b): weights dominate LLM serving memory.
This example loads the largest zoo model, shows the FP16 vs FineQ
serving-memory split, then serves a batch of prompts through the
continuous-batching :class:`repro.serve.GenerationEngine` — FP16 and
FineQ-quantized — printing decode tokens/sec and checking the greedy
continuations survive quantization:

    python examples/edge_serving.py
"""

import numpy as np

from repro.core.layout import serving_memory_layout
from repro.eval import clone_model, format_table
from repro.models import load_model
from repro.quant import get_quantizer
from repro.serve import GenerationEngine, sequential_throughput

PROMPTS = [
    ["the", "ancient", "castle"],
    ["a", "new", "study"],
    ["the", "river", "flows", "through"],
    ["scientists", "discovered"],
    ["the", "market", "opened"],
    ["in", "the", "north"],
    ["the", "old", "library"],
    ["engineers", "built", "a"],
]
MAX_NEW_TOKENS = 12


def main() -> None:
    print("loading llama-sim-13b (trains and caches on first run) ...")
    zoo = load_model("llama-sim-13b")
    model, tokenizer = zoo.model, zoo.tokenizer

    print("\n1. serving-memory layout (paper Fig. 2b) ...")
    rows = []
    for label, bits in (("FP16", 16.0), ("FineQ", 7 * 8 / 24)):
        layout = serving_memory_layout(model, batch=2, seq_len=224,
                                       weight_bits=bits)
        f = layout.fractions
        rows.append([label, f"{layout.total_bytes / 2**20:.1f}",
                     f"{f['weights']:.0%}", f"{f['kv_cache']:.0%}",
                     f"{f['others']:.0%}"])
    print(format_table(["Weights", "Total MiB", "W %", "KV %", "Other %"],
                       rows))

    print(f"\n2. serving {len(PROMPTS)} prompts through the batched engine ...")
    prompts = [np.asarray(tokenizer.encode(words)) for words in PROMPTS]

    baseline = sequential_throughput(model, prompts, MAX_NEW_TOKENS)
    engine = GenerationEngine(model, max_batch_size=len(prompts))
    fp16_out = engine.generate_batch(prompts, MAX_NEW_TOKENS)
    fp16_tps = engine.stats.decode_tokens_per_s

    quantized = clone_model(model)
    report = get_quantizer("fineq").quantize_model(quantized)
    q_engine = GenerationEngine(quantized, max_batch_size=len(prompts))
    fineq_out = q_engine.generate_batch(prompts, MAX_NEW_TOKENS)
    fineq_tps = q_engine.stats.decode_tokens_per_s

    print(f"   sequential baseline : {baseline.decode_tokens_per_s:7,.0f} decode tok/s")
    print(f"   FP16  batched engine: {fp16_tps:7,.0f} decode tok/s "
          f"({fp16_tps / baseline.decode_tokens_per_s:.1f}x)")
    print(f"   FineQ batched engine: {fineq_tps:7,.0f} decode tok/s")

    print("\n3. greedy continuations (FP16 vs FineQ) ...")
    identical = 0
    for fp16_tokens, fineq_tokens in zip(fp16_out, fineq_out):
        identical += int(np.array_equal(fp16_tokens, fineq_tokens))
    for words, fp16_tokens in zip(PROMPTS[:3], fp16_out[:3]):
        print(f"   {' '.join(words)!r:32} -> "
              + " ".join(tokenizer.decode(fp16_tokens)))
    print(f"\n   quantized weight payload: {report.avg_bits:.2f} bits/weight, "
          f"{report.total_bytes() / 2**10:.0f} KiB "
          f"(vs {sum(l.weight.size for _, l in model.quantizable_linears()) * 2 / 2**10:.0f} KiB FP16)")
    print(f"   identical greedy continuations: {identical}/{len(PROMPTS)}")


if __name__ == "__main__":
    main()
