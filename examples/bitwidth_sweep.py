"""Fig. 1 style bit-width sweep on the 7B simulation model.

Uses the cached zoo model (first run trains it, ~4 minutes):

    python examples/bitwidth_sweep.py
"""

from repro.experiments import fig1


def main() -> None:
    result = fig1.run()
    print(result.to_text())
    print()
    fineq = result.row_by("Method", "fineq")
    rtn2 = [r for r in result.rows if r[0] == "rtn" and r[1] == 2][0]
    print(f"At ~2.3 bits: FineQ PPL {fineq[3]:.2f} vs RTN-2b {rtn2[3]:.1f} "
          f"-- the ultra-low-bit cliff the paper's Fig. 1 shows.")


if __name__ == "__main__":
    main()
