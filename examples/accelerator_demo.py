"""Accelerator walkthrough: pack -> decode -> temporal-coding matmul.

Demonstrates the full co-designed datapath of the paper's Sec. IV on one
weight matrix, then prints the area/power/energy story (Table III,
Fig. 8, Fig. 9):

    python examples/accelerator_demo.py
"""

import numpy as np

from repro.core import FineQQuantizer, pack_matrix
from repro.eval import format_table
from repro.hw import (FineQStreamDecoder, TemporalCodingArray,
                      BaselineSystolicArray, AreaPowerModel, EnergyModel,
                      energy_efficiency)
from repro.models.configs import ZOO_CONFIGS


def main() -> None:
    rng = np.random.default_rng(0)
    weight = rng.standard_normal((64, 96)) * 0.05
    weight[:, rng.choice(96, 2, replace=False)] *= 9.0  # outlier columns
    activations = rng.standard_normal((96, 8))

    print("1. FineQ quantization + packing (7 bytes / 24 weights) ...")
    quantizer = FineQQuantizer(channel_axis="output")
    dequantized, artifacts = quantizer.quantize_with_artifacts(weight)
    packed = pack_matrix(artifacts["codes"], artifacts["schemes"],
                         artifacts["scales"], weight.shape)
    print(f"   packed {weight.size} weights into {packed.total_bytes} bytes "
          f"({packed.bits_per_weight:.2f} bits/weight)")

    print("2. hardware decoder (Fig. 6) ...")
    decoded = FineQStreamDecoder().decode(packed)
    assert np.array_equal(decoded.codes, artifacts["codes"])
    print(f"   decoded {decoded.groups_decoded} cluster groups, "
          f"codes match the quantizer exactly")

    print("3. temporal-coding PE array vs MAC systolic array (Fig. 7) ...")
    codes_2d = decoded.codes.reshape(decoded.codes.shape[0], -1)[:, :96]
    temporal = TemporalCodingArray().run(codes_2d, activations)
    hw_result = temporal.output * packed.scales.astype(np.float64)[:, None]
    sw_result = dequantized.astype(np.float64) @ activations
    baseline = BaselineSystolicArray().run(dequantized, activations)
    print(f"   temporal result == software dequantized matmul: "
          f"{np.allclose(hw_result, sw_result, rtol=2e-3, atol=1e-3)}")
    print(f"   cycles: temporal {temporal.cycles} vs MAC {baseline.cycles} "
          f"(unary streams cost 1-3 cycles/row)")

    print("\n4. area / power (Table III, 45 nm @ 400 MHz) ...")
    apm = AreaPowerModel()
    rows = [
        ["Systolic Array", f"{apm.systolic_array().area_mm2:.3f}",
         f"{apm.systolic_array().power_mw:.3f}"],
        ["FineQ Decoder x64", f"{apm.decoder_bank().area_mm2:.3f}",
         f"{apm.decoder_bank().power_mw:.3f}"],
        ["FineQ PE Array", f"{apm.fineq_pe_array().area_mm2:.3f}",
         f"{apm.fineq_pe_array().power_mw:.3f}"],
    ]
    print(format_table(["Block", "Area (mm^2)", "Power (mW)"], rows))
    print(f"   array area reduction: {apm.area_reduction():.1%} "
          f"(paper: 61.2%)")

    print("\n5. energy efficiency vs baseline accelerator (Fig. 9) ...")
    model = EnergyModel()
    for name, config in ZOO_CONFIGS.items():
        values = [energy_efficiency(config, s, model) for s in (32, 128, 256)]
        mean = float(np.mean(values))
        print(f"   {name}: " + "  ".join(f"{v:.2f}x" for v in values)
              + f"  (mean {mean:.2f}x)")


if __name__ == "__main__":
    main()
