"""Bench: regenerate Table III (area/power of accelerator core modules)."""

import numpy as np

from repro.experiments import table3
from benchmarks.conftest import run_once


def test_table3_area_power(benchmark):
    result = run_once(benchmark, table3.run)
    print("\n" + result.to_text())

    paper = result.meta["paper"]
    systolic = result.row_by("Architecture", "Systolic Array")
    fineq = result.row_by("Architecture", "FineQ PE Array")
    decoder = result.row_by("Architecture", "FineQ Decoder")

    assert np.isclose(systolic[2], paper["systolic_array"]["area_mm2"], rtol=1e-3)
    assert np.isclose(fineq[3], paper["fineq_pe_array"]["power_mw"], rtol=1e-3)
    assert np.isclose(decoder[2], paper["fineq_decoder"]["area_mm2"], atol=1e-3)
    # Headline claims: 61.2% area and ~63% power reduction.
    assert np.isclose(result.meta["area_reduction"], 0.612, atol=0.01)
    assert np.isclose(result.meta["power_reduction"], 0.629, atol=0.015)
